"""Mechanism demonstration: Table 4's catastrophic splitting failure.

On our trained networks the random/natural-order degradation is mild
(EXPERIMENTS.md) because their weight rows are statistically homogeneous.
This bench reconstructs the regime where the paper's dramatic numbers
(54% accuracy for the unhomogenized order, 98% after homogenization)
come from, and shows the proposed fix working at that magnitude.

Construction: a 300x64 conv-style matrix whose rows group into 12 input
channels (25 rows each, as the paper's Network 1 conv2 does) with
heavy-tailed per-channel scales — some channels matter 100x more than
others, CaffeNet-style.  Inputs are channel-correlated 1-bit patterns
(two active channels per sample).  The natural row order — which IS the
channel order a naive mapper would use — then concentrates each hot
channel inside one block, so a firing event raises one block over
``Thres/3`` while the other two stay silent: the paper's "0,0,1 ...
recognized as 0".

Metric: the *miss rate* — the fraction of true firing events the split
vote drops.  (Plain agreement is dominated by the ~90% silent outputs.)
"""

import numpy as np
import pytest

from repro.arch import format_table
from repro.core import (
    SplitDecision,
    SplitMatrix,
    binarize,
    block_mean_distance,
    homogenize,
    natural_partition,
    random_partition,
)

from benchmarks.conftest import heading

ROWS, COLS, BLOCKS = 300, 64, 3
CHANNELS, CHANNEL_ROWS = 12, 25
SAMPLES = 3000


def _channel_structured_case(seed=7):
    rng = np.random.default_rng(seed)
    channel_scale = rng.lognormal(0.0, 2.0, size=(CHANNELS, COLS))
    matrix = np.abs(rng.normal(size=(ROWS, COLS))) * np.repeat(
        channel_scale, CHANNEL_ROWS, axis=0
    )
    matrix /= matrix.max()

    bits = np.zeros((SAMPLES, ROWS))
    for i in range(SAMPLES):
        for channel in rng.choice(CHANNELS, size=2, replace=False):
            active = channel * CHANNEL_ROWS + np.flatnonzero(
                rng.random(CHANNEL_ROWS) < 0.4
            )
            bits[i, active] = 1.0

    sums = bits @ matrix
    threshold = float(np.percentile(sums, 90))  # ~10% firing events
    return matrix, bits, threshold


def _miss_rate(matrix, partition, bits, threshold, vote=2):
    reference = binarize(bits @ matrix, threshold)
    split = SplitMatrix(
        matrix,
        partition,
        SplitDecision(block_threshold=threshold / BLOCKS, vote_threshold=vote),
    )
    out = split.fire(bits)
    misses = ((out == 0) & (reference == 1)).sum()
    return float(misses / max(reference.sum(), 1))


def run_mechanism():
    matrix, bits, threshold = _channel_structured_case()

    natural = natural_partition(ROWS, BLOCKS)
    homogenized = homogenize(matrix, BLOCKS, iterations=6000, seed=0)
    random_misses = [
        _miss_rate(
            matrix,
            random_partition(ROWS, BLOCKS, np.random.default_rng(seed)),
            bits,
            threshold,
        )
        for seed in range(10)
    ]

    rows = [
        {
            "row order": "natural (channel-clustered)",
            "Equ.10 distance": block_mean_distance(matrix, natural),
            "missed firing events": _miss_rate(
                matrix, natural, bits, threshold
            ),
        },
        {
            "row order": "random (10 orders, min-max)",
            "Equ.10 distance": float("nan"),
            "missed firing events": (
                f"{min(random_misses):.3f} - {max(random_misses):.3f}"
            ),
        },
        {
            "row order": "homogenized",
            "Equ.10 distance": block_mean_distance(matrix, homogenized),
            "missed firing events": _miss_rate(
                matrix, homogenized, bits, threshold
            ),
        },
    ]
    return rows, random_misses, matrix, natural, homogenized, bits, threshold


@pytest.mark.benchmark(group="mechanism")
def test_heterogeneous_splitting_mechanism(benchmark):
    (
        rows,
        random_misses,
        matrix,
        natural,
        homogenized,
        bits,
        threshold,
    ) = benchmark.pedantic(run_mechanism, rounds=1, iterations=1)

    heading(
        "Mechanism — splitting a channel-structured heavy-tailed matrix "
        "(the Table 4 regime)"
    )
    print(format_table(rows, floatfmt="{:.4f}"))
    print(
        "\npaper: 54.21% accuracy for the unhomogenized order vs 98.22% "
        "homogenized; here the natural (channel) order drops >80% of the "
        "firing events and homogenization recovers an order of magnitude."
    )

    natural_miss = rows[0]["missed firing events"]
    homog_miss = rows[2]["missed firing events"]

    # The collapse at the paper's magnitude...
    assert natural_miss > 0.5
    # ...recovered by an order of magnitude...
    assert homog_miss < natural_miss / 5
    assert homog_miss < max(random_misses) + 1e-9
    # ...and predicted by the Equ. 10 distance (>90% reduction).
    reduction = 1 - block_mean_distance(matrix, homogenized) / (
        block_mean_distance(matrix, natural)
    )
    assert reduction > 0.9
