"""Timing, throughput, buffering and the power-time tradeoff.

Two loose ends of the paper live here:

* §5.3: "Since each kernel is used multiple times in the procession of
  one picture, we can use buffer amounts to trade-off the power with
  time."  The crossbars of a layer are time-multiplexed over the conv
  positions; replicating a layer's fabric r times cuts its latency by r
  at r times the fabric area and higher instantaneous power, while the
  *energy per picture* stays (nearly) constant.  :func:`power_time_tradeoff`
  quantifies that knob.
* §6: "we will further analyze the register buffer design in Conv
  layers."  :func:`buffer_plan` compares full-feature-map buffering with
  streaming line buffers (the k-row sliding window a conv layer actually
  needs), in bytes, for the 8-bit and the 1-bit designs.

Latency model
-------------
A layer processes its ``positions`` MVMs sequentially on its (possibly
replicated) fabric; one position costs the analog read plus the
structure's readout:

* ``dac_adc`` / ``onebit_adc``: DAC settle (only where DACs drive the
  rows) + crossbar read + one ADC conversion (each column has its own
  ADC, all copies convert in parallel);
* ``sei``: crossbar read + sense-amp decision + a digital vote where the
  matrix is split.

Layers pipeline picture-to-picture, so throughput is set by the slowest
layer and single-picture latency by the sum.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence

from repro.configs import NetworkSpec, get_network_spec
from repro.errors import ConfigurationError
from repro.hw.tech import TechnologyModel

from repro.arch.cost import DesignCost, design_cost
from repro.arch.mapper import LayerMapping, map_layer, network_layer_geometries

__all__ = [
    "TimingModel",
    "layer_latency_ns",
    "DesignTiming",
    "design_timing",
    "power_time_tradeoff",
    "buffer_plan",
]


@dataclass(frozen=True)
class TimingModel:
    """Per-operation latencies, nanoseconds."""

    #: Analog settle + read of one crossbar MVM.
    crossbar_read_ns: float = 100.0
    #: One 8-bit SAR ADC conversion.
    adc_conversion_ns: float = 100.0
    #: DAC settle before a read (intermediate-data drives).
    dac_settle_ns: float = 50.0
    #: Sense-amp (comparator) decision.
    sa_decision_ns: float = 10.0
    #: One digital merge/vote operation (pipelined adders).
    digital_op_ns: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "crossbar_read_ns",
            "adc_conversion_ns",
            "dac_settle_ns",
            "sa_decision_ns",
            "digital_op_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


def layer_latency_ns(
    mapping: LayerMapping,
    timing: Optional[TimingModel] = None,
    replication: int = 1,
) -> float:
    """Latency of one layer for one picture, ns."""
    timing = timing if timing is not None else TimingModel()
    if replication < 1:
        raise ConfigurationError(
            f"replication must be >= 1, got {replication}"
        )
    geometry = mapping.geometry

    per_position = timing.crossbar_read_ns
    if mapping.structure in ("dac_adc", "onebit_adc"):
        if mapping.dac_channels > 0 and not geometry.is_input:
            per_position += timing.dac_settle_ns
        per_position += timing.adc_conversion_ns
        per_position += timing.digital_op_ns  # pipelined merge tree
    else:  # sei
        per_position += timing.sa_decision_ns
        if mapping.split_blocks > 1:
            per_position += timing.digital_op_ns

    positions = ceil(geometry.positions / replication)
    return positions * per_position


@dataclass
class DesignTiming:
    """Latency/throughput summary of a full design."""

    structure: str
    #: Per-layer latencies, ns (replication applied).
    layer_latency_ns: List[float]
    replication: int
    energy_uj_per_picture: float

    @property
    def latency_us(self) -> float:
        """Single-picture latency (layer-sequential streaming), us."""
        return sum(self.layer_latency_ns) / 1000.0

    @property
    def bottleneck_ns(self) -> float:
        return max(self.layer_latency_ns)

    @property
    def throughput_kfps(self) -> float:
        """Pipelined kilo-pictures per second (bottleneck-limited)."""
        return 1e9 / self.bottleneck_ns / 1000.0

    @property
    def average_power_mw(self) -> float:
        """Power when running at full pipelined throughput."""
        pictures_per_second = 1e9 / self.bottleneck_ns
        return self.energy_uj_per_picture * 1e-6 * pictures_per_second * 1e3


def design_timing(
    spec: NetworkSpec | str,
    structure: str,
    tech: Optional[TechnologyModel] = None,
    timing: Optional[TimingModel] = None,
    replication: int = 1,
) -> DesignTiming:
    """Timing summary of one (network, structure) design."""
    if isinstance(spec, str):
        spec = get_network_spec(spec)
    tech = tech if tech is not None else TechnologyModel()
    timing = timing if timing is not None else TimingModel()
    mappings = [
        map_layer(geometry, structure, tech)
        for geometry in network_layer_geometries(spec)
    ]
    cost = design_cost(structure, mappings, tech)
    return DesignTiming(
        structure=structure,
        layer_latency_ns=[
            layer_latency_ns(m, timing, replication) for m in mappings
        ],
        replication=replication,
        energy_uj_per_picture=cost.total_energy_uj,
    )


def power_time_tradeoff(
    spec: NetworkSpec | str,
    structure: str,
    replications: Sequence[int] = (1, 2, 4, 8),
    tech: Optional[TechnologyModel] = None,
    timing: Optional[TimingModel] = None,
) -> List[Dict[str, float]]:
    """§5.3's buffer/replication knob: speed vs instantaneous power.

    Energy per picture is replication-invariant (the same MVMs run, just
    in parallel), so power rises with throughput while latency falls —
    the "trade-off the power with time" the paper describes.  Fabric area
    scales with replication; converters and fabric are replicated
    together.
    """
    if isinstance(spec, str):
        spec = get_network_spec(spec)
    tech = tech if tech is not None else TechnologyModel()
    mappings = [
        map_layer(g, structure, tech) for g in network_layer_geometries(spec)
    ]
    base_area = design_cost(structure, mappings, tech).total_area_mm2

    rows = []
    for replication in replications:
        t = design_timing(spec, structure, tech, timing, replication)
        rows.append(
            {
                "replication": float(replication),
                "latency_us": t.latency_us,
                "throughput_kfps": t.throughput_kfps,
                "energy_uj": t.energy_uj_per_picture,
                "power_mw": t.average_power_mw,
                "area_mm2": base_area * replication,
            }
        )
    return rows


def buffer_plan(
    spec: NetworkSpec | str,
    structure: str,
) -> List[Dict[str, object]]:
    """§6's conv register-buffer analysis: full map vs line buffers.

    For each layer boundary, the bytes needed to buffer the producing
    layer's output when (a) the whole feature map is stored before the
    consumer starts, vs (b) the consumer streams with a sliding window of
    ``kernel`` rows (plus one row being filled).  1-bit intermediate data
    (quantized designs) divides every figure by 8.
    """
    if isinstance(spec, str):
        spec = get_network_spec(spec)
    bits = 8 if structure == "dac_adc" else 1

    conv1_out = spec.input_size - spec.conv1_size + 1
    pool1_out = conv1_out // spec.pool
    conv2_out = pool1_out - spec.conv2_size + 1
    pool2_out = conv2_out // spec.pool

    boundaries = [
        # (name, feature map h, w, channels, consumer kernel rows)
        (
            "conv1->conv2 (after pool1)",
            pool1_out,
            pool1_out,
            spec.conv1_kernels,
            spec.conv2_size,
        ),
        (
            "conv2->fc (after pool2)",
            pool2_out,
            pool2_out,
            spec.conv2_kernels,
            # The FC layer consumes the whole map at once.
            pool2_out,
        ),
    ]
    rows: List[Dict[str, object]] = []
    for name, h, w, channels, window_rows in boundaries:
        full_bits = h * w * channels * bits
        line_bits = min(window_rows + 1, h) * w * channels * bits
        rows.append(
            {
                "boundary": name,
                "data bits": bits,
                "full map (bytes)": ceil(full_bits / 8),
                "line buffer (bytes)": ceil(line_bits / 8),
                "saving": 1.0 - line_bits / full_bits,
            }
        )
    return rows
