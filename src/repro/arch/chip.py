"""Chip datasheet: one object aggregating every model in repro.arch.

A designer evaluating the SEI accelerator wants the whole picture at
once — energy, area, component breakdowns, per-layer mapping, timing,
buffering and the one-time programming cost.  :func:`chip_datasheet`
collects all of it for one (network, structure, technology) point and
renders a text datasheet; the CLI exposes it as ``repro-cli datasheet``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.configs import NetworkSpec, get_network_spec
from repro.hw.tech import TechnologyModel

from repro.arch.cost import COMPONENTS
from repro.arch.designs import DesignEvaluation, evaluate_design
from repro.arch.programming import ProgrammingCost, ProgrammingModel, programming_cost
from repro.arch.report import format_table
from repro.arch.scheduling import DesignTiming, TimingModel, buffer_plan, design_timing

__all__ = ["ChipDatasheet", "chip_datasheet"]


@dataclass
class ChipDatasheet:
    """Everything about one design point."""

    spec: NetworkSpec
    structure: str
    evaluation: DesignEvaluation
    timing: DesignTiming
    programming: ProgrammingCost
    buffers: List[Dict[str, object]]

    # -- headline numbers -----------------------------------------------------
    @property
    def summary(self) -> Dict[str, float]:
        return {
            "energy_uj_per_picture": self.evaluation.energy_uj_per_picture,
            "area_mm2": self.evaluation.area_mm2,
            "latency_us": self.timing.latency_us,
            "throughput_kfps": self.timing.throughput_kfps,
            "power_mw": self.timing.average_power_mw,
            "gops_per_j": self.evaluation.gops_per_joule(),
            "programming_uj": self.programming.energy_uj,
            "programming_ms": self.programming.time_ms,
        }

    def layer_rows(self) -> List[Dict[str, object]]:
        """Per-layer mapping and cost table."""
        rows = []
        for layer_cost in self.evaluation.cost.layers:
            mapping = layer_cost.mapping
            rows.append(
                {
                    "layer": mapping.geometry.name,
                    "matrix": (
                        f"{mapping.geometry.rows}x{mapping.geometry.cols}"
                    ),
                    "positions": mapping.geometry.positions,
                    "crossbars": mapping.crossbars,
                    "blocks": mapping.split_blocks,
                    "DACs": mapping.dac_channels,
                    "ADCs": mapping.adc_channels,
                    "SAs": mapping.sense_amps,
                    "energy_uj": layer_cost.total_energy_pj * 1e-6,
                    "area_mm2": layer_cost.total_area_um2 * 1e-6,
                }
            )
        return rows

    def component_rows(self) -> List[Dict[str, object]]:
        energy = self.evaluation.cost.energy_pj
        area = self.evaluation.cost.area_um2
        total_e = sum(energy.values())
        total_a = sum(area.values())
        return [
            {
                "component": key,
                "energy share": energy[key] / total_e if total_e else 0.0,
                "area share": area[key] / total_a if total_a else 0.0,
            }
            for key in COMPONENTS
        ]

    def render(self) -> str:
        """The full text datasheet."""
        lines = [
            f"=== {self.spec.name} on the {self.structure} structure "
            f"(crossbars <= {self.evaluation.tech.max_crossbar_size}, "
            f"{self.evaluation.tech.cell_bits}-bit cells) ===",
            "",
            "-- headline --",
        ]
        for key, value in self.summary.items():
            lines.append(f"  {key:<24} {value:,.3f}")
        lines += [
            "",
            "-- per-layer mapping --",
            format_table(self.layer_rows(), floatfmt="{:.4f}"),
            "",
            "-- component breakdown --",
            format_table(self.component_rows(), floatfmt="{:.4f}"),
            "",
            "-- intermediate-data buffers --",
            format_table(self.buffers, floatfmt="{:.2f}"),
            "",
            (
                "-- programming: "
                f"{self.programming.total_cells} cells, "
                f"{self.programming.energy_uj:.1f} uJ, "
                f"{self.programming.time_ms:.2f} ms; "
                "amortized <1% of energy after "
                f"{self.programming.pictures_to_amortize(0.01):.0f} pictures"
            ),
        ]
        return "\n".join(lines)


def chip_datasheet(
    spec: NetworkSpec | str,
    structure: str = "sei",
    tech: Optional[TechnologyModel] = None,
    timing_model: Optional[TimingModel] = None,
    programming_model: Optional[ProgrammingModel] = None,
    replication: int = 1,
) -> ChipDatasheet:
    """Assemble the complete datasheet for one design point."""
    if isinstance(spec, str):
        spec = get_network_spec(spec)
    tech = tech if tech is not None else TechnologyModel()

    evaluation = evaluate_design(spec, structure, tech)
    timing = design_timing(
        spec, structure, tech, timing_model, replication=replication
    )
    programming = programming_cost(
        evaluation.mappings,
        evaluation.energy_uj_per_picture,
        tech=tech,
        model=programming_model,
    )
    return ChipDatasheet(
        spec=spec,
        structure=structure,
        evaluation=evaluation,
        timing=timing,
        programming=programming,
        buffers=buffer_plan(spec, structure),
    )
