"""Unit tests for repro.hw.peripherals and repro.hw.tech."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.hw import (
    ADC,
    DAC,
    SEIDecoder,
    SenseAmp,
    TechnologyModel,
    TraditionalDecoder,
)


class TestADC:
    def test_convert_endpoints(self):
        adc = ADC(bits=8)
        codes = adc.convert(np.array([0.0, 1.0]), full_scale=1.0)
        np.testing.assert_array_equal(codes, [0, 255])

    def test_round_trip_error_bounded(self, rng):
        adc = ADC(bits=8)
        values = rng.random(100)
        recon = adc.quantize(values, full_scale=1.0)
        assert np.abs(recon - values).max() <= 0.5 / 255 + 1e-12

    def test_clipping(self):
        adc = ADC(bits=4)
        assert adc.convert(np.array([2.0]), 1.0)[0] == 15
        assert adc.convert(np.array([-1.0]), 1.0)[0] == 0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ADC(bits=0)
        with pytest.raises(ConfigurationError):
            ADC().convert(np.zeros(3), full_scale=0.0)


class TestDAC:
    def test_quantize_levels(self):
        dac = DAC(bits=1)
        out = dac.quantize(np.array([0.0, 0.4, 0.6, 1.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0, 1.0])

    def test_8bit_resolution(self, rng):
        dac = DAC(bits=8)
        values = rng.random(50)
        out = dac.quantize(values)
        assert np.abs(out - values).max() <= 0.5 / 255 + 1e-12

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            DAC(bits=0)
        with pytest.raises(ConfigurationError):
            DAC().quantize(np.zeros(2), full_scale=-1.0)


class TestSenseAmp:
    def test_fires_above_reference(self):
        sa = SenseAmp()
        out = sa.fire(np.array([0.1, 0.5, 0.9]), reference=0.5)
        np.testing.assert_array_equal(out, [0, 0, 1])

    def test_per_column_references(self):
        sa = SenseAmp()
        out = sa.fire(np.array([0.3, 0.3]), reference=np.array([0.2, 0.4]))
        np.testing.assert_array_equal(out, [1, 0])

    def test_noise_flips_marginal_decisions(self):
        sa = SenseAmp(noise_sigma=0.5)
        rng = np.random.default_rng(0)
        values = np.full(2000, 1.001)
        fired = sa.fire(values, reference=1.0, rng=rng)
        assert 0 < fired.mean() < 1

    def test_invalid_noise(self):
        with pytest.raises(ConfigurationError):
            SenseAmp(noise_sigma=-0.1)


class TestDecoders:
    def test_traditional_write_one_hot(self):
        dec = TraditionalDecoder(8)
        gates = dec.select_for_write(3)
        assert gates.sum() == 1 and gates[3] == 1

    def test_traditional_compute_all_on(self):
        dec = TraditionalDecoder(8)
        np.testing.assert_array_equal(dec.select_for_compute(), np.ones(8))

    def test_traditional_bad_row(self):
        with pytest.raises(ConfigurationError):
            TraditionalDecoder(4).select_for_write(4)
        with pytest.raises(ConfigurationError):
            TraditionalDecoder(0)

    def test_sei_compute_follows_input(self):
        dec = SEIDecoder(4)
        bits = np.array([1, 0, 1, 0])
        np.testing.assert_array_equal(dec.select_for_compute(bits), bits)

    def test_sei_rejects_non_binary(self):
        dec = SEIDecoder(4)
        with pytest.raises(ShapeError):
            dec.select_for_compute(np.array([0.5, 0, 1, 0]))

    def test_sei_rejects_wrong_length(self):
        dec = SEIDecoder(4)
        with pytest.raises(ShapeError):
            dec.select_for_compute(np.array([1, 0]))

    def test_sei_write_path_unchanged(self):
        gates = SEIDecoder(6).select_for_write(2)
        np.testing.assert_array_equal(
            gates, TraditionalDecoder(6).select_for_write(2)
        )


class TestTechnologyModel:
    def test_defaults_valid(self):
        tech = TechnologyModel()
        assert tech.bit_slices == 2
        assert tech.max_crossbar_size == 512

    def test_weight_bits_must_divide(self):
        with pytest.raises(ConfigurationError):
            TechnologyModel(weight_bits=10, cell_bits=4)

    def test_with_crossbar_size(self):
        tech = TechnologyModel().with_crossbar_size(256)
        assert tech.max_crossbar_size == 256
        assert tech.adc_energy_pj == TechnologyModel().adc_energy_pj

    def test_scaled_adc_linear(self):
        tech = TechnologyModel()
        assert tech.scaled_adc(4) == pytest.approx(tech.adc_energy_pj / 2)
        with pytest.raises(ConfigurationError):
            tech.scaled_adc(0)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            TechnologyModel(max_crossbar_size=0)
        with pytest.raises(ConfigurationError):
            TechnologyModel(cell_bits=0)
