"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro.cli info
    python -m repro.cli fig1
    python -m repro.cli table1|table2|table3|table5
    python -m repro.cli quantize network2
    python -m repro.cli split network1 --crossbar 256 --method homogenize
    python -m repro.cli tradeoff network1 --structure sei
    python -m repro.cli infer network2 --count 16
    python -m repro.cli serve network2 --requests 64 --workers 2
    python -m repro.cli serve network2 --listen 9100 --duration 60
    python -m repro.cli loadgen network2 --shards 2 --profile bursty
    python -m repro.cli loadgen network2 --quick --report loadgen.json
    python -m repro.cli top --url http://127.0.0.1:9100
    python -m repro.cli top --watch --frames 3 --interval 0.2
    python -m repro.cli conformance --quick
    python -m repro.cli conformance --update-golden
    python -m repro.cli explore sei_vs_adc --workers 4
    python -m repro.cli explore --quick --report report.md

Accuracy commands train models on first use and cache them under
``.cache/`` (a few minutes); cost-model commands are instant.

Every command accepts ``-v``/``-q`` (verbosity), ``--trace PATH``
(record spans + hardware activity counters + run manifest to a JSON
file) and ``--metrics-out PATH`` (the same export without the span
tree).  See docs/observability.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.arch import (
    breakdown_rows,
    buffer_plan,
    evaluate_design,
    format_table,
    power_time_tradeoff,
    reference_efficiency_rows,
    table5_rows,
)
from repro.configs import NETWORK_SPECS, get_network_spec

__all__ = ["main", "build_parser"]

logger = obs.get_logger("cli")


#: One-line summary per subcommand.  This is the single source the
#: ``--help`` epilog renders, and tests/test_cli.py asserts it covers
#: every ``_HANDLERS`` entry — adding a command without a summary (or a
#: summary without a handler) fails the suite, so the help text can no
#: longer drift from the actual command set.
_COMMAND_SUMMARIES = {
    "info": "package and paper summary",
    "fig1": "Fig. 1: baseline power/area breakdown",
    "table1": "Table 1: activation distribution",
    "table2": "Table 2: network configurations",
    "table3": "Table 3: quantization error rates",
    "table5": "Table 5: energy/area of the structures",
    "quantize": "run Algorithm 1 threshold search on a network",
    "split": "split a network across crossbars",
    "tradeoff": "power-time tradeoff and buffer plan",
    "datasheet": "full chip datasheet for one design point",
    "infer": "classify test samples through a warm inference session",
    "serve": "drive micro-batched serving over a warm session "
    "(--listen publishes /metrics)",
    "loadgen": "drive a sharded gateway with seeded open-loop traffic "
    "(poisson/bursty/diurnal or trace replay) and report latency "
    "quantiles",
    "top": "live terminal dashboard over a serving telemetry plane",
    "conformance": "cross-engine conformance harness (exit 1 on mismatch)",
    "explore": "design-space exploration: run/resume a study, report the "
    "Pareto front",
}


def _epilog() -> str:
    width = max(len(name) for name in _COMMAND_SUMMARIES)
    lines = ["commands:"]
    for name, summary in _COMMAND_SUMMARIES.items():
        lines.append(f"  {name:<{width}}  {summary}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Switched by Input: Power Efficient Structure "
            "for RRAM-based CNN' (DAC 2016)"
        ),
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # Shared flags live on a parent parser attached to every subcommand
    # (not on ``parser`` itself: a subparser would re-apply its defaults
    # and silently clobber values parsed before the command name).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more log output (repeat for debug)",
    )
    common.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="less log output (repeat to silence almost everything)",
    )
    common.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write span trace + metrics + run manifest JSON to PATH",
    )
    common.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write metrics + run manifest JSON (no span tree) to PATH",
    )
    common.add_argument(
        "--metrics-flush-interval",
        metavar="SECONDS",
        type=float,
        default=0.0,
        help="rewrite --trace/--metrics-out every SECONDS while the "
        "command runs, so a killed run still leaves partial metrics "
        "(0 = only write on exit)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", parents=[common], help="package and paper summary")
    sub.add_parser(
        "fig1", parents=[common], help="Fig. 1: baseline power/area breakdown"
    )
    sub.add_parser(
        "table1", parents=[common], help="Table 1: activation distribution"
    )
    sub.add_parser(
        "table2", parents=[common], help="Table 2: network configurations"
    )
    sub.add_parser(
        "table3", parents=[common], help="Table 3: quantization error rates"
    )
    sub.add_parser(
        "table5",
        parents=[common],
        help="Table 5: energy/area of the structures",
    )

    quantize = sub.add_parser(
        "quantize", parents=[common], help="run Algorithm 1 on a network"
    )
    quantize.add_argument("network", choices=sorted(NETWORK_SPECS))

    split = sub.add_parser(
        "split", parents=[common], help="split a network across crossbars"
    )
    split.add_argument("network", choices=sorted(NETWORK_SPECS))
    split.add_argument("--crossbar", type=int, default=512)
    split.add_argument(
        "--method",
        choices=("natural", "random", "homogenize"),
        default="homogenize",
    )
    split.add_argument("--dynamic", action="store_true")

    tradeoff = sub.add_parser(
        "tradeoff",
        parents=[common],
        help="power-time tradeoff and buffer plan",
    )
    tradeoff.add_argument("network", choices=sorted(NETWORK_SPECS))
    tradeoff.add_argument(
        "--structure", choices=("dac_adc", "onebit_adc", "sei"), default="sei"
    )

    datasheet = sub.add_parser(
        "datasheet",
        parents=[common],
        help="full chip datasheet for one design point",
    )
    datasheet.add_argument("network", choices=sorted(NETWORK_SPECS))
    datasheet.add_argument(
        "--structure", choices=("dac_adc", "onebit_adc", "sei"), default="sei"
    )
    datasheet.add_argument("--crossbar", type=int, default=512)
    datasheet.add_argument("--replication", type=int, default=1)

    def _add_session_args(p) -> None:
        from repro.core.engines import available_engines

        p.add_argument("network", choices=sorted(NETWORK_SPECS))
        p.add_argument(
            "--engine", choices=available_engines(), default="fused"
        )
        p.add_argument(
            "--tile",
            type=int,
            default=16,
            help="fixed execution tile of the session (samples per wave)",
        )
        p.add_argument(
            "--estimator",
            choices=("off", "exact", "threshold"),
            default="off",
            help="runtime activation estimator: skip MVM row work once "
            "column outputs are decided ('exact' is bit-identical, "
            "'threshold' trades accuracy via --confidence)",
        )
        p.add_argument(
            "--confidence",
            type=float,
            default=1.0,
            help="threshold-estimator confidence knob in (0, 1]; 1.0 "
            "keeps the full bound, smaller skips more aggressively",
        )

    infer = sub.add_parser(
        "infer",
        parents=[common],
        help="classify test samples through a warm inference session",
    )
    _add_session_args(infer)
    infer.add_argument(
        "--count", type=int, default=16, help="how many test samples to run"
    )

    serve = sub.add_parser(
        "serve",
        parents=[common],
        help="drive micro-batched serving over a warm session",
    )
    _add_session_args(serve)
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument("--clients", type=int, default=4)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--batch-size", type=int, default=64)
    serve.add_argument("--delay-ms", type=float, default=2.0)
    serve.add_argument("--queue", type=int, default=256)
    serve.add_argument(
        "--listen",
        metavar="[HOST:]PORT",
        default=None,
        help="publish the live telemetry plane over HTTP: /metrics "
        "(Prometheus), /metrics.json, /healthz, /flight (port 0 binds "
        "an ephemeral port; see --port-file)",
    )
    serve.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound exposition URL to PATH (ephemeral-port "
        "discovery for scripts/CI)",
    )
    serve.add_argument(
        "--duration",
        metavar="SECONDS",
        type=float,
        default=0.0,
        help="with --listen: keep serving (looping the request set) for "
        "this long so scrapers can watch a live window (0 = one pass)",
    )
    serve.add_argument(
        "--slo-window",
        metavar="SECONDS",
        type=float,
        default=60.0,
        help="sliding SLO window length (with --listen)",
    )
    serve.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        help="breach when the windowed p99 latency exceeds this",
    )
    serve.add_argument(
        "--slo-error-rate",
        type=float,
        default=None,
        help="breach when the windowed error rate exceeds this",
    )
    serve.add_argument(
        "--slo-joules-per-request",
        type=float,
        default=None,
        help="breach when windowed SEI dynamic energy per request "
        "(joules) exceeds this",
    )

    loadgen = sub.add_parser(
        "loadgen",
        parents=[common],
        help=_COMMAND_SUMMARIES["loadgen"],
    )
    _add_session_args(loadgen)
    loadgen.add_argument(
        "--shards", type=int, default=2, help="session shards on the ring"
    )
    loadgen.add_argument(
        "--profile",
        choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="arrival process (ignored with --replay)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=200.0,
        help="mean arrival rate, requests/second",
    )
    loadgen.add_argument(
        "--duration", type=float, default=2.0,
        help="schedule horizon in seconds",
    )
    loadgen.add_argument(
        "--burst-rate", type=float, default=1000.0,
        help="bursty: arrival rate inside a burst",
    )
    loadgen.add_argument(
        "--burst-dwell", type=float, default=0.05,
        help="bursty: mean burst dwell time (s)",
    )
    loadgen.add_argument(
        "--calm-dwell", type=float, default=0.2,
        help="bursty: mean calm dwell time (s)",
    )
    loadgen.add_argument(
        "--period", type=float, default=1.0,
        help="diurnal: sinusoid period (s)",
    )
    loadgen.add_argument(
        "--amplitude", type=float, default=0.5,
        help="diurnal: modulation depth in [0,1)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--replay",
        metavar="PATH",
        default=None,
        help="replay a saved trace file instead of generating a schedule",
    )
    loadgen.add_argument(
        "--save-trace",
        metavar="PATH",
        dest="save_trace_path",
        default=None,
        help="save the generated schedule as a replayable trace file",
    )
    loadgen.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the summary report JSON to PATH (CI artifact)",
    )
    loadgen.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="gateway token-bucket admission rate (req/s; default off)",
    )
    loadgen.add_argument(
        "--max-in-flight", type=int, default=256,
        help="gateway bounded in-flight admission window",
    )
    loadgen.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: short low-rate run (overrides --rate/--duration)",
    )

    top = sub.add_parser(
        "top",
        parents=[common],
        help=_COMMAND_SUMMARIES["top"],
    )
    top.add_argument(
        "--url",
        metavar="URL",
        default=None,
        help="poll a running exposition server's /metrics.json "
        "(e.g. http://127.0.0.1:9100)",
    )
    top.add_argument(
        "--watch",
        action="store_true",
        help="file-free demo mode: drive a synthetic in-process serving "
        "workload and watch its live plane (no server, no model cache)",
    )
    top.add_argument(
        "--interval",
        metavar="SECONDS",
        type=float,
        default=1.0,
        help="seconds between frames",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=0,
        help="stop after this many frames (0 = until interrupted)",
    )

    conformance = sub.add_parser(
        "conformance",
        parents=[common],
        help=(
            "cross-engine conformance: differential cases, golden corpus, "
            "fault injection (exit 1 on any mismatch)"
        ),
    )
    conformance.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 20 generated cases + golden corpus + fault "
        "self-check, no degradation campaign",
    )
    conformance.add_argument(
        "--cases",
        type=int,
        default=40,
        help="generated differential cases to sweep (ignored with --quick)",
    )
    conformance.add_argument("--seed", type=int, default=0)
    conformance.add_argument(
        "--engines",
        default="fused,packed,reference,adc",
        help="comma-separated engine names to conform (default: all four)",
    )
    conformance.add_argument(
        "--estimator",
        choices=("off", "exact"),
        default="off",
        help="with 'exact': also assert the fused/packed engines with "
        "the runtime activation estimator stay bit-identical to their "
        "estimator-off selves on the golden corpus",
    )
    conformance.add_argument(
        "--golden",
        metavar="DIR",
        default=None,
        help="golden corpus directory (default: tests/golden)",
    )
    conformance.add_argument(
        "--update-golden",
        action="store_true",
        help="rewrite the golden corpus instead of verifying it "
        "(refuses while any engine mismatch is live)",
    )
    conformance.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write minimized counterexample artifacts here (CI upload)",
    )
    conformance.add_argument(
        "--campaign",
        action="store_true",
        help="also sweep the fault-injection degradation campaign (slow; "
        "the nightly job)",
    )
    conformance.add_argument(
        "--no-self-check",
        action="store_true",
        help="skip the deliberate-fault detection self-check",
    )
    conformance.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the full conformance report JSON to PATH",
    )

    explore = sub.add_parser(
        "explore",
        parents=[common],
        help=_COMMAND_SUMMARIES["explore"],
    )
    explore.add_argument(
        "study",
        nargs="?",
        default="sei_vs_adc",
        help="built-in study name (default: sei_vs_adc; see --list)",
    )
    explore.add_argument(
        "--list",
        action="store_true",
        dest="list_studies",
        help="list the built-in studies and exit",
    )
    explore.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: the study's *_quick variant when one exists, "
        "otherwise the first 8 candidates",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = evaluate inline)",
    )
    explore.add_argument(
        "--limit",
        type=int,
        default=0,
        help="evaluate only the first N candidates (0 = all)",
    )
    explore.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="run-store root; the study resumes from its records there "
        "(default: .cache/dse)",
    )
    explore.add_argument(
        "--seed", type=int, default=None, help="override the study seed"
    )
    explore.add_argument(
        "--samples",
        type=int,
        default=None,
        help="override eval_samples (test images scored per candidate)",
    )
    explore.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-candidate timeout in seconds (0 = unlimited)",
    )
    explore.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the markdown study report to PATH",
    )
    explore.add_argument(
        "--json",
        metavar="PATH",
        dest="json_out",
        default=None,
        help="write the deterministic report JSON to PATH",
    )
    return parser


def _write_export(payload: dict, path: str) -> None:
    # Atomic (tmp + rename) so a reader — or a kill mid-flush — never
    # sees a truncated JSON document.
    import os

    target = Path(path)
    if str(target.parent) not in ("", "."):
        target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, target)


def _export_outputs(rec, args, argv) -> None:
    """Write the recorder's export to the requested --trace/--metrics-out."""
    export = rec.export(command=args.command, argv=argv)
    if args.trace is not None:
        _write_export(export, args.trace)
    if args.metrics_out is not None:
        metrics_only = {k: v for k, v in export.items() if k != "trace"}
        _write_export(metrics_only, args.metrics_out)


class _PeriodicFlusher:
    """Daemon thread rewriting the metric exports every few seconds.

    Long serving runs die by SIGKILL/OOM without unwinding the
    ``recording()`` context; with ``--metrics-flush-interval`` the last
    flushed export survives the kill.  Flush errors are swallowed — a
    full disk must not take the measured command down.
    """

    def __init__(self, rec, args, argv, interval: float) -> None:
        import threading

        self._rec = rec
        self._args = args
        self._argv = argv
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="metrics-flusher", daemon=True
        )

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                _export_outputs(self._rec, self._args, self._argv)
            except Exception:  # noqa: BLE001 - keep flushing next tick
                logger.debug("periodic metrics flush failed", exc_info=True)

    def __enter__(self) -> "_PeriodicFlusher":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obs.configure(args.verbose - args.quiet)
    handler = _HANDLERS[args.command]

    if args.trace is None and args.metrics_out is None:
        return handler(args) or 0

    recorded_argv = list(argv or sys.argv[1:])
    with obs.recording() as rec:
        if args.metrics_flush_interval > 0:
            with _PeriodicFlusher(
                rec, args, recorded_argv, args.metrics_flush_interval
            ):
                status = handler(args) or 0
        else:
            status = handler(args) or 0
    _export_outputs(rec, args, recorded_argv)
    if args.trace is not None:
        logger.info("trace written to %s", args.trace)
    if args.metrics_out is not None:
        logger.info("metrics written to %s", args.metrics_out)
    return status


# -- command handlers -----------------------------------------------------------


def _cmd_info(args) -> None:
    import repro

    logger.info("repro %s", repro.__version__)
    logger.info("%s", __doc__)
    logger.info("networks:")
    for name in sorted(NETWORK_SPECS):
        spec = get_network_spec(name)
        logger.info("  %s: %s, ...", name, spec.describe()["Conv Layer 1"])


def _cmd_fig1(args) -> None:
    evaluation = evaluate_design("network1", "dac_adc")
    logger.info(
        "%s", format_table(breakdown_rows(evaluation.cost), floatfmt="{:.3f}")
    )
    logger.info(
        "\nADC+DAC: %.1f%% power, %.1f%% area",
        100 * evaluation.cost.energy_share("adc", "dac"),
        100 * evaluation.cost.area_share("adc", "dac"),
    )


def _cmd_table1(args) -> None:
    from repro.analysis import conv_output_distribution
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    rows = []
    for name in sorted(NETWORK_SPECS):
        model = get_quantized(name, dataset=dataset)
        dist = conv_output_distribution(
            model.search.network, dataset.train.images[:500]
        )
        for layer, fractions in dist.items():
            rows.append(
                {
                    "network": name,
                    "layer": layer,
                    "0~1/16": fractions[0],
                    "1/16~1/8": fractions[1],
                    "1/8~1/4": fractions[2],
                    "1/4~1": fractions[3],
                }
            )
    logger.info("%s", format_table(rows, floatfmt="{:.4f}"))


def _cmd_table2(args) -> None:
    rows = [
        {"network": name, **get_network_spec(name).describe()}
        for name in sorted(NETWORK_SPECS)
    ]
    logger.info("%s", format_table(rows))


def _cmd_table3(args) -> None:
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    rows = []
    for name in sorted(NETWORK_SPECS):
        model = get_quantized(name, dataset=dataset)
        rows.append(
            {
                "network": name,
                "before quant (%)": 100 * model.float_test_error,
                "after quant (%)": 100 * model.quantized_test_error,
            }
        )
    logger.info("%s", format_table(rows))


def _cmd_table5(args) -> None:
    logger.info("%s", format_table(table5_rows()))
    logger.info("")
    logger.info("%s", format_table(reference_efficiency_rows()))


def _cmd_quantize(args) -> None:
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    model = get_quantized(args.network, dataset=dataset)
    # Re-measure through the binarized network rather than echoing the
    # cached number: the command reports what the artifact does *now*,
    # and a traced run records the layer activity even on a cache hit.
    with obs.span(
        "quantize.evaluate", network=args.network, samples=len(dataset.test)
    ):
        quantized_error = model.search.binarized().error_rate(
            dataset.test.images, dataset.test.labels
        )
    logger.info("float test error:     %.2f%%", 100 * model.float_test_error)
    logger.info("quantized test error: %.2f%%", 100 * quantized_error)
    logger.info("thresholds:")
    for layer, threshold in model.search.thresholds.items():
        logger.info(
            "  layer %d: %.4f (rescaled by %.3f)",
            layer,
            threshold,
            model.search.divisors[layer],
        )


def _cmd_split(args) -> None:
    from repro.core import SplitConfig, build_split_network
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    model = get_quantized(args.network, dataset=dataset)
    result = build_split_network(
        model.search.network,
        model.search.thresholds,
        dataset.train.images,
        dataset.train.labels,
        SplitConfig(
            max_crossbar_size=args.crossbar,
            partition_method=args.method,
            dynamic=args.dynamic,
        ),
    )
    error = result.binarized.error_rate(
        dataset.test.images, dataset.test.labels
    )
    logger.info(
        "unsplit quantized error: %.2f%%", 100 * model.quantized_test_error
    )
    logger.info(
        "split error (%s, crossbar %d): %.2f%%",
        args.method,
        args.crossbar,
        100 * error,
    )
    for index, report in result.reports.items():
        logger.info(
            "  layer %d: %d blocks, vote %s, Equ.10 distance %.4f "
            "(natural %.4f)",
            index,
            report.num_blocks,
            report.decision.vote_threshold,
            report.distance,
            report.natural_distance,
        )


def _cmd_tradeoff(args) -> None:
    logger.info(
        "%s", format_table(power_time_tradeoff(args.network, args.structure))
    )
    logger.info("")
    logger.info("%s", format_table(buffer_plan(args.network, args.structure)))


def _cmd_datasheet(args) -> None:
    from repro.arch import chip_datasheet
    from repro.hw import TechnologyModel

    sheet = chip_datasheet(
        args.network,
        args.structure,
        tech=TechnologyModel().with_crossbar_size(args.crossbar),
        replication=args.replication,
    )
    logger.info("%s", sheet.render())


def _session_engine_spec(args):
    """The :class:`EngineSpec` a session subcommand's flags describe."""
    from repro.core.engines import EngineSpec
    from repro.core.estimate import EstimatorPolicy

    return EngineSpec(
        args.engine,
        estimator=EstimatorPolicy(
            mode=args.estimator, confidence=args.confidence
        ),
    )


def _cmd_infer(args) -> None:
    from repro import api
    from repro.zoo import get_dataset

    dataset = get_dataset()
    session = api.compile(
        args.network, engine=_session_engine_spec(args), tile=args.tile
    )
    images = dataset.test.images[: args.count]
    labels = dataset.test.labels[: args.count]
    predictions = session.classify(images)
    correct = int((predictions == labels).sum())
    logger.info("session: %r", session)
    logger.info("predictions: %s", predictions.tolist())
    logger.info("labels:      %s", labels.tolist())
    logger.info(
        "correct: %d/%d (%.1f%%)",
        correct,
        len(images),
        100 * correct / len(images),
    )


def _slo_config(args):
    from repro.obs import SloConfig

    return SloConfig(
        window_s=args.slo_window,
        p99_ms=args.slo_p99_ms,
        max_error_rate=args.slo_error_rate,
        max_joules_per_request=args.slo_joules_per_request,
    )


def _drive_requests(batcher, requests, clients: int):
    """Fan ``requests`` across ``clients`` submitter threads; gather all."""
    import threading

    import numpy as np

    futures = [None] * len(requests)

    def client(offset: int) -> None:
        for i in range(offset, len(requests), clients):
            futures[i] = batcher.submit(requests[i])

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return np.stack([f.result() for f in futures])


def _cmd_serve(args) -> None:
    import time

    import numpy as np

    from repro import api
    from repro.serve import BatcherConfig
    from repro.zoo import get_dataset

    dataset = get_dataset()
    images = dataset.test.images
    requests = [images[i % len(images)] for i in range(args.requests)]
    batcher_config = BatcherConfig(
        max_batch_size=args.batch_size,
        max_delay_ms=args.delay_ms,
        max_queue_depth=args.queue,
        workers=args.workers,
    )

    if args.listen is not None:
        session = api.compile(
            args.network, engine=_session_engine_spec(args), tile=args.tile
        )
        batcher, plane, server = session.serve_live(
            batcher_config, slo=_slo_config(args), listen=args.listen
        )
        logger.info("telemetry plane: %s/metrics", server.url)
        if args.port_file is not None:
            Path(args.port_file).write_text(server.url + "\n")
        start = time.perf_counter()
        outputs = _drive_requests(batcher, requests, args.clients)
        # Keep looping the request set so scrapers see a *live* window,
        # until the requested duration elapses.
        while time.perf_counter() - start < args.duration:
            _drive_requests(batcher, requests, args.clients)
        elapsed = time.perf_counter() - start
        from repro.obs import render_dashboard

        logger.info("%s", render_dashboard(plane.sample()))
        server.stop()
        batcher.stop()
        plane.uninstall()
    else:
        batcher = api.serve(
            args.network,
            engine=_session_engine_spec(args),
            tile=args.tile,
            batcher=batcher_config,
        )
        # Split the requests across concurrent client threads, the
        # traffic pattern the micro-batcher exists for.
        start = time.perf_counter()
        outputs = _drive_requests(batcher, requests, args.clients)
        elapsed = time.perf_counter() - start
        batcher.stop()

    served = batcher.stats.requests
    logger.info("served %d requests in %.3fs (%.0f req/s)",
                served, elapsed, served / elapsed if elapsed else 0.0)
    for key, value in batcher.stats.as_dict().items():
        logger.info("  %s: %s", key, value)
    logger.info(
        "prediction histogram: %s",
        np.bincount(np.argmax(outputs, axis=1), minlength=10).tolist(),
    )


def _cmd_loadgen(args) -> int:
    from repro import api
    from repro.serve import (
        GatewayConfig,
        LoadProfile,
        generate_schedule,
        load_trace,
        run_load,
        save_trace,
        stationary_rate,
    )
    from repro.zoo import get_dataset

    rate = 150.0 if args.quick else args.rate
    duration = 1.0 if args.quick else args.duration
    if args.replay is not None:
        profile = load_trace(args.replay)
    else:
        profile = LoadProfile(
            kind=args.profile,
            rate=rate,
            duration_s=duration,
            burst_rate=args.burst_rate,
            burst_dwell_s=args.burst_dwell,
            calm_dwell_s=args.calm_dwell,
            period_s=args.period,
            amplitude=args.amplitude,
        )
    schedule = generate_schedule(profile, seed=args.seed)
    if args.save_trace_path is not None:
        save_trace(args.save_trace_path, schedule, profile, seed=args.seed)
        logger.info("trace written to %s", args.save_trace_path)
    images = get_dataset().test.images
    config = GatewayConfig(
        shards=args.shards,
        rate=args.rate_limit,
        max_in_flight=args.max_in_flight,
    )
    gateway = api.gateway(
        args.network,
        config=config,
        engine=_session_engine_spec(args),
        tile=args.tile,
    )
    try:
        report = run_load(
            lambda x: gateway.submit(x, tenant=args.network),
            schedule,
            lambda i: images[i % len(images)],
        )
        report["gateway"] = gateway.stats()
    finally:
        gateway.stop()
    report["profile"] = {
        "kind": profile.kind,
        "seed": args.seed,
        "stationary_rate_rps": round(stationary_rate(profile), 3),
        "arrivals": len(schedule),
    }
    report["shards"] = args.shards
    logger.info(
        "offered %.0f req/s -> served %.0f req/s  "
        "(ok=%d rejected=%d errors=%d)",
        report["offered_rate_rps"],
        report["throughput_rps"],
        report["ok"],
        report["rejected"],
        report["errors"] + report["dead"],
    )
    logger.info(
        "latency p50=%s p95=%s p99=%s p999=%s (ms)",
        report["p50_ms"],
        report["p95_ms"],
        report["p99_ms"],
        report["p999_ms"],
    )
    if args.report is not None:
        _write_export(report, args.report)
        logger.info("report written to %s", args.report)
    # A smoke run fails only if nothing was served at all.
    return 0 if report["ok"] > 0 else 1


def _watch_plane():
    """A self-contained synthetic serving plane for ``top --watch``.

    Builds a micro-batcher over a fake compute target that sleeps
    ~200µs and records plausible ``hw/layer*`` activity (so the power
    column is live), plus a driver thread submitting a steady trickle
    of requests.  Returns ``(plane, stop_callable)``.  No model cache,
    no network, no server — the file-free mode tests rely on.
    """
    import threading
    import time as _time

    import numpy as np

    from repro.obs import TelemetryPlane, active
    from repro.obs.power import record_mvm_batch
    from repro.serve import BatcherConfig, MicroBatcher

    rng = np.random.default_rng(0)

    def fake_infer(batch: np.ndarray) -> np.ndarray:
        _time.sleep(2e-4)
        rec = active()
        if rec is not None:
            bits = (
                rng.random((len(batch), 64)) < 0.25
            ).astype(np.float64)
            active_rows = int(bits.sum())
            positions = len(batch) * 16
            decided = (positions * 3) // 4
            record_mvm_batch(
                rec.metrics,
                0,
                bits,
                16,
                cells_per_weight=2,
                # A plausible estimator signature so the skip gauges in
                # the dashboard are live: ~40% of active rows skipped,
                # ~75% of output bits decided early.
                skipped_rows=(active_rows * 2) // 5,
                skipped_slots=(bits.size * 2) // 5,
                est_positions=positions,
                est_decided=decided,
                sa_events=positions - decided,
            )
        return np.zeros((len(batch), 10))

    plane = TelemetryPlane().install()
    batcher = plane.attach(
        MicroBatcher(
            fake_infer, BatcherConfig(max_batch_size=8, max_delay_ms=1.0)
        ).start()
    )
    stop = threading.Event()

    def drive() -> None:
        sample = np.zeros(4)
        while not stop.is_set():
            try:
                batcher.submit(sample, timeout=0.5)
            except Exception:  # noqa: BLE001 - demo traffic, keep going
                pass
            _time.sleep(2e-3)

    driver = threading.Thread(target=drive, name="top-demo", daemon=True)
    driver.start()

    def shutdown() -> None:
        stop.set()
        driver.join()
        batcher.stop()
        plane.uninstall()

    return plane, shutdown


def _cmd_top(args) -> int:
    import time

    from repro.obs import render_dashboard

    if args.url is None and not args.watch:
        logger.error("top needs --url URL (poll a server) or --watch")
        return 2

    fetch = None
    shutdown = None
    if args.watch:
        plane, shutdown = _watch_plane()
        fetch = lambda: plane.sample()  # noqa: E731
    else:
        import json as _json
        from urllib.request import urlopen

        endpoint = args.url.rstrip("/") + "/metrics.json"

        def fetch():
            with urlopen(endpoint, timeout=5.0) as response:
                return _json.loads(response.read())["status"]

    frame = 0
    try:
        while True:
            frame += 1
            print(render_dashboard(fetch()), flush=True)
            if args.frames and frame >= args.frames:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        if shutdown is not None:
            shutdown()
    return 0


def _cmd_conformance(args) -> int:
    from repro.testing.conformance import ConformanceConfig, run_conformance

    engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    config = ConformanceConfig(
        cases=20 if args.quick else args.cases,
        seed=args.seed,
        engines=engines,
        estimator=args.estimator,
        golden_dir=Path(args.golden) if args.golden else None,
        update_golden=args.update_golden,
        self_check=not args.no_self_check,
        artifacts_dir=Path(args.artifacts) if args.artifacts else None,
        campaign=args.campaign and not args.quick,
    )
    report = run_conformance(config)
    for line in report.summary_lines():
        logger.info("%s", line)
    if args.report:
        _write_export(report.as_dict(), args.report)
        logger.info("report written to %s", args.report)
    return 0 if report.ok else 1


def _cmd_explore(args) -> int:
    from repro.dse import (
        available_studies,
        build_report,
        get_study,
        render_markdown,
        report_json,
        run_study,
    )

    if args.list_studies:
        for name in available_studies():
            logger.info("%s", name)
        return 0

    name = args.study
    limit = args.limit
    if args.quick and not name.endswith("_quick"):
        if f"{name}_quick" in available_studies():
            name = f"{name}_quick"
        elif not limit:
            limit = 8

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.samples is not None:
        overrides["eval_samples"] = args.samples
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout
    study = get_study(name, **overrides)

    with obs.span(
        "cli.explore", study=study.name, workers=args.workers, limit=limit
    ):
        result = run_study(
            study,
            workers=args.workers,
            store_root=None if args.out is None else Path(args.out),
            limit=limit,
        )
        report = build_report(result)

    logger.info(
        "study %s: %d/%d candidate(s) complete (%d resumed, %d failed), "
        "store %s",
        study.name,
        report["counts"]["completed"],
        report["counts"]["candidates"],
        result.skipped,
        report["counts"]["failed"],
        result.store.directory,
    )
    logger.info("%s", render_markdown(report))
    if args.json_out is not None:
        target = Path(args.json_out)
        if str(target.parent) not in ("", "."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(report_json(report))
        logger.info("report JSON written to %s", args.json_out)
    if args.report is not None:
        target = Path(args.report)
        if str(target.parent) not in ("", "."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(render_markdown(report))
        logger.info("markdown report written to %s", args.report)
    return 0 if report["counts"]["completed"] else 1


_HANDLERS = {
    "info": _cmd_info,
    "fig1": _cmd_fig1,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table5": _cmd_table5,
    "quantize": _cmd_quantize,
    "split": _cmd_split,
    "tradeoff": _cmd_tradeoff,
    "datasheet": _cmd_datasheet,
    "infer": _cmd_infer,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "top": _cmd_top,
    "conformance": _cmd_conformance,
    "explore": _cmd_explore,
}


if __name__ == "__main__":
    sys.exit(main())
