"""Tests for the live telemetry plane: snapshots, SLO windows, flight
recorder, Prometheus exposition, the HTTP server and the dashboard.

The load-bearing guarantees:

* snapshot/delta reads are consistent under concurrent registry writes
  and counters/histograms difference correctly between snapshots;
* histogram quantiles are exact when a window's mass sits in one bin
  and Prometheus-style interpolated otherwise;
* SLO breach counters fire exactly for configured targets and trigger
  flight-recorder dumps through the plane;
* the exposition server serves well-formed payloads from a *live*
  MicroBatcher session end to end.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SloConfig,
    SloTracker,
    TelemetryPlane,
    delta_metrics,
    quantile_from_counts,
    render_dashboard,
    render_prometheus,
)
from repro.obs.metrics import MetricsSnapshot
from repro.serve import BatcherConfig, MicroBatcher


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    assert obs.active() is None
    yield
    obs.disable()


def _snapshot_pair(fill):
    """Two snapshots of one registry, ``fill(registry)`` run in between."""
    registry = MetricsRegistry()
    registry.inc("serve/requests", 0)
    before = registry.snapshot()
    fill(registry)
    return before, registry.snapshot()


class TestSnapshots:
    def test_seq_bumps_on_every_write(self):
        registry = MetricsRegistry()
        start = registry.seq
        registry.inc("a")
        registry.set_gauge("b", 1.0)
        registry.observe("c", 0.5, edges=[0.0, 1.0])
        # Three writes + instrument creations, all sequence-numbered.
        assert registry.seq >= start + 3

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("serve/requests", 3)
        snapshot = registry.snapshot()
        registry.inc("serve/requests", 7)
        assert snapshot.metrics["counters"]["serve/requests"] == 3
        assert registry.snapshot().metrics["counters"]["serve/requests"] == 10
        assert registry.snapshot().seq > snapshot.seq

    def test_snapshot_json_round_trip(self):
        registry = MetricsRegistry()
        registry.observe("h", np.array([1.0, 2.0]), edges=[0.0, 1.5, 3.0])
        payload = registry.snapshot().as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_delta_counters_subtract(self):
        before, after = _snapshot_pair(
            lambda r: (r.inc("serve/requests", 5), r.inc("fresh", 2))
        )
        delta = delta_metrics(before.metrics, after.metrics)
        assert delta["counters"]["serve/requests"] == 5
        # A counter born inside the window deltas from zero.
        assert delta["counters"]["fresh"] == 2

    def test_delta_histogram_counts_subtract(self):
        edges = [0.0, 1.0, 10.0]

        def fill(registry):
            registry.observe("lat", np.array([0.5, 0.7, 5.0]), edges=edges)

        registry = MetricsRegistry()
        registry.observe("lat", np.array([0.5]), edges=edges)
        before = registry.snapshot()
        fill(registry)
        delta = delta_metrics(before.metrics, registry.snapshot().metrics)
        hist = delta["histograms"]["lat"]
        assert hist["counts"] == [2, 1]
        assert hist["count"] == 3

    def test_concurrent_writes_never_tear_a_snapshot(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                registry.inc("pair/a")
                registry.inc("pair/b")

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(200):
                counters = registry.snapshot().metrics["counters"]
                a = counters.get("pair/a", 0)
                b = counters.get("pair/b", 0)
                # a is always incremented first; a consistent view can
                # differ by at most the one in-flight pair.
                assert 0 <= a - b <= 1
        finally:
            stop.set()
            thread.join()


class TestQuantiles:
    def test_single_bin_mass_is_exact(self):
        # All observations equal: every quantile is that value, exactly.
        registry = MetricsRegistry()
        registry.observe(
            "lat", np.full(100, 7.5), edges=[0.0, 5.0, 10.0, 20.0]
        )
        hist = registry.histogram("lat")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(7.5)

    def test_interpolates_within_bins(self):
        counts = np.array([2, 2], dtype=float)
        edges = np.array([1.0, 10.0, 100.0])
        q25 = quantile_from_counts(edges, counts, 0.25)
        q75 = quantile_from_counts(edges, counts, 0.75)
        assert 1.0 < q25 < 10.0 < q75 < 100.0
        # Log-spaced edges -> log-linear interpolation: the halfway
        # rank of a bin lands at its geometric midpoint.
        assert quantile_from_counts(edges, counts, 0.25) == pytest.approx(
            np.sqrt(10.0)
        )

    def test_empty_returns_none(self):
        assert quantile_from_counts(
            np.array([0.0, 1.0]), np.array([0.0]), 0.5
        ) is None
        registry = MetricsRegistry()
        registry.histogram("lat", edges=[0.0, 1.0])
        assert registry.histogram("lat").quantile(0.5) is None

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile_from_counts(np.array([0.0, 1.0]), np.array([1.0]), 1.5)

    def test_monotone_in_q(self):
        rng = np.random.default_rng(0)
        registry = MetricsRegistry()
        registry.observe(
            "lat",
            rng.lognormal(1.0, 0.8, size=500),
            edges=[0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0],
        )
        hist = registry.histogram("lat")
        values = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)
        assert values[-1] <= hist.max


def _snap(monotonic_s, metrics, seq=0):
    return MetricsSnapshot(
        seq=seq, wall_time_s=0.0, monotonic_s=monotonic_s, metrics=metrics
    )


def _serve_metrics(requests=0, failed=0, rejected=0, latencies=()):
    registry = MetricsRegistry()
    registry.inc("serve/requests", requests)
    registry.inc("serve/failed_requests", failed)
    registry.inc("serve/rejected", rejected)
    registry.inc("serve/batches", max(1, requests // 4) if requests else 0)
    if latencies:
        registry.observe(
            "serve/latency_ms",
            np.asarray(latencies, dtype=float),
            edges=[0.1, 1.0, 10.0, 100.0, 1000.0],
        )
    return registry.as_dict()


class TestSloTracker:
    def test_windowed_rates_and_quantiles(self):
        tracker = SloTracker(SloConfig(window_s=60.0))
        tracker.observe(_snap(0.0, _serve_metrics()))
        stats = tracker.observe(
            _snap(
                10.0,
                _serve_metrics(
                    requests=80, failed=20, rejected=25, latencies=[5.0] * 50
                ),
                seq=1,
            )
        )
        assert stats["requests"] == 80
        assert stats["requests_per_second"] == pytest.approx(8.0)
        assert stats["error_rate"] == pytest.approx(0.2)
        assert stats["rejection_rate"] == pytest.approx(0.2)
        assert 1.0 < stats["p99_ms"] < 10.0

    def test_window_evicts_old_snapshots(self):
        tracker = SloTracker(SloConfig(window_s=10.0))
        tracker.observe(_snap(0.0, _serve_metrics(requests=0)))
        tracker.observe(_snap(5.0, _serve_metrics(requests=100), seq=1))
        stats = tracker.observe(
            _snap(20.0, _serve_metrics(requests=130), seq=2)
        )
        # The t=0 snapshot fell out; the window base is t=5 (100 reqs).
        assert stats["requests"] == 30
        assert stats["window_s"] == pytest.approx(15.0)

    def test_breach_counts_and_callback(self):
        seen = []
        tracker = SloTracker(
            SloConfig(window_s=60.0, p99_ms=1.0, max_error_rate=0.5),
            on_breach=lambda name, observed, limit, stats: seen.append(name),
        )
        tracker.observe(_snap(0.0, _serve_metrics()))
        stats = tracker.observe(
            _snap(
                5.0,
                _serve_metrics(requests=40, latencies=[50.0] * 40),
                seq=1,
            )
        )
        assert [b["target"] for b in stats["breaches"]] == ["p99_ms"]
        assert tracker.breach_counts == {"p99_ms": 1, "error_rate": 0}
        assert tracker.total_breaches == 1
        assert seen == ["p99_ms"]

    def test_breach_callback_errors_swallowed(self):
        def boom(*args):
            raise RuntimeError("dump failed")

        tracker = SloTracker(
            SloConfig(window_s=60.0, p99_ms=0.01), on_breach=boom
        )
        tracker.observe(_snap(0.0, _serve_metrics()))
        stats = tracker.observe(
            _snap(1.0, _serve_metrics(requests=4, latencies=[5.0] * 4), seq=1)
        )
        assert stats["breaches"], "breach still recorded despite hook error"

    def test_degenerate_window_is_empty(self):
        tracker = SloTracker(SloConfig(window_s=60.0, p99_ms=1.0))
        stats = tracker.observe(_snap(0.0, _serve_metrics(requests=10)))
        assert stats["requests"] == 0
        assert stats["p99_ms"] is None
        assert stats["breaches"] == []


class TestFlightRecorder:
    def test_ring_wraps_and_counts_drops(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record("enqueue", rid=i)
        assert len(flight) == 4
        assert flight.seq == 10
        assert flight.dropped == 6
        assert [e["rid"] for e in flight.events()] == [6, 7, 8, 9]
        # seq survives the wrap: gaps are detectable.
        assert [e["seq"] for e in flight.events()] == [7, 8, 9, 10]

    def test_dump_payload_schema(self):
        flight = FlightRecorder(capacity=8)
        flight.record("batch", rids=[1, 2], size=2)
        dump = flight.dump(reason="test")
        assert dump["reason"] == "test"
        assert dump["capacity"] == 8
        assert dump["recorded"] == 1
        assert dump["dropped"] == 0
        assert dump["events"][0]["kind"] == "batch"
        assert json.loads(json.dumps(dump)) == dump
        assert flight.dumps == 1

    def test_auto_dump_fires_and_errors_swallowed(self):
        fired = []
        flight = FlightRecorder(
            capacity=8,
            auto_dump_kinds={"batch_failed"},
            on_auto_dump=lambda kind, event: fired.append(kind),
        )
        flight.record("batch")
        assert fired == []
        flight.record("batch_failed", error="boom")
        assert fired == ["batch_failed"]

        broken = FlightRecorder(
            capacity=8,
            auto_dump_kinds={"x"},
            on_auto_dump=lambda *a: (_ for _ in ()).throw(RuntimeError()),
        )
        event = broken.record("x")  # must not raise
        assert event["kind"] == "x"

    def test_events_filter_by_kind(self):
        flight = FlightRecorder(capacity=8)
        flight.record("enqueue", rid=1)
        flight.record("batch", rids=[1])
        assert [e["kind"] for e in flight.events("batch")] == ["batch"]


class TestRenderPrometheus:
    def test_counter_gauge_histogram_grammar(self):
        registry = MetricsRegistry()
        registry.inc("serve/requests", 12)
        registry.set_gauge("serve/queue_depth", 3)
        registry.observe(
            "serve/latency_ms", np.array([0.5, 2.0, 2.5]), edges=[0.0, 1.0, 5.0]
        )
        text = render_prometheus(registry.as_dict())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 12" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_latency_ms histogram" in text
        assert 'repro_serve_latency_ms_bucket{le="1.0"} 1' in text
        # Buckets are cumulative; +Inf equals the total count.
        assert 'repro_serve_latency_ms_bucket{le="5.0"} 3' in text
        assert 'repro_serve_latency_ms_bucket{le="+Inf"} 3' in text
        assert "repro_serve_latency_ms_count 3" in text
        assert text.endswith("\n")

    def test_extra_series_and_none_values(self):
        text = render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}},
            extra_gauges={"slo/latency_p99_ms": None},
            extra_counters={"slo/breaches/p99_ms": 2},
        )
        assert "repro_slo_latency_p99_ms NaN" in text
        assert "repro_slo_breaches_p99_ms_total 2" in text


def _failing_then_ok_target():
    calls = {"n": 0}

    def infer(batch):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected")
        return np.zeros((len(batch), 4))

    return infer


class TestTelemetryPlane:
    def test_sample_over_live_batcher(self):
        plane = TelemetryPlane().install()
        batcher = plane.attach(
            MicroBatcher(
                lambda batch: np.zeros((len(batch), 4)),
                BatcherConfig(max_batch_size=4, max_delay_ms=1.0, workers=1),
            ).start()
        )
        try:
            for future in batcher.submit_many([np.zeros(3)] * 8):
                future.result(timeout=10)
            sample = plane.sample()
        finally:
            batcher.stop()
        assert sample["seq"] > 0
        assert sample["flight"]["recorded"] >= 8  # enqueues + batches
        kinds = {e["kind"] for e in plane.flight.events()}
        assert {"enqueue", "batch"} <= kinds
        assert json.loads(json.dumps(sample)) == sample

    def test_batch_failure_auto_dumps(self):
        plane = TelemetryPlane().install()
        batcher = plane.attach(
            MicroBatcher(
                _failing_then_ok_target(),
                BatcherConfig(max_batch_size=2, max_delay_ms=0.5, workers=1),
            ).start()
        )
        try:
            with pytest.raises(RuntimeError):
                batcher.submit(np.zeros(3)).result(timeout=10)
            batcher.submit(np.zeros(3)).result(timeout=10)
        finally:
            batcher.stop()
        assert plane.dumps, "batch_failed should have auto-dumped the ring"
        assert plane.dumps[0]["reason"] == "event:batch_failed"
        failed = plane.flight.events("batch_failed")
        assert failed and "injected" in failed[0]["error"]
        counters = plane.recorder.metrics.as_dict()["counters"]
        assert counters["serve/failed_requests"] == 1

    def test_windowed_power_per_request(self):
        from repro.obs.power import record_mvm_batch

        plane = TelemetryPlane().install()
        registry = plane.recorder.metrics

        def infer(batch):
            bits = np.zeros((len(batch), 8))
            bits[:, :2] = 1.0  # 25% active rows
            record_mvm_batch(registry, 0, bits, 4, cells_per_weight=2)
            return np.zeros((len(batch), 4))

        batcher = plane.attach(
            MicroBatcher(
                infer, BatcherConfig(max_batch_size=4, max_delay_ms=0.5)
            ).start()
        )
        try:
            plane.sample()  # window base
            for future in batcher.submit_many([np.zeros(3)] * 8):
                future.result(timeout=10)
            time.sleep(0.01)
            sample = plane.sample()
        finally:
            batcher.stop()
        window = sample["window"]
        assert window["requests"] == 8
        assert window["joules_per_request"] > 0
        assert 0 < window["power_saving_vs_static"] < 1

    def test_prometheus_text_includes_slo_series(self):
        plane = TelemetryPlane(slo=SloConfig(window_s=30.0, p99_ms=50.0))
        plane.install()
        plane.recorder.metrics.inc("serve/requests", 4)
        text = plane.prometheus_text()
        assert "repro_slo_latency_p99_ms" in text
        assert "repro_slo_joules_per_request" in text
        assert "repro_slo_window_seconds 30.0" in text
        assert "repro_slo_breaches_p99_ms_total 0" in text
        assert "repro_obs_uptime_seconds" in text

    def test_install_adopts_existing_recorder(self):
        with obs.recording() as rec:
            plane = TelemetryPlane().install()
            assert plane.recorder is rec
        assert obs.active() is None

    def test_uninstall_disables_only_what_install_enabled(self):
        # Plane enabled the global recorder -> uninstall disables it.
        plane = TelemetryPlane().install()
        assert obs.active() is plane.recorder
        plane.uninstall()
        assert obs.active() is None
        # Plane adopted an existing recorder -> uninstall leaves it.
        with obs.recording() as rec:
            adopted = TelemetryPlane().install()
            adopted.uninstall()
            assert obs.active() is rec

    def test_render_dashboard_smoke(self):
        plane = TelemetryPlane().install()
        frame = render_dashboard(plane.sample())
        assert "repro-top" in frame
        assert "latency" in frame
        assert "flight" in frame
        # Dashboard renders a /metrics.json "status" payload unchanged.
        frame2 = render_dashboard(
            json.loads(json.dumps(plane.metrics_json()))["status"]
        )
        assert "repro-top" in frame2


class TestExpositionServer:
    def test_endpoints_over_live_session(self):
        plane = TelemetryPlane(
            slo=SloConfig(window_s=30.0, p99_ms=10_000.0)
        ).install()
        batcher = plane.attach(
            MicroBatcher(
                lambda batch: np.zeros((len(batch), 4)),
                BatcherConfig(max_batch_size=4, max_delay_ms=1.0),
            ).start()
        )
        with plane.serve() as server:
            for future in batcher.submit_many([np.zeros(3)] * 8):
                future.result(timeout=10)

            health = json.loads(
                urllib.request.urlopen(
                    server.url + "/healthz", timeout=10
                ).read()
            )
            assert health["ok"] is True

            response = urllib.request.urlopen(
                server.url + "/metrics", timeout=10
            )
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
            assert "repro_serve_requests_total 8" in text
            assert "repro_slo_latency_p99_ms" in text

            payload = json.loads(
                urllib.request.urlopen(
                    server.url + "/metrics.json", timeout=10
                ).read()
            )
            assert payload["status"]["flight"]["recorded"] >= 8
            assert (
                payload["metrics"]["counters"]["serve/requests"] == 8
            )

            flight = json.loads(
                urllib.request.urlopen(
                    server.url + "/flight", timeout=10
                ).read()
            )
            assert flight["events"], "flight dump is empty"

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope", timeout=10)
            assert err.value.code == 404
        batcher.stop()
        assert not server.running

    def test_scrapes_counted(self):
        plane = TelemetryPlane().install()
        with plane.serve() as server:
            for _ in range(3):
                urllib.request.urlopen(
                    server.url + "/healthz", timeout=10
                ).read()
        counters = plane.recorder.metrics.as_dict()["counters"]
        assert counters["obs/scrapes"] == 3
