"""Unit and equivalence tests for the packed popcount SEI engine.

The packed engine re-lowers the fused crossbar arithmetic onto bit-plane
activations, precomputed per-group partial-sum tables and integer
decision thresholds.  These tests pin each primitive against a brute
force oracle (pack/unpack round-trips, group tables, decision tables)
and the assembled engine against the fused network it wraps — including
the exact-float32 DAC path, the folded binarize passes and serving-tile
batch invariance.
"""

import numpy as np
import pytest

from repro.core.binarized import binarize
from repro.core.engines import EngineSpec, compile_network
from repro.core.hardware_network import HardwareConfig
from repro.core.packed import (
    GROUP_ROWS,
    PackedMatrix,
    _decision_tables,
    build_group_tables,
    pack_bits,
    unpack_bits,
)
from repro.core.splitting import SplitDecision
from repro.errors import ConfigurationError, ShapeError
from repro.hw.device import RRAMDevice

TIGHT = dict(rtol=1e-9, atol=1e-12)


def _bits(rng, n, rows, p=0.4):
    return (rng.random((n, rows)) < p).astype(np.uint8)


class TestPackRoundTrip:
    @pytest.mark.parametrize("rows", [1, 7, 8, 9, 40, 63, 64, 65])
    def test_round_trip(self, rng, rows):
        bits = _bits(rng, 6, rows)
        packed = pack_bits(bits)
        assert packed.rows == rows
        np.testing.assert_array_equal(unpack_bits(packed), bits)

    def test_word_view_zero_padded(self, rng):
        # 9 groups pad to 2 uint64 words; padding bytes must read zero so
        # popcounts over whole words match popcounts over byte lanes.
        bits = _bits(rng, 4, 72)
        packed = pack_bits(bits)
        words = packed.words
        assert words.shape == (4, 2)
        assert words.dtype == np.uint64
        total = sum(bin(int(w)).count("1") for w in words.ravel())
        assert total == int(bits.sum())

    def test_packbits_bit_order(self):
        # Row 8*g + j occupies bit 7-j of byte g (numpy MSB-first).
        bits = np.zeros((1, 8), dtype=np.uint8)
        bits[0, 0] = 1
        assert pack_bits(bits).codes[0, 0] == 0x80

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            pack_bits(np.zeros(8))


class TestGroupTables:
    def test_matches_brute_force(self, rng):
        rows = rng.integers(-255, 256, size=(16, 5)).astype(np.int64)
        tables = build_group_tables(rows)
        assert tables.shape == (2, 256, 5)
        for g in range(2):
            group = rows[g * GROUP_ROWS : (g + 1) * GROUP_ROWS]
            for pattern in rng.integers(0, 256, size=32):
                selected = [
                    group[j]
                    for j in range(GROUP_ROWS)
                    if pattern & (1 << (GROUP_ROWS - 1 - j))
                ]
                expected = (
                    np.sum(selected, axis=0)
                    if selected
                    else np.zeros(5, dtype=np.int64)
                )
                np.testing.assert_array_equal(
                    tables[g, pattern].astype(np.int64), expected
                )

    def test_dtype_widens_when_needed(self):
        small = np.full((8, 2), 255, dtype=np.int64)
        assert build_group_tables(small).dtype == np.int16
        large = np.full((8, 2), 50_000, dtype=np.int64)
        assert build_group_tables(large).dtype == np.int32

    def test_validation(self):
        with pytest.raises(ShapeError, match="multiple"):
            build_group_tables(np.zeros((9, 3), dtype=np.int64))
        with pytest.raises(ConfigurationError, match="integer"):
            build_group_tables(np.zeros((8, 3)))


class TestPackedMatrix:
    def _matrix(self, rng, rows=52, cols=6, blocks=(0, 20, 52), unit=0.01,
                permute=False):
        order = np.arange(rows)
        if permute:
            order = rng.permutation(rows)
        block_index = [
            order[lo:hi] for lo, hi in zip(blocks[:-1], blocks[1:])
        ]
        ints = rng.integers(-200, 201, size=(rows, cols))
        units = [unit * (k + 1) for k in range(len(block_index))]
        mats = [
            units[k] * ints[idx].astype(np.float64)
            for k, idx in enumerate(block_index)
        ]
        return (
            PackedMatrix(mats, units, block_index, rows),
            ints,
            block_index,
            units,
        )

    def _oracle(self, bits, ints, block_index, units):
        """Float block sums straight from the definition of Equ. 6."""
        out = np.zeros((bits.shape[0], ints.shape[1]))
        for k, idx in enumerate(block_index):
            out += units[k] * (
                bits[:, idx].astype(np.float64) @ ints[idx].astype(np.float64)
            )
        return out

    def test_compute_matches_oracle_contiguous(self, rng):
        matrix, ints, block_index, units = self._matrix(rng)
        assert matrix._ranges is not None  # fast slice-pack path
        bits = _bits(rng, 9, 52)
        np.testing.assert_allclose(
            matrix.compute(bits),
            self._oracle(bits, ints, block_index, units),
            **TIGHT,
        )

    def test_compute_matches_oracle_gather(self, rng):
        matrix, ints, block_index, units = self._matrix(rng, permute=True)
        assert matrix._ranges is None  # sentinel gather path
        bits = _bits(rng, 9, 52)
        np.testing.assert_allclose(
            matrix.compute(bits),
            self._oracle(bits, ints, block_index, units),
            **TIGHT,
        )

    def test_ragged_blocks_pad_to_byte_lanes(self, rng):
        # 20- and 32-row blocks pad to the 32-row block height: 4 lanes
        # per block, trailing word-line rows carry zero weights.
        matrix, *_ = self._matrix(rng)
        assert matrix.block_height == 32
        assert matrix.groups_per_block == 4
        bits = _bits(rng, 5, 52)
        packed = matrix.pack(bits)
        assert packed.codes.shape == (5, 8)
        ones = matrix.ones_per_block(packed)
        np.testing.assert_array_equal(ones[:, 0], bits[:, :20].sum(axis=1))
        np.testing.assert_array_equal(ones[:, 1], bits[:, 20:].sum(axis=1))

    def test_pack_paths_agree(self, rng):
        contiguous, *_ = self._matrix(rng)
        bits = _bits(rng, 7, 52)
        fast = contiguous.pack(bits).codes.copy()
        # Forcing the sentinel-gather path over the same layout must
        # produce the identical byte plane.
        contiguous._ranges = None
        slow = contiguous.pack(bits).codes
        np.testing.assert_array_equal(fast, slow)

    def test_scratch_plane_is_overwritten(self, rng):
        matrix, *_ = self._matrix(rng)
        first = matrix.pack(_bits(rng, 4, 52))
        stale = first.codes.copy()
        second = matrix.pack(1 - unpack_bits(first)[:, :52])
        assert not np.array_equal(stale, second.codes)
        assert first.codes is second.codes  # same scratch storage


class TestDecisionTables:
    def test_tables_match_float_comparison(self, rng):
        rows, cols = 48, 4
        ints = rng.integers(-120, 121, size=(rows, cols))
        units = [0.004, 0.005]
        block_index = [np.arange(0, 24), np.arange(24, 48)]
        mats = [
            units[k] * ints[idx].astype(np.float64)
            for k, idx in enumerate(block_index)
        ]
        matrix = PackedMatrix(mats, units, block_index, rows)
        decision = SplitDecision(
            block_threshold=0.11, ones_slope=0.003, vote_threshold=1
        )
        bias = rng.normal(scale=0.05, size=cols)
        tables = _decision_tables(matrix, decision, bias)
        bits = _bits(rng, 40, rows)
        packed = matrix.pack(bits)
        ones = matrix.ones_per_block(packed)
        acc = matrix.accumulate(packed)
        for k in range(2):
            analog = units[k] * acc[k].astype(np.float64) + bias
            expected = analog > decision.thresholds_for(ones[:, k])[:, None]
            fired = acc[k] >= tables[k][ones[:, k]]
            np.testing.assert_array_equal(fired, expected)


class TestAssembledEngine:
    def _predict(self, engine, tiny_quantized, images, device, **hw):
        config = HardwareConfig(device=device, **hw)
        compiled = compile_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            EngineSpec(name=engine, hardware=config),
        )
        return compiled, compiled.predict(images)

    @pytest.mark.parametrize(
        "device",
        [
            RRAMDevice(bits=4),
            RRAMDevice(bits=4, stuck_low_rate=0.03, stuck_high_rate=0.03),
        ],
        ids=["clean", "stuck"],
    )
    def test_matches_fused_and_folds_binarize(
        self, device, tiny_quantized, tiny_dataset
    ):
        images = tiny_dataset["test_x"][:24]
        packed, packed_logits = self._predict(
            "packed", tiny_quantized, images, device, max_crossbar_size=128
        )
        fused, fused_logits = self._predict(
            "fused", tiny_quantized, images, device, max_crossbar_size=128
        )
        np.testing.assert_allclose(packed_logits, fused_logits, **TIGHT)
        # Stuck cells stay on the nibble grid: the integer kernel (and
        # with it the folded threshold comparison) must stay engaged.
        assert packed.prebinarized
        assert packed.prebinarized <= set(tiny_quantized.thresholds)
        assert not fused.prebinarized

    def test_program_noise_falls_back_to_fused_exactly(
        self, tiny_quantized, tiny_dataset
    ):
        device = RRAMDevice(bits=4, program_sigma=0.25)
        images = tiny_dataset["test_x"][:16]
        packed, packed_logits = self._predict(
            "packed", tiny_quantized, images, device
        )
        _, fused_logits = self._predict(
            "fused", tiny_quantized, images, device
        )
        # Off-grid cells: no folding anywhere, same float arithmetic.
        assert packed.prebinarized == frozenset()
        np.testing.assert_array_equal(packed_logits, fused_logits)

    def test_folded_layers_emit_exact_bits(
        self, tiny_quantized, tiny_dataset
    ):
        """A folded layer's plane equals binarize() of the unfolded one."""
        device = RRAMDevice(bits=4)
        config = HardwareConfig(device=device, max_crossbar_size=128)
        images = tiny_dataset["test_x"][:8]
        packed = compile_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            EngineSpec(name="packed", hardware=config),
        )
        fused = compile_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            EngineSpec(name="fused", hardware=config),
        )
        xp = packed._quantize_input(images)
        xf = fused._quantize_input(images)
        for index in range(len(packed.network.layers)):
            layer = packed.network.layers[index]
            if index in packed.prebinarized:
                emitted = packed.layer_computes[index](layer, xp)
                reference = binarize(
                    fused.layer_computes[index](layer, xf),
                    tiny_quantized.thresholds[index],
                )
                np.testing.assert_array_equal(
                    np.asarray(emitted, dtype=np.float64), reference
                )
            xp = packed.run_layer(index, xp)
            xf = fused.run_layer(index, xf)

    def test_batch_invariance_through_serving_tiles(
        self, tiny_quantized, tiny_dataset
    ):
        from repro.serve.session import InferenceSession, SessionConfig

        device = RRAMDevice(bits=4, stuck_low_rate=0.02)
        session = InferenceSession.from_artifacts(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            SessionConfig(
                network="tiny",
                engine=EngineSpec(
                    name="packed", hardware=HardwareConfig(device=device)
                ),
                tile=5,
            ),
        )
        images = tiny_dataset["test_x"][:12]
        whole = session.infer_batch(images)
        singles = np.stack([session.infer(x) for x in images])
        np.testing.assert_array_equal(whole, singles)
        parts = np.concatenate(
            [session.infer_batch(images[:7]), session.infer_batch(images[7:])]
        )
        np.testing.assert_array_equal(whole, parts)
