"""RRAM hardware substrate: device, crossbar, peripherals, technology model."""

from repro.hw.crossbar import Crossbar
from repro.hw.device import RRAMDevice
from repro.hw.peripherals import ADC, DAC, SEIDecoder, SenseAmp, TraditionalDecoder
from repro.hw.tech import REFERENCE_PLATFORMS, ReferencePlatform, TechnologyModel
from repro.hw.tuning import TuningResult, tune_cells

__all__ = [
    "RRAMDevice",
    "Crossbar",
    "ADC",
    "DAC",
    "SenseAmp",
    "TraditionalDecoder",
    "SEIDecoder",
    "TechnologyModel",
    "ReferencePlatform",
    "REFERENCE_PLATFORMS",
    "TuningResult",
    "tune_cells",
]
