"""Tests for repro.core.sei (the SEI structure, §4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SEIMatrix, decompose_weights, sei_layer_compute
from repro.errors import ConfigurationError, MappingError, ShapeError
from repro.hw import RRAMDevice


def random_bits(rng, shape, density=0.2):
    return (rng.random(shape) < density).astype(np.float64)


class TestDecomposeWeights:
    def test_reconstruction_exact_at_8bit_grid(self, rng):
        """A weight already on the signed 8-bit grid reconstructs exactly.

        The decomposition normalises by max|w|, so the grid must contain a
        full-scale entry for the levels to line up exactly.
        """
        grid = rng.integers(-255, 256, size=(6, 4)).astype(np.float64)
        grid[0, 0] = 255.0
        weights = grid / 255.0
        slices, coefficients, scale = decompose_weights(weights, 8, 4)
        cell_max = 15
        recon = sum(
            c * s * cell_max for c, s in zip(coefficients, slices)
        ) * scale
        np.testing.assert_allclose(recon, weights, atol=1e-12)

    def test_reconstruction_error_bounded(self, rng):
        weights = rng.normal(size=(10, 8))
        slices, coefficients, scale = decompose_weights(weights, 8, 4)
        recon = sum(c * s * 15 for c, s in zip(coefficients, slices)) * scale
        w_max = np.abs(weights).max()
        assert np.abs(recon - weights).max() <= w_max / 255 / 2 + 1e-12

    def test_signed_layout(self, rng):
        weights = rng.normal(size=(5, 3))
        slices, coefficients, _ = decompose_weights(weights, 8, 4)
        assert slices.shape == (4, 5, 3)
        np.testing.assert_allclose(coefficients, [16, 1, -16, -1])

    def test_unsigned_layout(self, rng):
        weights = rng.random((5, 3))
        slices, coefficients, _ = decompose_weights(weights, 8, 4, signed=False)
        assert slices.shape == (2, 5, 3)
        np.testing.assert_allclose(coefficients, [16, 1])

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            decompose_weights(np.array([[-1.0]]), 8, 4, signed=False)

    def test_slices_are_valid_cell_values(self, rng):
        slices, _, _ = decompose_weights(rng.normal(size=(8, 8)), 8, 4)
        assert slices.min() >= 0.0 and slices.max() <= 1.0
        # Every slice value is a multiple of 1/15 (a 4-bit level).
        np.testing.assert_allclose(
            slices * 15, np.rint(slices * 15), atol=1e-9
        )

    def test_bits_must_divide(self, rng):
        with pytest.raises(ConfigurationError):
            decompose_weights(rng.normal(size=(2, 2)), 10, 4)

    def test_requires_2d(self, rng):
        with pytest.raises(ShapeError):
            decompose_weights(rng.normal(size=3), 8, 4)

    def test_zero_matrix(self):
        slices, _, scale = decompose_weights(np.zeros((3, 3)), 8, 4)
        assert np.all(slices == 0.0)
        assert scale > 0


class TestSEIMatrix:
    def test_geometry(self, rng):
        sei = SEIMatrix(rng.normal(size=(50, 8)), max_crossbar_size=512)
        assert sei.logical_rows == 50
        assert sei.cells_per_weight == 4
        assert sei.physical_rows == 200
        assert sei.num_cells == 200 * 8

    def test_paper_example_needs_split(self, rng):
        """§5.1: a 300x64 signed 8-bit matrix makes a 1200-row SEI image,
        too tall for one 512 crossbar."""
        with pytest.raises(MappingError):
            SEIMatrix(rng.normal(size=(300, 64)), max_crossbar_size=512)

    def test_too_many_columns(self, rng):
        with pytest.raises(MappingError):
            SEIMatrix(rng.normal(size=(10, 600)), max_crossbar_size=512)

    def test_compute_matches_quantized_matmul(self, rng):
        weights = rng.normal(size=(40, 6))
        sei = SEIMatrix(weights, max_crossbar_size=512)
        bits = random_bits(rng, (20, 40))
        out = sei.compute(bits)
        np.testing.assert_allclose(out, bits @ sei.effective_weights, atol=1e-9)

    def test_effective_weights_close_to_target(self, rng):
        weights = rng.normal(size=(20, 5))
        sei = SEIMatrix(weights, max_crossbar_size=512)
        w_max = np.abs(weights).max()
        assert np.abs(sei.effective_weights - weights).max() <= w_max / 255

    def test_compute_1d_input(self, rng):
        weights = rng.normal(size=(12, 3))
        sei = SEIMatrix(weights, max_crossbar_size=512)
        bits = random_bits(rng, 12)
        np.testing.assert_allclose(
            sei.compute(bits), sei.compute(bits[None, :])[0]
        )

    def test_rejects_non_binary_inputs(self, rng):
        sei = SEIMatrix(rng.normal(size=(8, 2)), max_crossbar_size=512)
        with pytest.raises(ShapeError):
            sei.compute(np.full(8, 0.5))

    def test_rejects_wrong_length(self, rng):
        sei = SEIMatrix(rng.normal(size=(8, 2)), max_crossbar_size=512)
        with pytest.raises(ShapeError):
            sei.compute(np.ones(9))

    def test_unsigned_inputs_flag(self, rng):
        with pytest.raises(ConfigurationError):
            SEIMatrix(
                rng.normal(size=(4, 4)),
                signed_inputs=False,
                max_crossbar_size=512,
            )
        # Non-negative weights are fine without signed inputs.
        SEIMatrix(
            rng.random((4, 4)), signed_inputs=False, max_crossbar_size=512
        )

    def test_device_noise_perturbs_but_close(self, rng):
        weights = rng.normal(size=(30, 4))
        noisy = SEIMatrix(
            weights,
            device=RRAMDevice(program_sigma=0.3),
            max_crossbar_size=512,
            rng=np.random.default_rng(3),
        )
        bits = random_bits(rng, 30)
        exact = bits @ weights
        out = noisy.compute(bits)
        assert not np.allclose(out, exact)
        assert np.abs(out - exact).max() < np.abs(weights).max() * 5

    def test_2bit_cells_make_8_cells_per_weight(self, rng):
        sei = SEIMatrix(
            rng.normal(size=(10, 4)),
            device=RRAMDevice(bits=2),
            max_crossbar_size=512,
        )
        assert sei.cells_per_weight == 8


class TestSEILayerCompute:
    def test_equivalent_to_layer_forward(self, tiny_quantized, tiny_dataset):
        """BinarizedNetwork with SEI hardware matches software inference
        up to 8-bit weight quantization (almost always same predictions)."""
        bn_sw = tiny_quantized.binarized(input_bits=None)
        bn_hw = tiny_quantized.binarized(input_bits=None)
        net = tiny_quantized.network
        bn_hw.layer_computes[3] = sei_layer_compute(
            net.layers[3], max_crossbar_size=2048
        )
        x = tiny_dataset["test_x"][:40]
        sw = bn_sw.predict(x).argmax(1)
        hw = bn_hw.predict(x).argmax(1)
        assert (sw == hw).mean() > 0.9
