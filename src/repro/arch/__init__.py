"""Architecture-level mapping, designs and cost model (Fig. 1 / Table 5)."""

from repro.arch.cost import (
    COMPONENTS,
    DesignCost,
    LayerCost,
    design_cost,
    layer_area_um2,
    layer_energy_pj,
)
from repro.arch.designs import (
    DesignEvaluation,
    NetworkDesignEvaluation,
    evaluate_all_designs,
    evaluate_design,
    evaluate_network_design,
)
from repro.arch.mapper import (
    STRUCTURES,
    LayerGeometry,
    LayerMapping,
    geometries_from_network,
    map_layer,
    network_layer_geometries,
)
from repro.arch.chip import ChipDatasheet, chip_datasheet
from repro.arch.layout import (
    CrossbarImage,
    RowAssignment,
    compile_sei_layout,
    load_layout,
    save_layout,
    verify_layout,
)
from repro.arch.programming import (
    ProgrammingCost,
    ProgrammingModel,
    programming_cost,
)
from repro.arch.scheduling import (
    DesignTiming,
    TimingModel,
    buffer_plan,
    design_timing,
    layer_latency_ns,
    power_time_tradeoff,
)
from repro.arch.report import (
    breakdown_rows,
    format_table,
    reference_efficiency_rows,
    table5_rows,
)

__all__ = [
    "COMPONENTS",
    "STRUCTURES",
    "LayerGeometry",
    "LayerMapping",
    "map_layer",
    "network_layer_geometries",
    "LayerCost",
    "DesignCost",
    "design_cost",
    "layer_energy_pj",
    "layer_area_um2",
    "DesignEvaluation",
    "NetworkDesignEvaluation",
    "evaluate_design",
    "evaluate_all_designs",
    "evaluate_network_design",
    "geometries_from_network",
    "breakdown_rows",
    "table5_rows",
    "reference_efficiency_rows",
    "format_table",
    "TimingModel",
    "DesignTiming",
    "layer_latency_ns",
    "design_timing",
    "power_time_tradeoff",
    "buffer_plan",
    "ProgrammingModel",
    "ProgrammingCost",
    "programming_cost",
    "CrossbarImage",
    "RowAssignment",
    "compile_sei_layout",
    "verify_layout",
    "save_layout",
    "load_layout",
    "ChipDatasheet",
    "chip_datasheet",
]
