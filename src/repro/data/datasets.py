"""Dataset containers and the train/test split used by every experiment.

The paper optimises quantization thresholds on the 60,000-image MNIST
training set and reports error rates on the 10,000-image test set.  We keep
the same protocol on the synthetic digit set (with configurable, smaller
default sizes so the full pipeline runs in minutes on a laptop), and cache
generated datasets on disk so repeated benchmark runs are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.data.synthetic_mnist import IMAGE_SIZE, NUM_CLASSES, generate_images

__all__ = ["Dataset", "MnistLike", "load_mnist_like", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Directory used to cache generated datasets and trained models."""
    return Path(__file__).resolve().parents[3] / ".cache"


@dataclass
class Dataset:
    """An immutable (images, labels) pair with convenience accessors."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ShapeError(
                f"images ({len(self.images)}) and labels "
                f"({len(self.labels)}) disagree"
            )
        if self.images.ndim != 4:
            raise ShapeError(
                f"images must be (n, c, h, w), got shape {self.images.shape}"
            )

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, n: int, seed: Optional[int] = None) -> "Dataset":
        """First-``n`` (seed=None) or random-``n`` subset."""
        if n <= 0 or n > len(self):
            raise ConfigurationError(
                f"subset size {n} not in [1, {len(self)}]"
            )
        if seed is None:
            idx = np.arange(n)
        else:
            idx = np.random.default_rng(seed).choice(len(self), n, replace=False)
        return Dataset(self.images[idx], self.labels[idx])

    def batches(self, batch_size: int):
        """Yield (images, labels) minibatches in order."""
        for start in range(0, len(self), batch_size):
            yield (
                self.images[start : start + batch_size],
                self.labels[start : start + batch_size],
            )


@dataclass
class MnistLike:
    """The train/test pair mirroring the paper's MNIST protocol."""

    train: Dataset
    test: Dataset

    @property
    def num_classes(self) -> int:
        return NUM_CLASSES

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (1, IMAGE_SIZE, IMAGE_SIZE)


def load_mnist_like(
    num_train: int = 6000,
    num_test: int = 1000,
    seed: int = 7,
    cache: bool = True,
    cache_dir: Optional[Path] = None,
) -> MnistLike:
    """Generate (or load from cache) the synthetic digit dataset.

    Train and test samples are drawn from the same generator with disjoint
    seeds, mirroring MNIST's i.i.d. train/test split.
    """
    if num_train <= 0 or num_test <= 0:
        raise ConfigurationError("dataset sizes must be positive")

    cache_dir = cache_dir if cache_dir is not None else default_cache_dir() / "data"
    cache_path = cache_dir / f"mnist_like_{num_train}_{num_test}_{seed}.npz"

    if cache and cache_path.exists():
        with np.load(cache_path) as data:
            return MnistLike(
                train=Dataset(data["train_x"], data["train_y"]),
                test=Dataset(data["test_x"], data["test_y"]),
            )

    train_x, train_y = generate_images(num_train, seed=seed)
    test_x, test_y = generate_images(num_test, seed=seed + 1_000_003)
    bundle = MnistLike(
        train=Dataset(train_x, train_y), test=Dataset(test_x, test_y)
    )

    if cache:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            cache_path,
            train_x=train_x,
            train_y=train_y,
            test_x=test_x,
            test_y=test_y,
        )
    return bundle
