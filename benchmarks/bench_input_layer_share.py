"""§3.2 claim: the input layer's DACs are a small part of the chip.

"the input layer DACs cost about 3% energy consumption and only 1% area
of the whole chip in the 4-layer CNNs" — the justification for keeping a
DAC-based input layer in the otherwise converter-free SEI design.
"""

import pytest

from repro.arch import evaluate_design, format_table

from benchmarks.conftest import heading


def run_share():
    rows = []
    for name in ("network1", "network2", "network3"):
        for structure in ("dac_adc", "sei"):
            ev = evaluate_design(name, structure)
            input_dac_e = ev.cost.layers[0].energy_pj["dac"]
            input_dac_a = ev.cost.layers[0].area_um2["dac"]
            rows.append(
                {
                    "network": name,
                    "structure": structure,
                    "input DAC energy share": input_dac_e
                    / sum(ev.cost.energy_pj.values()),
                    "input DAC area share": input_dac_a
                    / sum(ev.cost.area_um2.values()),
                }
            )
    return rows


@pytest.mark.benchmark(group="input_layer")
def test_input_layer_dac_share(benchmark):
    rows = benchmark.pedantic(run_share, rounds=1, iterations=1)

    heading("§3.2 — input-layer DAC share of the whole design")
    print(format_table(rows, floatfmt="{:.4f}"))
    print("paper: ~3% energy / ~1% area of the whole 4-layer chip")

    for row in rows:
        if row["structure"] == "dac_adc":
            # Negligible inside the converter-dominated baseline — this
            # is the "~3% / ~1% of the whole chip" the paper quotes.
            assert row["input DAC energy share"] < 0.05
            assert row["input DAC area share"] < 0.03
        else:
            # In the lean SEI design the *relative* share grows because
            # everything else shrank; for the tiny Networks 2/3 the input
            # DACs become the dominant residual cost, which is exactly
            # why the paper notes the partition "will further decrease
            # when the scale of CNN grows deeper and larger".
            assert row["input DAC energy share"] < 0.9
            assert row["input DAC area share"] < 0.2
