"""Unit tests for repro.hw.crossbar."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MappingError, ShapeError
from repro.hw import Crossbar, RRAMDevice


class TestConstruction:
    def test_rejects_oversized(self, rng):
        with pytest.raises(MappingError):
            Crossbar(rng.random((600, 10)), max_size=512)
        with pytest.raises(MappingError):
            Crossbar(rng.random((10, 600)), max_size=512)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ShapeError):
            Crossbar(rng.random(10))

    def test_rejects_bad_config(self, rng):
        with pytest.raises(ConfigurationError):
            Crossbar(rng.random((4, 4)), max_size=0)
        with pytest.raises(ConfigurationError):
            Crossbar(rng.random((4, 4)), ir_drop_lambda=-1.0)

    def test_num_cells(self, rng):
        xbar = Crossbar(rng.random((8, 6)))
        assert xbar.num_cells == 48


class TestCompute:
    def test_matches_matmul_ideal(self, rng):
        weights = rng.random((20, 7))
        xbar = Crossbar(weights, device=RRAMDevice(bits=8))
        v = rng.random((5, 20))
        out = xbar.compute(v)
        np.testing.assert_allclose(out, v @ weights, atol=2e-2)

    def test_quantization_error_visible_at_low_bits(self, rng):
        weights = rng.random((30, 5))
        coarse = Crossbar(weights, device=RRAMDevice(bits=2))
        fine = Crossbar(weights, device=RRAMDevice(bits=6))
        v = rng.random(30)
        err_coarse = np.abs(coarse.compute(v) - v @ weights).max()
        err_fine = np.abs(fine.compute(v) - v @ weights).max()
        assert err_fine < err_coarse

    def test_effective_weights_are_quantized(self, rng):
        weights = rng.random((4, 4))
        xbar = Crossbar(weights, device=RRAMDevice(bits=4))
        grid = np.arange(16) / 15
        assert np.all(
            np.isclose(xbar.effective_weights[..., None], grid, atol=1e-12).any(
                axis=-1
            )
        )

    def test_1d_and_2d_inputs_agree(self, rng):
        weights = rng.random((10, 3))
        xbar = Crossbar(weights)
        v = rng.random(10)
        np.testing.assert_allclose(
            xbar.compute(v), xbar.compute(v[None, :])[0]
        )

    def test_wrong_input_length(self, rng):
        xbar = Crossbar(rng.random((10, 3)))
        with pytest.raises(ShapeError):
            xbar.compute(rng.random(9))

    def test_zero_input_zero_output(self, rng):
        xbar = Crossbar(rng.random((10, 3)))
        np.testing.assert_allclose(xbar.compute(np.zeros(10)), np.zeros(3))


class TestNonIdealities:
    def test_ir_drop_attenuates(self, rng):
        weights = rng.random((100, 4))
        clean = Crossbar(weights, ir_drop_lambda=0.0)
        droopy = Crossbar(weights, ir_drop_lambda=1.0)
        v = np.ones(100)
        assert droopy.ir_drop_attenuation < 1.0
        assert np.all(droopy.compute(v) < clean.compute(v))

    def test_ir_drop_worse_for_taller_crossbars(self, rng):
        short = Crossbar(rng.random((10, 4)), ir_drop_lambda=1.0, max_size=512)
        tall = Crossbar(rng.random((500, 4)), ir_drop_lambda=1.0, max_size=512)
        assert tall.ir_drop_attenuation < short.ir_drop_attenuation

    def test_read_noise_randomises_output(self, rng):
        weights = rng.random((50, 4))
        xbar = Crossbar(
            weights,
            device=RRAMDevice(read_sigma=0.05),
            rng=np.random.default_rng(0),
        )
        v = rng.random(50)
        a = xbar.compute(v)
        b = xbar.compute(v)
        assert not np.allclose(a, b)

    def test_programming_noise_reproducible_with_seed(self, rng):
        weights = rng.random((20, 4))
        a = Crossbar(
            weights,
            device=RRAMDevice(program_sigma=0.3),
            rng=np.random.default_rng(7),
        )
        b = Crossbar(
            weights,
            device=RRAMDevice(program_sigma=0.3),
            rng=np.random.default_rng(7),
        )
        np.testing.assert_allclose(a.array.conductance, b.array.conductance)

    def test_conductance_attribute_is_deprecated(self, rng):
        xbar = Crossbar(rng.random((4, 4)))
        with pytest.warns(DeprecationWarning):
            legacy = xbar.conductance
        np.testing.assert_array_equal(legacy, xbar.array.conductance)
