"""Design-space sweeps over the cost model.

The paper evaluates three fixed design points; a designer adopting the
SEI structure wants the whole response surface: how do energy, area and
efficiency move with the crossbar size limit, the device precision, the
weight precision and the converter technology?  These helpers run the
grid and return flat rows ready for :func:`repro.arch.report.format_table`
or a plotting tool.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hw.tech import TechnologyModel

from repro.arch.designs import evaluate_all_designs

__all__ = ["design_space_sweep", "pareto_front"]


def design_space_sweep(
    network: str = "network1",
    crossbar_sizes: Sequence[int] = (1024, 512, 256, 128),
    cell_bits: Sequence[int] = (2, 4, 8),
    tech: Optional[TechnologyModel] = None,
    structures: Sequence[str] = ("dac_adc", "sei"),
) -> List[Dict[str, object]]:
    """Grid sweep over (crossbar size, cell precision) x structure.

    Each row carries the absolute energy/area plus the SEI saving vs the
    same-configuration baseline, so crossbar-size and precision effects
    separate cleanly.
    """
    tech = tech if tech is not None else TechnologyModel()
    rows: List[Dict[str, object]] = []
    for bits in cell_bits:
        if tech.weight_bits % bits != 0:
            raise ConfigurationError(
                f"cell bits {bits} does not divide weight bits "
                f"{tech.weight_bits}"
            )
        for size in crossbar_sizes:
            grid_tech = replace(
                tech, cell_bits=bits, max_crossbar_size=size
            )
            evaluations = evaluate_all_designs(network, grid_tech)
            baseline = evaluations["dac_adc"]
            for structure in structures:
                ev = evaluations[structure]
                rows.append(
                    {
                        "network": network,
                        "cell_bits": bits,
                        "crossbar": size,
                        "structure": structure,
                        "energy_uj": ev.energy_uj_per_picture,
                        "area_mm2": ev.area_mm2,
                        "gops_per_j": ev.gops_per_joule(),
                        "energy_saving_vs_baseline": (
                            ev.cost.energy_saving_vs(baseline.cost)
                        ),
                        "crossbars": sum(m.crossbars for m in ev.mappings),
                    }
                )
    return rows


def pareto_front(
    rows: Sequence[Dict[str, object]],
    minimise: Sequence[str] = ("energy_uj", "area_mm2"),
) -> List[Dict[str, object]]:
    """Non-dominated subset of sweep rows under the given objectives.

    A row is kept when no other row is at least as good on every
    objective and strictly better on one.
    """
    if not minimise:
        raise ConfigurationError("need at least one objective")
    rows = list(rows)
    for row in rows:
        for key in minimise:
            if key not in row:
                raise ConfigurationError(f"row missing objective {key!r}")

    front: List[Dict[str, object]] = []
    for candidate in rows:
        dominated = False
        for other in rows:
            if other is candidate:
                continue
            at_least_as_good = all(
                other[k] <= candidate[k] for k in minimise
            )
            strictly_better = any(other[k] < candidate[k] for k in minimise)
            if at_least_as_good and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
