"""Property-based tests for the consistent digest-keyed shard router.

The routing invariants the gateway's correctness rests on:

* **stability** — the same key always routes to the same live shard,
  across calls and across independently-built routers;
* **order invariance** — the mapping is a pure function of the shard
  *set*; the order shards were added in (or listed in) cannot matter;
* **minimal disruption** — removing a shard only remaps the keys that
  shard owned (≈1/N of the key space); every other key keeps its
  assignment.  Adding it back restores the original mapping exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.serve import ConsistentRouter

pytestmark = pytest.mark.property

SETTINGS = settings(max_examples=50, deadline=None)

#: Distinct shard-id lists (1..8 shards with readable names).
shard_lists = st.lists(
    st.sampled_from([f"shard-{i}" for i in range(8)]),
    min_size=1,
    max_size=8,
    unique=True,
)

keys = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=200, unique=True
)


class TestRoutingInvariants:
    @SETTINGS
    @given(shards=shard_lists, ks=keys)
    def test_same_key_same_shard(self, shards, ks):
        """Routing is deterministic within and across router instances."""
        router_a = ConsistentRouter(shards)
        router_b = ConsistentRouter(shards)
        for key in ks:
            owner = router_a.route(key)
            assert owner in shards
            assert router_a.route(key) == owner  # stable across calls
            assert router_b.route(key) == owner  # pure function of the set

    @SETTINGS
    @given(shards=shard_lists, ks=keys, seed=st.integers(0, 2**32 - 1))
    def test_routing_invariant_under_shard_order(self, shards, ks, seed):
        """Permuting the shard list cannot change any assignment."""
        import random

        permuted = list(shards)
        random.Random(seed).shuffle(permuted)
        router = ConsistentRouter(shards)
        router_permuted = ConsistentRouter(permuted)
        for key in ks:
            assert router.route(key) == router_permuted.route(key)

    @SETTINGS
    @given(shards=shard_lists, ks=keys)
    def test_removal_only_remaps_the_lost_shards_keys(self, shards, ks):
        """route(k) changes on removal => k was owned by the removed
        shard; survivors keep every key they already owned."""
        if len(shards) < 2:
            return
        victim = shards[0]
        router = ConsistentRouter(shards)
        before = {key: router.route(key) for key in ks}
        router.remove(victim)
        for key in ks:
            after = router.route(key)
            assert after != victim
            if before[key] != victim:
                assert after == before[key], (
                    f"key {key!r} moved from surviving shard "
                    f"{before[key]!r} to {after!r}"
                )

    @SETTINGS
    @given(shards=shard_lists, ks=keys)
    def test_rejoin_restores_the_original_mapping(self, shards, ks):
        victim = shards[-1]
        router = ConsistentRouter(shards)
        before = {key: router.route(key) for key in ks}
        if len(shards) > 1:
            router.remove(victim)
        else:
            router.remove(victim)  # empty ring is legal, routing isn't
            with pytest.raises(ServeError):
                router.route(ks[0])
        router.add(victim)
        assert {key: router.route(key) for key in ks} == before

    def test_remap_fraction_is_about_one_over_n(self):
        """Losing 1 of N shards moves ~1/N of a large key space."""
        shards = [f"shard-{i}" for i in range(4)]
        router = ConsistentRouter(shards, replicas=128)
        ks = [f"request-{i}" for i in range(8000)]
        before = {key: router.route(key) for key in ks}
        router.remove("shard-2")
        moved = sum(
            1 for key in ks if router.route(key) != before[key]
        )
        fraction = moved / len(ks)
        # Exactly the victim's keys move; its ownership share is ~1/4
        # give or take virtual-node variance.
        owned = sum(1 for key in ks if before[key] == "shard-2")
        assert moved == owned
        assert 0.10 <= fraction <= 0.45, fraction


class TestRouterSurface:
    def test_bytes_and_str_keys_agree(self):
        router = ConsistentRouter(["a", "b", "c"])
        for key in ("alpha", "beta", "yes/no", ""):
            assert router.route(key) == router.route(key.encode("utf-8"))

    def test_ownership_histogram_covers_all_keys(self):
        router = ConsistentRouter(["a", "b", "c"], replicas=64)
        ks = [f"k{i}" for i in range(3000)]
        ownership = router.ownership(ks)
        assert sum(ownership.values()) == len(ks)
        assert set(ownership) <= {"a", "b", "c"}
        # With 64 vnodes nobody should own everything or nothing.
        assert all(count > 0 for count in ownership.values())

    def test_membership_surface(self):
        router = ConsistentRouter(["a"])
        assert "a" in router and len(router) == 1
        with pytest.raises(ServeError):
            router.add("a")  # duplicate
        with pytest.raises(ServeError):
            router.remove("zzz")  # absent
        assert router.discard("zzz") is False
        assert router.discard("a") is True
        assert len(router) == 0
        with pytest.raises(ServeError):
            router.route("anything")  # empty ring

    def test_shards_property_sorted(self):
        router = ConsistentRouter(["c", "a", "b"])
        assert router.shards == ["a", "b", "c"]
