"""Minibatch training loop for the numpy CNN substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro import obs
from repro.errors import TrainingError
from repro.nn.losses import accuracy, softmax_cross_entropy
from repro.nn.network import Sequential
from repro.nn.optim import Adam, Optimizer

__all__ = ["TrainConfig", "TrainHistory", "Trainer", "evaluate_accuracy"]

logger = obs.get_logger("nn.training")


@dataclass
class TrainConfig:
    """Hyper-parameters for :class:`Trainer`."""

    epochs: int = 5
    batch_size: int = 64
    shuffle: bool = True
    seed: int = 0
    #: Stop early once validation accuracy reaches this level (None = never).
    target_accuracy: Optional[float] = None
    #: L1 penalty on ReLU activations.  Encourages the long-tail activation
    #: distribution (paper Table 1: >95% of conv outputs at or near zero)
    #: that the 1-bit quantization method relies on; MNIST-trained CNNs
    #: exhibit it naturally, our synthetic task needs the mild penalty.
    activation_l1: float = 0.0
    #: Print a line per epoch when True.
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch metrics collected during training."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Trains a :class:`Sequential` network with softmax cross-entropy."""

    def __init__(
        self,
        network: Sequential,
        optimizer: Optional[Optimizer] = None,
        config: Optional[TrainConfig] = None,
    ) -> None:
        self.network = network
        self.optimizer = optimizer if optimizer is not None else Adam(1e-3)
        self.config = config if config is not None else TrainConfig()

    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        val_images: Optional[np.ndarray] = None,
        val_labels: Optional[np.ndarray] = None,
        on_epoch_end: Optional[Callable[[int, TrainHistory], None]] = None,
    ) -> TrainHistory:
        """Train and return the metric history.

        Raises :class:`TrainingError` on an empty dataset or a diverging
        (non-finite) loss.
        """
        if len(images) == 0:
            raise TrainingError("cannot train on an empty dataset")
        if len(images) != len(labels):
            raise TrainingError(
                f"images ({len(images)}) and labels ({len(labels)}) disagree"
            )

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        history = TrainHistory()
        n = len(images)

        with obs.span(
            "train.fit", epochs=cfg.epochs, samples=n,
            batch_size=cfg.batch_size,
        ) as fit_sp:
            for epoch in range(cfg.epochs):
                with obs.span("train.epoch", index=epoch) as epoch_sp:
                    order = (
                        rng.permutation(n) if cfg.shuffle else np.arange(n)
                    )
                    epoch_loss = 0.0
                    epoch_correct = 0

                    for start in range(0, n, cfg.batch_size):
                        idx = order[start : start + cfg.batch_size]
                        batch_x, batch_y = images[idx], labels[idx]

                        self.network.zero_grad()
                        logits, loss = self._train_step(batch_x, batch_y)
                        if not np.isfinite(loss):
                            raise TrainingError(
                                f"loss became non-finite ({loss}) at "
                                f"epoch {epoch}"
                            )
                        self.optimizer.step(self.network.parameter_groups())
                        obs.count("train/steps")
                        obs.count("train/samples", len(idx))

                        epoch_loss += loss * len(idx)
                        epoch_correct += int(
                            (logits.argmax(axis=-1) == batch_y).sum()
                        )

                    history.train_loss.append(epoch_loss / n)
                    history.train_accuracy.append(epoch_correct / n)

                    if val_images is not None and val_labels is not None:
                        val_acc = evaluate_accuracy(
                            self.network, val_images, val_labels
                        )
                        history.val_accuracy.append(val_acc)
                    else:
                        val_acc = history.train_accuracy[-1]
                    epoch_sp.set("loss", history.train_loss[-1])
                    epoch_sp.set("val_accuracy", val_acc)

                if cfg.verbose:
                    logger.info(
                        "epoch %d/%d: loss=%.4f train_acc=%.4f val_acc=%.4f",
                        epoch + 1,
                        cfg.epochs,
                        history.train_loss[-1],
                        history.train_accuracy[-1],
                        val_acc,
                    )
                if on_epoch_end is not None:
                    on_epoch_end(epoch, history)
                if (
                    cfg.target_accuracy is not None
                    and val_acc >= cfg.target_accuracy
                ):
                    obs.count("train/early_stops")
                    break
            fit_sp.set("epochs_run", history.epochs_run)

        return history

    def _train_step(self, batch_x: np.ndarray, batch_y: np.ndarray):
        """Forward + backward for one minibatch; returns (logits, loss).

        When ``activation_l1`` is set, the backward pass is unrolled layer
        by layer so the sparsity penalty's gradient (``lambda`` for every
        positive ReLU output, scaled by batch size) can be injected at
        each ReLU.
        """
        lam = self.config.activation_l1
        if lam <= 0.0:
            logits = self.network.forward(batch_x, train=True)
            loss, grad = softmax_cross_entropy(logits, batch_y)
            self.network.backward(grad)
            return logits, loss

        from repro.nn.layers import ReLU

        activations = []
        x = batch_x
        for layer in self.network.layers:
            x = layer.forward(x, train=True)
            activations.append(x)
        logits = x
        loss, grad = softmax_cross_entropy(logits, batch_y)
        penalty_scale = lam / len(batch_x)
        for index in reversed(range(len(self.network.layers))):
            layer = self.network.layers[index]
            if isinstance(layer, ReLU):
                grad = grad + penalty_scale * (activations[index] > 0)
            grad = layer.backward(grad)
        return logits, loss


def evaluate_accuracy(
    network: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> float:
    """Classification accuracy of ``network`` on a dataset."""
    logits = network.predict(images, batch_size=batch_size)
    return accuracy(logits, labels)
