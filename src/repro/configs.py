"""The paper's network configurations (Table 2) and their metadata.

Three 4-layer CNNs are evaluated on MNIST: two Conv layers (each followed
by ReLU and 2x2 max pooling) and one FC layer.  The "weight matrix" shapes
of Table 2 are the crossbar images of each layer:

=============  ==============  ==============  ==============
Layer          Network 1       Network 2       Network 3
=============  ==============  ==============  ==============
Input          28 x 28         28 x 28         28 x 28
Conv 1         12 k @ 5x5      4 k @ 3x3       6 k @ 3x3
Weight mat 1   25 x 12         9 x 4           9 x 6
Pooling        2 x 2           2 x 2           2 x 2
Conv 2         64 k @ 5x5      8 k @ 3x3       12 k @ 3x3
Weight mat 2   300 x 64        36 x 8          54 x 12
Pooling        2 x 2           2 x 2           2 x 2
FC             1024 x 10       200 x 10        300 x 10
Complexity     0.006 GOPs      0.00016 GOPs    0.0003 GOPs
=============  ==============  ==============  ==============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

__all__ = [
    "NetworkSpec",
    "NETWORK_SPECS",
    "get_network_spec",
    "build_network",
    "network_weight_matrix_shapes",
    "count_operations",
]


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of one Table 2 network."""

    name: str
    input_size: int = 28
    conv1_kernels: int = 12
    conv1_size: int = 5
    conv2_kernels: int = 64
    conv2_size: int = 5
    pool: int = 2
    fc_inputs: int = 1024
    num_classes: int = 10
    #: Complexity in GOPs as reported by the paper's Table 2 / Table 5.
    paper_gops: float = 0.006
    #: Error rates the paper reports (Table 3), for EXPERIMENTS.md comparison.
    paper_error_before: float = 0.0093
    paper_error_after: float = 0.0163

    def describe(self) -> Dict[str, str]:
        """Human-readable Table 2 row for this network."""
        shapes = network_weight_matrix_shapes(self)
        return {
            "Input Layer": f"{self.input_size} x {self.input_size}",
            "Conv Layer 1": (
                f"{self.conv1_kernels} kernels sized of "
                f"{self.conv1_size} x {self.conv1_size}"
            ),
            "Weight Matrix 1": f"{shapes[0][0]} x {shapes[0][1]}",
            "Pooling": f"{self.pool} x {self.pool}",
            "Conv Layer 2": (
                f"{self.conv2_kernels} kernels sized of "
                f"{self.conv2_size} x {self.conv2_size}"
            ),
            "Weight Matrix 2": f"{shapes[1][0]} x {shapes[1][1]}",
            "FC Layer": f"{shapes[2][0]} x {shapes[2][1]}",
            "Complexity (GOPs)": f"{self.paper_gops:g}",
        }


NETWORK_SPECS: Dict[str, NetworkSpec] = {
    "network1": NetworkSpec(
        name="network1",
        conv1_kernels=12,
        conv1_size=5,
        conv2_kernels=64,
        conv2_size=5,
        fc_inputs=1024,
        paper_gops=0.006,
        paper_error_before=0.0093,
        paper_error_after=0.0163,
    ),
    "network2": NetworkSpec(
        name="network2",
        conv1_kernels=4,
        conv1_size=3,
        conv2_kernels=8,
        conv2_size=3,
        fc_inputs=200,
        paper_gops=0.00016,
        paper_error_before=0.0288,
        paper_error_after=0.0342,
    ),
    "network3": NetworkSpec(
        name="network3",
        conv1_kernels=6,
        conv1_size=3,
        conv2_kernels=12,
        conv2_size=3,
        fc_inputs=300,
        paper_gops=0.0003,
        paper_error_before=0.0153,
        paper_error_after=0.0207,
    ),
}


def get_network_spec(name: str) -> NetworkSpec:
    """Look up a Table 2 network by name ('network1'|'network2'|'network3')."""
    try:
        return NETWORK_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(NETWORK_SPECS))
        raise ConfigurationError(
            f"unknown network {name!r}; known: {known}"
        ) from None


def _spatial_sizes(spec: NetworkSpec) -> Tuple[int, int, int, int]:
    """(conv1_out, pool1_out, conv2_out, pool2_out) spatial sizes."""
    conv1 = spec.input_size - spec.conv1_size + 1
    pool1 = conv1 // spec.pool
    conv2 = pool1 - spec.conv2_size + 1
    pool2 = conv2 // spec.pool
    return conv1, pool1, conv2, pool2


def network_weight_matrix_shapes(
    spec: NetworkSpec,
) -> List[Tuple[int, int]]:
    """Weight-matrix (crossbar image) shapes per layer, as in Table 2."""
    _, _, _, pool2 = _spatial_sizes(spec)
    return [
        (spec.conv1_size**2, spec.conv1_kernels),
        (spec.conv2_size**2 * spec.conv1_kernels, spec.conv2_kernels),
        (spec.conv2_kernels * pool2**2, spec.num_classes),
    ]


def build_network(
    spec: NetworkSpec | str, seed: int = 0
) -> Sequential:
    """Instantiate the 4-layer CNN described by ``spec`` (untrained)."""
    if isinstance(spec, str):
        spec = get_network_spec(spec)

    _, _, _, pool2 = _spatial_sizes(spec)
    fc_inputs = spec.conv2_kernels * pool2**2
    if fc_inputs != spec.fc_inputs:
        raise ConfigurationError(
            f"{spec.name}: derived FC input size {fc_inputs} does not match "
            f"the declared {spec.fc_inputs}; the spec is inconsistent"
        )

    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(1, spec.conv1_kernels, spec.conv1_size, use_bias=False, rng=rng),
        ReLU(),
        MaxPool2D(spec.pool),
        Conv2D(
            spec.conv1_kernels,
            spec.conv2_kernels,
            spec.conv2_size,
            use_bias=False,
            rng=rng,
        ),
        ReLU(),
        MaxPool2D(spec.pool),
        Flatten(),
        Dense(fc_inputs, spec.num_classes, use_bias=True, rng=rng),
    ]
    return Sequential(layers, (1, spec.input_size, spec.input_size))


def count_operations(spec: NetworkSpec | str) -> Dict[str, int]:
    """Multiply-accumulate and total-op counts per layer for one picture.

    The paper counts "operations" such that Network 1 totals ~0.006 GOPs;
    counting one multiply + one add per weight access (2 ops per MAC)
    reproduces the order of magnitude.  Both MACs and 2x-MAC "ops" are
    returned so the benchmarks can report either convention.
    """
    if isinstance(spec, str):
        spec = get_network_spec(spec)
    conv1, pool1, conv2, pool2 = _spatial_sizes(spec)
    shapes = network_weight_matrix_shapes(spec)

    macs = {
        "conv1": conv1**2 * shapes[0][0] * shapes[0][1],
        "conv2": conv2**2 * shapes[1][0] * shapes[1][1],
        "fc": shapes[2][0] * shapes[2][1],
    }
    total_macs = sum(macs.values())
    return {
        **{f"{k}_macs": v for k, v in macs.items()},
        "total_macs": total_macs,
        "total_ops": 2 * total_macs,
    }
