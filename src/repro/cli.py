"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro.cli info
    python -m repro.cli fig1
    python -m repro.cli table1|table2|table3|table5
    python -m repro.cli quantize network2
    python -m repro.cli split network1 --crossbar 256 --method homogenize
    python -m repro.cli tradeoff network1 --structure sei

Accuracy commands train models on first use and cache them under
``.cache/`` (a few minutes); cost-model commands are instant.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.arch import (
    breakdown_rows,
    buffer_plan,
    evaluate_design,
    format_table,
    power_time_tradeoff,
    reference_efficiency_rows,
    table5_rows,
)
from repro.configs import NETWORK_SPECS, get_network_spec

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Switched by Input: Power Efficient Structure "
            "for RRAM-based CNN' (DAC 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and paper summary")
    sub.add_parser("fig1", help="Fig. 1: baseline power/area breakdown")
    sub.add_parser("table1", help="Table 1: activation distribution")
    sub.add_parser("table2", help="Table 2: network configurations")
    sub.add_parser("table3", help="Table 3: quantization error rates")
    sub.add_parser("table5", help="Table 5: energy/area of the structures")

    quantize = sub.add_parser("quantize", help="run Algorithm 1 on a network")
    quantize.add_argument("network", choices=sorted(NETWORK_SPECS))

    split = sub.add_parser("split", help="split a network across crossbars")
    split.add_argument("network", choices=sorted(NETWORK_SPECS))
    split.add_argument("--crossbar", type=int, default=512)
    split.add_argument(
        "--method",
        choices=("natural", "random", "homogenize"),
        default="homogenize",
    )
    split.add_argument("--dynamic", action="store_true")

    tradeoff = sub.add_parser(
        "tradeoff", help="power-time tradeoff and buffer plan"
    )
    tradeoff.add_argument("network", choices=sorted(NETWORK_SPECS))
    tradeoff.add_argument(
        "--structure", choices=("dac_adc", "onebit_adc", "sei"), default="sei"
    )

    datasheet = sub.add_parser(
        "datasheet", help="full chip datasheet for one design point"
    )
    datasheet.add_argument("network", choices=sorted(NETWORK_SPECS))
    datasheet.add_argument(
        "--structure", choices=("dac_adc", "onebit_adc", "sei"), default="sei"
    )
    datasheet.add_argument("--crossbar", type=int, default=512)
    datasheet.add_argument("--replication", type=int, default=1)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    handler(args)
    return 0


# -- command handlers -----------------------------------------------------------


def _cmd_info(args) -> None:
    import repro

    print(f"repro {repro.__version__}")
    print(__doc__)
    print("networks:")
    for name in sorted(NETWORK_SPECS):
        spec = get_network_spec(name)
        print(f"  {name}: {spec.describe()['Conv Layer 1']}, ...")


def _cmd_fig1(args) -> None:
    evaluation = evaluate_design("network1", "dac_adc")
    print(format_table(breakdown_rows(evaluation.cost), floatfmt="{:.3f}"))
    print(
        f"\nADC+DAC: {evaluation.cost.energy_share('adc', 'dac'):.1%} power, "
        f"{evaluation.cost.area_share('adc', 'dac'):.1%} area"
    )


def _cmd_table1(args) -> None:
    from repro.analysis import conv_output_distribution
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    rows = []
    for name in sorted(NETWORK_SPECS):
        model = get_quantized(name, dataset=dataset)
        dist = conv_output_distribution(
            model.search.network, dataset.train.images[:500]
        )
        for layer, fractions in dist.items():
            rows.append(
                {
                    "network": name,
                    "layer": layer,
                    "0~1/16": fractions[0],
                    "1/16~1/8": fractions[1],
                    "1/8~1/4": fractions[2],
                    "1/4~1": fractions[3],
                }
            )
    print(format_table(rows, floatfmt="{:.4f}"))


def _cmd_table2(args) -> None:
    rows = [
        {"network": name, **get_network_spec(name).describe()}
        for name in sorted(NETWORK_SPECS)
    ]
    print(format_table(rows))


def _cmd_table3(args) -> None:
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    rows = []
    for name in sorted(NETWORK_SPECS):
        model = get_quantized(name, dataset=dataset)
        rows.append(
            {
                "network": name,
                "before quant (%)": 100 * model.float_test_error,
                "after quant (%)": 100 * model.quantized_test_error,
            }
        )
    print(format_table(rows))


def _cmd_table5(args) -> None:
    print(format_table(table5_rows()))
    print()
    print(format_table(reference_efficiency_rows()))


def _cmd_quantize(args) -> None:
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    model = get_quantized(args.network, dataset=dataset)
    print(f"float test error:     {model.float_test_error:.2%}")
    print(f"quantized test error: {model.quantized_test_error:.2%}")
    print("thresholds:")
    for layer, threshold in model.search.thresholds.items():
        print(
            f"  layer {layer}: {threshold:.4f} "
            f"(rescaled by {model.search.divisors[layer]:.3f})"
        )


def _cmd_split(args) -> None:
    from repro.core import SplitConfig, build_split_network
    from repro.zoo import get_dataset, get_quantized

    dataset = get_dataset()
    model = get_quantized(args.network, dataset=dataset)
    result = build_split_network(
        model.search.network,
        model.search.thresholds,
        dataset.train.images,
        dataset.train.labels,
        SplitConfig(
            max_crossbar_size=args.crossbar,
            partition_method=args.method,
            dynamic=args.dynamic,
        ),
    )
    error = result.binarized.error_rate(
        dataset.test.images, dataset.test.labels
    )
    print(f"unsplit quantized error: {model.quantized_test_error:.2%}")
    print(f"split error ({args.method}, crossbar {args.crossbar}): {error:.2%}")
    for index, report in result.reports.items():
        print(
            f"  layer {index}: {report.num_blocks} blocks, vote "
            f"{report.decision.vote_threshold}, Equ.10 distance "
            f"{report.distance:.4f} (natural {report.natural_distance:.4f})"
        )


def _cmd_tradeoff(args) -> None:
    print(format_table(power_time_tradeoff(args.network, args.structure)))
    print()
    print(format_table(buffer_plan(args.network, args.structure)))


def _cmd_datasheet(args) -> None:
    from repro.arch import chip_datasheet
    from repro.hw import TechnologyModel

    sheet = chip_datasheet(
        args.network,
        args.structure,
        tech=TechnologyModel().with_crossbar_size(args.crossbar),
        replication=args.replication,
    )
    print(sheet.render())


_HANDLERS = {
    "info": _cmd_info,
    "fig1": _cmd_fig1,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table5": _cmd_table5,
    "quantize": _cmd_quantize,
    "split": _cmd_split,
    "tradeoff": _cmd_tradeoff,
    "datasheet": _cmd_datasheet,
}


if __name__ == "__main__":
    sys.exit(main())
