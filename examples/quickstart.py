"""Quickstart: the paper's pipeline in ~40 lines.

Trains (or loads from cache) the smallest Table 2 network, quantizes its
intermediate data to 1 bit with Algorithm 1, and compares the three
hardware structures of Table 5.

Run:  python examples/quickstart.py
"""

from repro.arch import evaluate_all_designs, format_table
from repro.zoo import get_dataset, get_quantized


def main() -> None:
    # 1. Data + trained + quantized model (cached under .cache/ after the
    #    first run; the first call trains for a minute or two).
    dataset = get_dataset()
    model = get_quantized("network2", dataset=dataset)

    print("== Accuracy (Table 3 row) ==")
    print(f"float test error:      {model.float_test_error:.2%}")
    print(f"1-bit quantized error: {model.quantized_test_error:.2%}")
    print(f"thresholds per layer:  { {k: round(v, 3) for k, v in model.search.thresholds.items()} }")

    # 2. Run the quantized network on a few test digits.
    binarized = model.search.binarized()
    logits = binarized.predict(dataset.test.images[:8])
    print("\n== Sample predictions ==")
    print(f"predicted: {logits.argmax(axis=1).tolist()}")
    print(f"actual:    {dataset.test.labels[:8].tolist()}")

    # 3. Hardware cost: the three structures of Table 5.
    designs = evaluate_all_designs("network2")
    baseline = designs["dac_adc"]
    rows = []
    for structure, ev in designs.items():
        rows.append(
            {
                "structure": structure,
                "energy (uJ/pic)": ev.energy_uj_per_picture,
                "area (mm^2)": ev.area_mm2,
                "energy saving": f"{ev.cost.energy_saving_vs(baseline.cost):.1%}",
                "GOPs/J": ev.gops_per_joule(),
            }
        )
    print("\n== Hardware cost (Table 5 rows) ==")
    print(format_table(rows))


if __name__ == "__main__":
    main()
