"""The :class:`Sequential` network container.

A network is an ordered list of layers.  Besides the usual forward /
backward plumbing, :class:`Sequential` offers the inspection hooks the
paper's quantization pipeline needs:

* ``forward_collect`` returns every intermediate activation so the
  threshold-search algorithm can analyse per-layer data distributions;
* ``quantizable_indices`` enumerates layers whose outputs are intermediate
  data in the paper's sense (Conv2D / Dense outputs, before the non-linear
  neuron), i.e. the points where 1-bit quantization is applied;
* ``save`` / ``load`` persist weights to ``.npz`` so expensive training is
  done once and reused by tests and benchmarks.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU

__all__ = ["Sequential"]


class Sequential:
    """An ordered feed-forward stack of layers."""

    def __init__(self, layers: Sequence[Layer], input_shape: Tuple[int, ...]):
        if not layers:
            raise ConfigurationError("a network needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(input_shape)
        # Validate shape compatibility eagerly so misconfiguration fails at
        # construction time, not deep inside a training loop.
        shape = self.input_shape
        self._shapes: List[Tuple[int, ...]] = [shape]
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self._shapes.append(shape)

    # -- basic execution -----------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Run the network; returns the final logits."""
        self._check_input(x)
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through every layer (after forward)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Memory-bounded inference; returns logits for all samples."""
        outputs = []
        for start in range(0, len(x), batch_size):
            outputs.append(self.forward(x[start : start + batch_size]))
        return np.concatenate(outputs, axis=0)

    def forward_collect(self, x: np.ndarray) -> List[np.ndarray]:
        """Forward pass that returns the output of *every* layer.

        ``result[i]`` is the output of ``self.layers[i]``.  Used by the
        data-distribution analysis (Table 1) and threshold search.
        """
        self._check_input(x)
        activations = []
        for layer in self.layers:
            x = layer.forward(x)
            activations.append(x)
        return activations

    def forward_from(self, x: np.ndarray, start: int) -> np.ndarray:
        """Run only layers ``start..end`` on an already-computed activation.

        This is the key efficiency trick for the brute-force threshold
        search: the activations up to layer ``start`` are computed once and
        each candidate threshold only re-runs the tail of the network.
        """
        if not 0 <= start <= len(self.layers):
            raise ConfigurationError(
                f"start index {start} outside [0, {len(self.layers)}]"
            )
        for layer in self.layers[start:]:
            x = layer.forward(x)
        return x

    # -- structure inspection --------------------------------------------------
    def quantizable_indices(self) -> List[int]:
        """Indices of layers whose outputs are quantizable intermediate data."""
        return [i for i, l in enumerate(self.layers) if l.quantizable]

    def shape_at(self, index: int) -> Tuple[int, ...]:
        """Output shape (excluding batch) of layer ``index``."""
        return self._shapes[index + 1]

    def parameter_groups(self) -> List[Tuple[Dict, Dict]]:
        """(params, grads) pairs for the optimiser."""
        return [(l.params, l.grads) for l in self.layers if l.params]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # -- persistence -----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name->array mapping of every parameter."""
        state = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                state[f"layer{i}.{name}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            for name in layer.params:
                key = f"layer{i}.{name}"
                if key not in state:
                    raise ConfigurationError(f"state dict missing {key!r}")
                if state[key].shape != layer.params[name].shape:
                    raise ShapeError(
                        f"{key}: expected shape {layer.params[name].shape}, "
                        f"got {state[key].shape}"
                    )
                layer.params[name] = np.array(state[key], dtype=np.float64)

    def save(self, path: str | Path) -> None:
        """Save all parameters to an ``.npz`` file (atomically).

        The archive is written to a sibling temp file and moved into
        place, so an interrupted save never leaves a truncated (corrupt)
        artifact behind for later loads to trip over.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **self.state_dict())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    def load(self, path: str | Path) -> None:
        """Load parameters saved by :meth:`save`."""
        with np.load(Path(path)) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def copy(self) -> "Sequential":
        """Deep copy: same architecture, duplicated parameters.

        The paper's pipeline mutates weights (re-scaling) and we never want
        that to corrupt the original trained model.
        """
        clone = Sequential(_clone_layers(self.layers), self.input_shape)
        clone.load_state_dict(
            {k: v.copy() for k, v in self.state_dict().items()}
        )
        return clone

    # -- internals ---------------------------------------------------------------
    def _check_input(self, x: np.ndarray) -> None:
        if x.shape[1:] != self.input_shape:
            raise ShapeError(
                f"network expects input shape {self.input_shape}, "
                f"got {x.shape[1:]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential([{inner}], input_shape={self.input_shape})"


def _clone_layers(layers: Sequence[Layer]) -> List[Layer]:
    """Construct fresh layer objects mirroring ``layers`` (weights not copied)."""
    clones: List[Layer] = []
    for layer in layers:
        if isinstance(layer, Conv2D):
            clones.append(
                Conv2D(
                    layer.in_channels,
                    layer.out_channels,
                    layer.kernel_size,
                    stride=layer.stride,
                    padding=layer.padding,
                    use_bias=layer.use_bias,
                )
            )
        elif isinstance(layer, Dense):
            clones.append(
                Dense(
                    layer.in_features,
                    layer.out_features,
                    use_bias=layer.use_bias,
                )
            )
        elif isinstance(layer, MaxPool2D):
            clones.append(MaxPool2D(layer.pool, layer.stride))
        elif isinstance(layer, ReLU):
            clones.append(ReLU())
        elif isinstance(layer, Flatten):
            clones.append(Flatten())
        else:
            raise ConfigurationError(
                f"cannot clone unknown layer type {type(layer).__name__}"
            )
    return clones
