"""Non-ideality study: how much silicon imperfection can SEI absorb?

The paper's conclusion defers "the non-ideal factors of RRAM and
circuit" to future work; this example runs that study on our models:

1. Monte-Carlo accuracy sweeps over programming variation, read noise,
   stuck-at cell faults and sense-amp noise;
2. the closed-loop program-and-verify tuning of ref [13], measuring how
   many iterations a sloppy device needs to hit 4-bit placement;
3. noise-aware threshold calibration, recovering accuracy when the
   deployment is known to be noisy.

Run:  python examples/robustness_study.py
"""

import numpy as np

from repro.analysis import (
    sei_variation_sweep,
    sense_amp_noise_sweep,
)
from repro.arch import format_table
from repro.core import RobustSearchConfig, SearchConfig, robustify_thresholds
from repro.hw import RRAMDevice, tune_cells
from repro.zoo import get_dataset, get_quantized

SAMPLES = 400


def main() -> None:
    dataset = get_dataset()
    model = get_quantized("network2", dataset=dataset)
    net, thresholds = model.search.network, model.search.thresholds
    images = dataset.test.images[:SAMPLES]
    labels = dataset.test.labels[:SAMPLES]
    print(f"nominal 1-bit error: {model.quantized_test_error:.2%}\n")

    # -- 1: sweeps ----------------------------------------------------------
    print("== Monte-Carlo non-ideality sweeps (SEI hardware, 5 trials) ==")
    for kind, sigmas, label in (
        ("program", (0.0, 0.3, 1.0, 2.0), "programming sigma (level steps)"),
        ("read", (0.0, 0.02, 0.05, 0.1), "read noise (relative)"),
        ("stuck", (0.0, 0.01, 0.03, 0.08), "stuck-at-g_min fault rate"),
    ):
        sweep = sei_variation_sweep(
            net, thresholds, images, labels, sigmas=sigmas, trials=5, kind=kind
        )
        print(f"\n-- {label} --")
        print(format_table(sweep.rows(), floatfmt="{:.4f}"))

    sense = sense_amp_noise_sweep(
        net, thresholds, images, labels, sigmas=(0.0, 0.1, 0.25, 0.5), trials=5
    )
    print("\n-- sense-amp noise (relative to threshold) --")
    print(format_table(sense.rows(), floatfmt="{:.4f}"))

    # -- 2: program-and-verify tuning ([13]) ---------------------------------
    print("\n== Closed-loop tuning (ref [13]) ==")
    rng = np.random.default_rng(0)
    targets = rng.random(20000)
    rows = []
    for sigma in (0.2, 0.5, 1.0, 2.0):
        result = tune_cells(
            RRAMDevice(bits=4, program_sigma=sigma),
            targets,
            tolerance=0.5,
            rng=np.random.default_rng(1),
        )
        rows.append(
            {
                "open-loop sigma": sigma,
                "mean iterations": result.mean_iterations,
                "yield": result.yield_fraction,
            }
        )
    print(format_table(rows, floatfmt="{:.3f}"))

    # -- 3: noise-aware calibration ---------------------------------------------
    sigma = 2.5
    print(f"\n== Noise-aware threshold calibration (sigma {sigma}) ==")
    robust = robustify_thresholds(
        model.search,
        dataset.train.images[:1500],
        dataset.train.labels[:1500],
        RobustSearchConfig(
            program_sigma=sigma, trials=5, search=SearchConfig(search_step=0.01)
        ),
    )
    rows = []
    for th, label in (
        (thresholds, "Algorithm 1 (nominal)"),
        (robust, "noise-aware"),
    ):
        sweep = sei_variation_sweep(
            net, th, images, labels, sigmas=(sigma,), trials=8, seed=42
        )
        rows.append(
            {
                "calibration": label,
                "thresholds": str({k: round(v, 3) for k, v in th.items()}),
                "mean error": sweep.mean_error[0],
            }
        )
    print(format_table(rows, floatfmt="{:.4f}"))


if __name__ == "__main__":
    main()
