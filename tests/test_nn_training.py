"""Unit tests for repro.nn.training."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Adam, TrainConfig, Trainer, evaluate_accuracy

from tests.conftest import build_tiny_network


class TestTrainer:
    def test_training_improves_accuracy(self, tiny_dataset):
        net = build_tiny_network(seed=9)
        before = evaluate_accuracy(
            net, tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        trainer = Trainer(
            net, Adam(2e-3), TrainConfig(epochs=3, batch_size=32, seed=0)
        )
        history = trainer.fit(
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            tiny_dataset["test_x"],
            tiny_dataset["test_y"],
        )
        assert history.epochs_run == 3
        assert history.val_accuracy[-1] > before
        assert history.val_accuracy[-1] > 0.7

    def test_loss_decreases(self, tiny_dataset):
        net = build_tiny_network(seed=4)
        trainer = Trainer(net, Adam(2e-3), TrainConfig(epochs=3, seed=0))
        history = trainer.fit(tiny_dataset["train_x"], tiny_dataset["train_y"])
        assert history.train_loss[-1] < history.train_loss[0]

    def test_empty_dataset_raises(self):
        net = build_tiny_network()
        trainer = Trainer(net)
        with pytest.raises(TrainingError):
            trainer.fit(np.zeros((0, 1, 28, 28)), np.zeros(0, dtype=int))

    def test_length_mismatch_raises(self, tiny_dataset):
        net = build_tiny_network()
        trainer = Trainer(net)
        with pytest.raises(TrainingError):
            trainer.fit(tiny_dataset["train_x"], tiny_dataset["train_y"][:-5])

    def test_target_accuracy_early_stop(self, tiny_dataset):
        net = build_tiny_network(seed=5)
        trainer = Trainer(
            net,
            Adam(2e-3),
            TrainConfig(epochs=50, seed=0, target_accuracy=0.5),
        )
        history = trainer.fit(
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            tiny_dataset["test_x"],
            tiny_dataset["test_y"],
        )
        assert history.epochs_run < 50

    def test_on_epoch_end_callback(self, tiny_dataset):
        net = build_tiny_network(seed=6)
        seen = []
        trainer = Trainer(net, Adam(2e-3), TrainConfig(epochs=2, seed=0))
        trainer.fit(
            tiny_dataset["train_x"][:64],
            tiny_dataset["train_y"][:64],
            on_epoch_end=lambda epoch, hist: seen.append(epoch),
        )
        assert seen == [0, 1]

    def test_deterministic_given_seed(self, tiny_dataset):
        results = []
        for _ in range(2):
            net = build_tiny_network(seed=7)
            trainer = Trainer(net, Adam(2e-3), TrainConfig(epochs=1, seed=3))
            trainer.fit(tiny_dataset["train_x"][:96], tiny_dataset["train_y"][:96])
            results.append(net.forward(tiny_dataset["test_x"][:4]))
        np.testing.assert_allclose(results[0], results[1])


class TestActivationL1:
    def test_penalty_increases_sparsity(self, tiny_dataset):
        """The activation-L1 option reproduces the Table 1 long tail."""

        def sparsity(lam):
            net = build_tiny_network(seed=8)
            trainer = Trainer(
                net,
                Adam(2e-3),
                TrainConfig(epochs=3, seed=0, activation_l1=lam),
            )
            trainer.fit(tiny_dataset["train_x"], tiny_dataset["train_y"])
            acts = net.forward_collect(tiny_dataset["test_x"][:64])
            conv_out = np.maximum(acts[0], 0.0)
            peak = conv_out.max()
            return float((conv_out < peak / 16).mean())

        assert sparsity(0.05) > sparsity(0.0)

    def test_penalty_keeps_training_functional(self, tiny_dataset):
        net = build_tiny_network(seed=2)
        trainer = Trainer(
            net, Adam(2e-3), TrainConfig(epochs=6, seed=0, activation_l1=0.005)
        )
        trainer.fit(tiny_dataset["train_x"], tiny_dataset["train_y"])
        acc = evaluate_accuracy(
            net, tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        # The tiny fixture net on 400 samples will not reach zoo-level
        # accuracy; the point is that the penalty does not break training.
        assert acc > 0.6
