"""One serving shard: a warm multi-tenant worker behind the gateway.

A :class:`SessionShard` is the unit the gateway routes to.  Each shard
owns:

* a :class:`~repro.serve.registry.WarmRegistry` of per-tenant inference
  targets (LRU-evicted, cold-start prewarmed at :meth:`start`);
* one :class:`~repro.serve.batcher.MicroBatcher` per active tenant,
  coalescing that tenant's requests into tile-sized batches;
* a private :class:`~repro.obs.Recorder` + flight ring, so the shard's
  ``serve/*`` series stay separable behind the gateway's aggregated
  ``/metrics`` endpoint (labelled ``shard="<id>"``).

Shards are threads in this process (numpy releases the GIL inside the
MVM kernels, and request arrays hand over zero-copy), but the lifecycle
is written as if they were remote: the gateway only talks to a shard
through :meth:`submit`, :meth:`kill`, :meth:`rejoin` and
:meth:`health`, so a process- or host-backed shard can drop in behind
the same surface.

Lifecycle::

    new -> (start) -> serving -> (kill) -> dead -> (rejoin) -> serving
                              -> (stop) -> stopped

``kill`` is abrupt (chaos semantics): every queued and in-flight
request fails promptly with :class:`~repro.errors.ShardDeadError` —
no hangs, no silent drops — and the gateway re-routes *new* traffic.
``rejoin`` is health-gated: tenants optionally re-tune their aging
hardware (:meth:`~repro.serve.session.InferenceSession.retune`), every
tenant must pass its ``self_check`` probes, and only then does the
shard accept traffic again.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, Mapping, Optional

import numpy as np

from repro import obs
from repro.errors import ConformanceError, ConfigurationError, ShardDeadError
from repro.obs.live import TelemetryPlane
from repro.obs.recorder import Recorder
from repro.serve.batcher import BatcherConfig, MicroBatcher
from repro.serve.clock import SYSTEM_CLOCK, Clock
from repro.serve.registry import WarmRegistry

__all__ = ["SessionShard"]

logger = obs.get_logger("serve")

#: Shard lifecycle states.
STATE_NEW = "new"
STATE_SERVING = "serving"
STATE_DEAD = "dead"
STATE_STOPPED = "stopped"


class SessionShard:
    """A warm, killable, rejoinable serving worker for N tenants.

    Parameters
    ----------
    shard_id:
        Stable identity on the router's hash ring.
    tenants:
        ``name -> factory``; each factory builds that tenant's
        inference target (an :class:`~repro.serve.session.
        InferenceSession` or any object with ``infer_batch``).  The
        factory runs at most ``registry_capacity`` times concurrently
        resident per shard (LRU beyond that).
    batcher:
        Coalescing parameters shared by every tenant batcher.
    registry_capacity:
        Warm-model registry size (tenants resident at once).
    clock:
        Injected time source, threaded into every tenant batcher.
    """

    def __init__(
        self,
        shard_id: str,
        tenants: Mapping[str, Callable[[], object]],
        batcher: Optional[BatcherConfig] = None,
        registry_capacity: int = 4,
        clock: Optional[Clock] = None,
    ) -> None:
        if not tenants:
            raise ConfigurationError("a shard needs at least one tenant")
        self.shard_id = str(shard_id)
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.batcher_config = (
            batcher if batcher is not None else BatcherConfig()
        )
        self._tenants = dict(tenants)
        #: Dedicated recorder: the shard's serve/* metrics live here.
        self.recorder = Recorder()
        self.plane = TelemetryPlane(recorder=self.recorder)
        self.registry = WarmRegistry(
            loader=self._load_tenant,
            capacity=registry_capacity,
            recorder=self.recorder,
        )
        self._batchers: Dict[str, MicroBatcher] = {}
        self._lock = threading.Lock()
        self.state = STATE_NEW
        self.deaths = 0
        self.rejoins = 0

    # -- internals -------------------------------------------------------
    def _load_tenant(self, tenant: str):
        factory = self._tenants.get(tenant)
        if factory is None:
            raise ConfigurationError(
                f"shard {self.shard_id!r} has no tenant {tenant!r} "
                f"(tenants: {sorted(self._tenants)})"
            )
        return factory()

    def _make_batcher(self, tenant: str) -> MicroBatcher:
        target = self.registry.get(tenant)
        batcher = MicroBatcher(
            target, self.batcher_config, clock=self.clock
        )
        batcher.recorder = self.recorder
        batcher.flight = self.plane.flight
        return batcher.start()

    def _batcher_for(self, tenant: str) -> MicroBatcher:
        with self._lock:
            if self.state != STATE_SERVING:
                raise ShardDeadError(
                    f"shard {self.shard_id!r} is {self.state}, not serving"
                )
            batcher = self._batchers.get(tenant)
            if batcher is None:
                batcher = self._make_batcher(tenant)
                self._batchers[tenant] = batcher
            return batcher

    # -- lifecycle -------------------------------------------------------
    @property
    def serving(self) -> bool:
        return self.state == STATE_SERVING

    def start(self, prewarm: Iterable[str] = ()) -> "SessionShard":
        """Begin serving; ``prewarm`` pays those tenants' cold starts now."""
        with self._lock:
            if self.state not in (STATE_NEW, STATE_STOPPED):
                raise ShardDeadError(
                    f"shard {self.shard_id!r} cannot start from state "
                    f"{self.state!r} (dead shards rejoin instead)"
                )
            self.state = STATE_SERVING
        for tenant in prewarm:
            self.registry.get(tenant)
        logger.debug(
            "shard %s serving (%d tenants prewarmed)",
            self.shard_id,
            len(list(prewarm)) if not isinstance(prewarm, (list, tuple))
            else len(prewarm),
        )
        return self

    def submit(self, x: np.ndarray, tenant: str = "default", timeout=None):
        """Enqueue one request for ``tenant``; a Future of its output row.

        Raises :class:`~repro.errors.ShardDeadError` when the shard is
        not serving, and :class:`~repro.errors.BackpressureError` when
        the tenant's admission queue stays full past ``timeout``.
        """
        return self._batcher_for(tenant).submit(x, timeout=timeout)

    def kill(self) -> None:
        """Abrupt chaos death: fail everything in flight, accept nothing.

        Idempotent; never blocks on a wedged worker.
        """
        with self._lock:
            if self.state == STATE_DEAD:
                return
            self.state = STATE_DEAD
            self.deaths += 1
            batchers = dict(self._batchers)
            self._batchers.clear()
        error = ShardDeadError(
            f"shard {self.shard_id!r} died with this request in flight"
        )
        for batcher in batchers.values():
            batcher.abort(error)
        self.recorder.metrics.inc("serve/shard/deaths")
        self.plane.flight.record("shard_killed", shard=self.shard_id)
        logger.warning("shard %s killed", self.shard_id)

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: finish (or cancel) pending work, then stop."""
        with self._lock:
            if self.state in (STATE_STOPPED, STATE_NEW):
                self.state = STATE_STOPPED
                return
            self.state = STATE_STOPPED
            batchers = dict(self._batchers)
            self._batchers.clear()
        for batcher in batchers.values():
            batcher.stop(drain=drain)

    def rejoin(
        self,
        probes: Optional[np.ndarray] = None,
        tenants: Optional[Iterable[str]] = None,
        retune: bool = True,
        max_disagreement: float = 0.0,
    ) -> "SessionShard":
        """Health-gated return to service after :meth:`kill`.

        For each tenant to gate (``tenants`` defaults to the warm
        residents), the shard first re-tunes aging hardware when the
        tenant session supports it (``retune=True``, the PR 8 hook),
        then runs ``self_check(probes)``.  Any gate failure leaves the
        shard dead and re-raises — a degraded shard must not rejoin the
        ring.  Only after every gate passes does the state flip back to
        serving (with fresh batchers created lazily per tenant).
        """
        with self._lock:
            if self.state != STATE_DEAD:
                raise ShardDeadError(
                    f"shard {self.shard_id!r} is {self.state!r}; only dead "
                    "shards rejoin"
                )
        gate_tenants = list(
            tenants if tenants is not None else self.registry.resident
        )
        for tenant in gate_tenants:
            target = self.registry.get(tenant)
            if retune and hasattr(target, "retune"):
                try:
                    target.retune(force=True)
                except Exception:
                    logger.warning(
                        "shard %s: tenant %r re-tune failed",
                        self.shard_id,
                        tenant,
                        exc_info=True,
                    )
                    raise
            if probes is not None and hasattr(target, "self_check"):
                try:
                    target.self_check(probes)
                except ConformanceError:
                    self.recorder.metrics.inc("serve/shard/rejoin_refused")
                    logger.warning(
                        "shard %s: tenant %r failed the rejoin health "
                        "gate; staying dead",
                        self.shard_id,
                        tenant,
                    )
                    raise
        with self._lock:
            self.state = STATE_SERVING
            self.rejoins += 1
        self.recorder.metrics.inc("serve/shard/rejoins")
        self.plane.flight.record("shard_rejoined", shard=self.shard_id)
        logger.info(
            "shard %s rejoined after health gate (%d tenants checked)",
            self.shard_id,
            len(gate_tenants),
        )
        return self

    # -- observability ---------------------------------------------------
    def health(self) -> dict:
        """JSON-safe health/identity payload for ``/healthz`` aggregation."""
        with self._lock:
            tenants_live = sorted(self._batchers)
            state = self.state
        stats = {
            tenant: batcher.stats.as_dict()
            for tenant, batcher in self._batchers.items()
        }
        return {
            "shard": self.shard_id,
            "state": state,
            "serving": state == STATE_SERVING,
            "deaths": self.deaths,
            "rejoins": self.rejoins,
            "registry": self.registry.stats(),
            "tenants_live": tenants_live,
            "batchers": stats,
        }

    def metrics_dict(self) -> dict:
        """The shard recorder's raw metrics payload (for aggregation)."""
        return self.recorder.metrics.as_dict()

    def __repr__(self) -> str:
        return (
            f"SessionShard(id={self.shard_id!r}, state={self.state!r}, "
            f"tenants={sorted(self._tenants)})"
        )
