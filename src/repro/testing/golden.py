"""Golden regression corpus: serialized inputs + expected outputs.

Each corpus entry pins one conformance case's evaluation inputs and the
logits every engine produced for them, keyed by the digest of the full
case configuration.  The corpus lives in ``tests/golden/`` (one
``<name>.json`` metadata sidecar + one ``<name>.npz`` array bundle per
entry) and is verified by the tier-1 suite and ``repro-cli
conformance``; ``repro-cli conformance --update-golden`` refreshes it
after an *intentional* numerical change.

Verification recomputes every engine fresh from the stored case
description and compares with an ``allclose`` policy at
:data:`GOLDEN_ATOL` — tight enough that any semantic regression trips
it, loose enough to survive BLAS kernel differences across machines.
A digest mismatch (the case description changed without a refresh) is
reported separately from an output mismatch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro
from repro import obs
from repro.errors import ConformanceError
from repro.testing.differential import (
    DifferentialRunner,
    TolerancePolicy,
    case_engine_spec,
)
from repro.testing.generators import (
    ConformanceCase,
    build_case,
    case_digest,
    iter_zoo_shaped_cases,
)

__all__ = [
    "GOLDEN_ATOL",
    "GoldenEntry",
    "GoldenReport",
    "default_golden_dir",
    "load_corpus",
    "refresh_corpus",
    "verify_corpus",
    "write_entry",
]

logger = obs.get_logger("testing")

#: Absolute tolerance for golden verification (see module docstring).
GOLDEN_ATOL = 1e-8
GOLDEN_RTOL = 1e-7


def default_golden_dir() -> Path:
    """``tests/golden`` next to the repository's test suite.

    Resolved relative to the package source checkout; falls back to the
    working directory for installed copies (the CLI accepts ``--golden``
    for anything unusual).
    """
    checkout = Path(__file__).resolve().parents[3] / "tests" / "golden"
    if checkout.is_dir():
        return checkout
    return Path("tests") / "golden"


@dataclass
class GoldenEntry:
    """One pinned case: configuration digest + inputs + expected logits."""

    case: ConformanceCase
    digest: str
    inputs: np.ndarray
    #: Expected logits per engine name.
    outputs: Dict[str, np.ndarray]
    #: Package version that wrote the entry (provenance only).
    version: str = ""

    @property
    def name(self) -> str:
        return self.case.name


def _paths(directory: Path, name: str):
    return directory / f"{name}.json", directory / f"{name}.npz"


def write_entry(
    directory: Path,
    case: ConformanceCase,
    inputs: np.ndarray,
    outputs: Dict[str, np.ndarray],
) -> GoldenEntry:
    """Serialize one corpus entry (metadata sidecar + array bundle)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta_path, array_path = _paths(directory, case.name)
    digest = case_digest(case)
    meta = {
        "case": case.as_dict(),
        "digest": digest,
        "engines": sorted(outputs),
        "version": repro.__version__,
    }
    meta_path.write_text(json.dumps(meta, indent=2, sort_keys=True))
    arrays = {"inputs": inputs}
    for engine, logits in outputs.items():
        arrays[f"logits_{engine}"] = logits
    np.savez_compressed(array_path, **arrays)
    return GoldenEntry(
        case=case,
        digest=digest,
        inputs=inputs,
        outputs=dict(outputs),
        version=repro.__version__,
    )


def load_entry(directory: Path, name: str) -> GoldenEntry:
    meta_path, array_path = _paths(Path(directory), name)
    if not meta_path.exists() or not array_path.exists():
        raise ConformanceError(
            f"golden entry {name!r} is incomplete under {directory} "
            f"(need both {meta_path.name} and {array_path.name})"
        )
    meta = json.loads(meta_path.read_text())
    case = ConformanceCase.from_dict(meta["case"])
    with np.load(array_path) as bundle:
        inputs = bundle["inputs"]
        outputs = {
            engine: bundle[f"logits_{engine}"]
            for engine in meta["engines"]
        }
    return GoldenEntry(
        case=case,
        digest=meta["digest"],
        inputs=inputs,
        outputs=outputs,
        version=meta.get("version", ""),
    )


def load_corpus(directory: Path) -> List[GoldenEntry]:
    """Every entry in the corpus directory, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    names = sorted(p.stem for p in directory.glob("*.json"))
    return [load_entry(directory, name) for name in names]


@dataclass
class GoldenReport:
    """Outcome of one corpus verification pass."""

    checked: int = 0
    #: Entries whose stored case digest no longer matches the case
    #: description (someone edited the case without refreshing).
    stale_digests: List[str] = field(default_factory=list)
    #: ``"entry/engine: detail"`` strings for output mismatches.
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.stale_digests and not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "checked": self.checked,
            "stale_digests": list(self.stale_digests),
            "mismatches": list(self.mismatches),
            "ok": self.ok,
        }


def verify_corpus(
    directory: Path,
    runner: Optional[DifferentialRunner] = None,
) -> GoldenReport:
    """Recompute every corpus entry and compare against the pinned logits."""
    runner = runner if runner is not None else DifferentialRunner(
        minimize=False, check_invariance=False
    )
    policy = TolerancePolicy(
        mode="allclose", atol=GOLDEN_ATOL, rtol=GOLDEN_RTOL
    )
    report = GoldenReport()
    for entry in load_corpus(directory):
        report.checked += 1
        obs.count("conformance/golden_checked")
        if case_digest(entry.case) != entry.digest:
            report.stale_digests.append(entry.name)
            continue
        built = build_case(entry.case)
        if not np.array_equal(built.inputs, entry.inputs):
            report.mismatches.append(
                f"{entry.name}: regenerated inputs differ from the pinned "
                "ones (generator drift — refresh the corpus deliberately)"
            )
            continue
        for engine, expected in sorted(entry.outputs.items()):
            actual = runner._execute(
                built, case_engine_spec(entry.case, engine), built.inputs
            )
            comparison = policy.compare(actual, expected)
            if not comparison.ok:
                obs.count("conformance/golden_mismatches")
                index = int(comparison.failing_indices[0])
                report.mismatches.append(
                    f"{entry.name}/{engine}: logits drifted from golden "
                    f"(first at sample {index}, max |diff| "
                    f"{comparison.max_abs_diff:.3e})"
                )
    if not report.ok:
        for line in report.stale_digests:
            logger.warning("golden digest stale: %s", line)
        for line in report.mismatches:
            logger.warning("golden mismatch: %s", line)
    return report


def refresh_corpus(
    directory: Path,
    cases: Optional[Sequence[ConformanceCase]] = None,
    runner: Optional[DifferentialRunner] = None,
) -> List[GoldenEntry]:
    """(Re)write the corpus from its canonical case list.

    Refuses to proceed if any case's engines currently *disagree* —
    golden entries must never pin a mismatch as expected behaviour.
    """
    runner = runner if runner is not None else DifferentialRunner(
        minimize=False, check_invariance=False
    )
    cases = (
        list(cases) if cases is not None else list(iter_zoo_shaped_cases())
    )
    entries: List[GoldenEntry] = []
    for case in cases:
        result = runner.run_case(case)
        if not result.ok:
            raise ConformanceError(
                f"refusing to refresh golden corpus: case {case.name!r} "
                "has live engine mismatches; fix those first"
            )
        built = build_case(case)
        entries.append(
            write_entry(directory, case, built.inputs, result.outputs)
        )
        logger.info("golden entry refreshed: %s", case.name)
    return entries
