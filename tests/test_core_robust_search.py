"""Tests for repro.core.robust_search and repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis import mcnemar_test, paired_disagreement, wilson_interval
from repro.core import RobustSearchConfig, SearchConfig, robustify_thresholds
from repro.core.robust_search import estimate_sei_output_noise_std
from repro.errors import ConfigurationError, QuantizationError


class TestRobustSearchConfig:
    def test_validation(self):
        with pytest.raises(QuantizationError):
            RobustSearchConfig(program_sigma=-1.0)
        with pytest.raises(QuantizationError):
            RobustSearchConfig(trials=0)
        with pytest.raises(QuantizationError):
            RobustSearchConfig(weight_bits=10, cell_bits=4)


class TestNoiseEstimate:
    def test_scales_linearly_with_sigma(self, rng):
        matrix = rng.normal(size=(20, 4))
        low = estimate_sei_output_noise_std(matrix, 5.0, 0.1)
        high = estimate_sei_output_noise_std(matrix, 5.0, 0.2)
        assert high == pytest.approx(2 * low)

    def test_scales_sqrt_with_activity(self, rng):
        matrix = rng.normal(size=(20, 4))
        one = estimate_sei_output_noise_std(matrix, 4.0, 0.1)
        four = estimate_sei_output_noise_std(matrix, 16.0, 0.1)
        assert four == pytest.approx(2 * one)

    def test_zero_matrix(self):
        assert estimate_sei_output_noise_std(np.zeros((3, 3)), 5.0, 0.1) == 0.0

    def test_negative_activity_rejected(self, rng):
        with pytest.raises(QuantizationError):
            estimate_sei_output_noise_std(rng.normal(size=(2, 2)), -1.0, 0.1)


class TestRobustify:
    def test_returns_thresholds_for_all_layers(
        self, tiny_quantized, tiny_dataset
    ):
        robust = robustify_thresholds(
            tiny_quantized,
            tiny_dataset["train_x"][:80],
            tiny_dataset["train_y"][:80],
            RobustSearchConfig(
                program_sigma=0.5,
                trials=2,
                search=SearchConfig(thres_max=0.3, search_step=0.05),
            ),
        )
        assert set(robust) == set(tiny_quantized.thresholds)

    def test_first_layer_threshold_preserved(
        self, tiny_quantized, tiny_dataset
    ):
        """The DAC-driven input layer keeps its Algorithm 1 threshold."""
        robust = robustify_thresholds(
            tiny_quantized,
            tiny_dataset["train_x"][:80],
            tiny_dataset["train_y"][:80],
            RobustSearchConfig(program_sigma=0.5, trials=2),
        )
        first = min(tiny_quantized.thresholds)
        assert robust[first] == tiny_quantized.thresholds[first]

    def test_zero_noise_reproduces_reasonable_choice(
        self, tiny_quantized, tiny_dataset
    ):
        robust = robustify_thresholds(
            tiny_quantized,
            tiny_dataset["train_x"][:80],
            tiny_dataset["train_y"][:80],
            RobustSearchConfig(
                program_sigma=0.0,
                trials=1,
                search=SearchConfig(thres_max=0.3, search_step=0.02),
            ),
        )
        for threshold in robust.values():
            assert 0.0 <= threshold <= 0.3

    def test_does_not_mutate_input(self, tiny_quantized, tiny_dataset):
        before = dict(tiny_quantized.thresholds)
        robustify_thresholds(
            tiny_quantized,
            tiny_dataset["train_x"][:40],
            tiny_dataset["train_y"][:40],
            RobustSearchConfig(program_sigma=0.3, trials=1),
        )
        assert tiny_quantized.thresholds == before


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(10, 100)
        assert low < 0.1 < high

    def test_narrower_with_more_samples(self):
        narrow = wilson_interval(100, 10000)
        wide = wilson_interval(1, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_bounds_clipped(self):
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 <= low <= high <= 1.0
        low, high = wilson_interval(50, 50)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(10, 5)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=1.5)


class TestMcNemar:
    def test_identical_classifiers(self):
        preds = np.array([0, 1, 2, 0])
        labels = np.array([0, 1, 2, 1])
        result = mcnemar_test(preds, preds, labels)
        assert result.p_value == 1.0
        assert not result.significant

    def test_clear_difference_significant(self):
        labels = np.zeros(40, dtype=int)
        good = np.zeros(40, dtype=int)  # always right
        bad = np.ones(40, dtype=int)  # always wrong
        result = mcnemar_test(good, bad, labels)
        assert result.only_a_correct == 40
        assert result.only_b_correct == 0
        assert result.significant

    def test_symmetric_disagreement_not_significant(self, rng):
        labels = np.zeros(20, dtype=int)
        a = labels.copy()
        b = labels.copy()
        a[:5] = 1  # a wrong on 5
        b[5:10] = 1  # b wrong on a disjoint 5
        result = mcnemar_test(a, b, labels)
        assert result.only_a_correct == result.only_b_correct == 5
        assert not result.significant

    def test_paired_disagreement_shape_check(self):
        with pytest.raises(Exception):
            paired_disagreement(
                np.zeros(3), np.zeros(4), np.zeros(3)
            )
