"""Architecture design-space report: Fig. 1 and Table 5 from the cost model.

Pure cost-model exploration (no training needed): the converter
bottleneck of the baseline, the savings of the 1-bit and SEI structures,
and sweeps over crossbar size and device precision.

Run:  python examples/design_space_report.py
"""

from repro.arch import (
    breakdown_rows,
    evaluate_all_designs,
    evaluate_design,
    format_table,
    reference_efficiency_rows,
    table5_rows,
)
from repro.hw import TechnologyModel


def main() -> None:
    # -- Fig. 1 -------------------------------------------------------------
    print("== Fig. 1: why RRAM-CNNs are converter-bound ==")
    baseline = evaluate_design("network1", "dac_adc")
    print(format_table(breakdown_rows(baseline.cost), floatfmt="{:.3f}"))
    print(
        f"ADC+DAC: {baseline.cost.energy_share('adc', 'dac'):.1%} of power, "
        f"{baseline.cost.area_share('adc', 'dac'):.1%} of area\n"
    )

    # -- Table 5 ------------------------------------------------------------
    print("== Table 5: the three structures ==")
    print(format_table(table5_rows()))
    print()
    print("== Reference platforms (§5.3) ==")
    print(format_table(reference_efficiency_rows()))

    # -- Crossbar size sweep ----------------------------------------------------
    print("\n== SEI energy saving vs maximum crossbar size ==")
    rows = []
    for size in (1024, 512, 256, 128, 64):
        tech = TechnologyModel().with_crossbar_size(size)
        designs = evaluate_all_designs("network1", tech)
        saving = designs["sei"].cost.energy_saving_vs(designs["dac_adc"].cost)
        rows.append(
            {
                "crossbar": size,
                "baseline uJ": designs["dac_adc"].energy_uj_per_picture,
                "SEI uJ": designs["sei"].energy_uj_per_picture,
                "saving": f"{saving:.2%}",
            }
        )
    print(format_table(rows))

    # -- Device precision sweep -----------------------------------------------------
    print("\n== SEI cost vs RRAM cell precision (network1) ==")
    rows = []
    for bits in (1, 2, 4, 8):
        tech = TechnologyModel(cell_bits=bits)
        ev = evaluate_design("network1", "sei", tech)
        rows.append(
            {
                "cell bits": bits,
                "cells/weight": 2 * (8 // bits),
                "crossbars": sum(m.crossbars for m in ev.mappings),
                "energy uJ": ev.energy_uj_per_picture,
                "area mm^2": ev.area_mm2,
            }
        )
    print(format_table(rows))


if __name__ == "__main__":
    main()
