"""Cross-engine conformance harness: correctness as infrastructure.

The paper's central claim (Table 3 / Table 5) is that the SEI structure
computes the *same function* as the ADC/DAC baseline at a fraction of
the power — so the reproduction's credibility rests on the ``fused``,
``reference`` and ``adc`` engines staying equivalent under every
configuration, split decision and noise model.  This subpackage turns
that equivalence into executable infrastructure:

* :mod:`repro.testing.generators` — deterministic, seeded case
  generators that enumerate/sample network shapes, quantization
  recipes, split decisions and engine configurations (and a
  hypothesis-composable strategy for property tests);
* :mod:`repro.testing.differential` — the differential runner: compile
  each case through every registered engine via
  :func:`repro.core.engines.compile_network`, execute through
  fixed-tile :class:`~repro.serve.session.InferenceSession` waves, and
  assert output equivalence under per-engine tolerance policies,
  reporting *minimized* counterexamples on failure;
* :mod:`repro.testing.golden` — a golden regression corpus (serialized
  inputs + expected outputs, digest-keyed) checked into
  ``tests/golden/`` with a refresh CLI
  (``repro-cli conformance --update-golden``);
* :mod:`repro.testing.faults` — fault-injection campaigns over the
  :mod:`repro.hw` / :mod:`repro.analysis.robustness` knobs (programming
  variation, read noise, stuck-at cells, sense-amp offsets), asserting
  monotone and bounded accuracy degradation, plus a deliberate-fault
  detection self-check for the differential oracle;
* :mod:`repro.testing.conformance` — the orchestrator behind
  ``repro-cli conformance`` and the nightly CI job.

Every future performance PR is provably safe against the reference
oracle: ``repro-cli conformance --quick`` is the smoke gate, the
nightly job sweeps the full campaign.  See ``docs/testing.md``.
"""

from repro.testing.generators import (
    ConformanceCase,
    BuiltCase,
    build_case,
    case_digest,
    case_strategy,
    generate_cases,
    iter_zoo_shaped_cases,
)
from repro.testing.differential import (
    ADC_MIN_AGREEMENT,
    ADC_MIN_AGREEMENT_DEEP,
    SEI_ATOL,
    SEI_RTOL,
    CaseResult,
    Counterexample,
    DifferentialRunner,
    TolerancePolicy,
    check_batch_invariance,
    default_policy,
)
from repro.testing.golden import (
    GoldenEntry,
    default_golden_dir,
    load_corpus,
    refresh_corpus,
    verify_corpus,
    write_entry,
)
from repro.testing.faults import (
    CampaignConfig,
    CampaignResult,
    FaultSpec,
    estimator_confidence_sweep,
    inject_and_detect,
    run_campaign,
)
from repro.testing.conformance import (
    ConformanceConfig,
    ConformanceReport,
    SkipExactResult,
    run_conformance,
    run_skip_exact,
)

__all__ = [
    "ADC_MIN_AGREEMENT",
    "ADC_MIN_AGREEMENT_DEEP",
    "SEI_ATOL",
    "SEI_RTOL",
    "ConformanceCase",
    "BuiltCase",
    "build_case",
    "case_digest",
    "case_strategy",
    "generate_cases",
    "iter_zoo_shaped_cases",
    "CaseResult",
    "Counterexample",
    "DifferentialRunner",
    "TolerancePolicy",
    "check_batch_invariance",
    "default_policy",
    "GoldenEntry",
    "default_golden_dir",
    "load_corpus",
    "refresh_corpus",
    "verify_corpus",
    "write_entry",
    "CampaignConfig",
    "CampaignResult",
    "FaultSpec",
    "estimator_confidence_sweep",
    "inject_and_detect",
    "run_campaign",
    "ConformanceConfig",
    "ConformanceReport",
    "SkipExactResult",
    "run_conformance",
    "run_skip_exact",
]
