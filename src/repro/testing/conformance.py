"""Conformance orchestration: the engine behind ``repro-cli conformance``.

One call — :func:`run_conformance` — strings the harness together:

1. generate (or accept) a batch of :class:`ConformanceCase`\\ s and run
   every one through the :class:`DifferentialRunner` against the oracle;
2. verify the golden regression corpus (``tests/golden/``), or refresh
   it when ``update_golden`` is set;
3. self-check the harness by injecting a deliberate stuck-at fault and
   demanding a minimized counterexample back;
4. optionally sweep the full fault-injection campaign (nightly CI).

Counterexample artifacts (``.json`` + ``.npz`` pairs) land in
``artifacts_dir`` for CI upload.  The report aggregates everything the
CLI prints and the CI job gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ConformanceError
from repro.testing.differential import (
    CaseResult,
    Counterexample,
    DifferentialRunner,
)
from repro.testing.faults import (
    CampaignConfig,
    CampaignResult,
    FaultSpec,
    inject_and_detect,
    run_campaign,
)
from repro.testing.generators import (
    DEFAULT_ENGINES,
    ConformanceCase,
    generate_cases,
    iter_zoo_shaped_cases,
)
from repro.testing.golden import (
    GoldenReport,
    default_golden_dir,
    refresh_corpus,
    verify_corpus,
)

__all__ = ["ConformanceConfig", "ConformanceReport", "run_conformance"]

logger = obs.get_logger("testing")


@dataclass(frozen=True)
class ConformanceConfig:
    """What one conformance run covers."""

    #: How many generated cases to sweep (the coverage grid first, then
    #: seeded samples).  The ``--quick`` smoke uses the default 20.
    cases: int = 20
    seed: int = 0
    engines: Tuple[str, ...] = DEFAULT_ENGINES
    #: Golden corpus directory; ``None`` resolves ``tests/golden``.
    golden_dir: Optional[Path] = None
    #: Rewrite the corpus from the canonical zoo-shaped cases instead of
    #: verifying it (the ``--update-golden`` flow).
    update_golden: bool = False
    #: Inject a deliberate stuck-at fault and require its detection (the
    #: harness self-check; acceptance gate for the smoke run).
    self_check: bool = True
    #: Where counterexample artifacts are written (``None`` disables).
    artifacts_dir: Optional[Path] = None
    #: Run the full degradation campaign (nightly; slow).
    campaign: bool = False
    campaign_config: Optional[CampaignConfig] = None
    #: Explicit case list overriding the generator (for reruns).
    explicit_cases: Optional[Sequence[ConformanceCase]] = None


@dataclass
class ConformanceReport:
    """Everything a conformance run found."""

    config: ConformanceConfig
    case_results: List[CaseResult] = field(default_factory=list)
    golden: Optional[GoldenReport] = None
    golden_refreshed: int = 0
    #: The minimized counterexample from the deliberate-fault self-check
    #: (its *presence* is the pass condition).
    injected: Optional[Counterexample] = None
    self_check_error: Optional[str] = None
    campaigns: List[CampaignResult] = field(default_factory=list)
    artifacts: List[Path] = field(default_factory=list)

    @property
    def cases_run(self) -> int:
        return len(self.case_results)

    @property
    def mismatches(self) -> List[Counterexample]:
        return [
            ce for result in self.case_results
            for ce in result.counterexamples
        ]

    @property
    def invariance_violations(self) -> List[str]:
        return [
            f"{result.case.name}: {result.batch_invariance_violation}"
            for result in self.case_results
            if result.batch_invariance_violation
        ]

    @property
    def campaign_violations(self) -> List[str]:
        return [
            f"{campaign.case.name}: {line}"
            for campaign in self.campaigns
            for line in campaign.violations()
        ]

    @property
    def ok(self) -> bool:
        if self.mismatches or self.invariance_violations:
            return False
        if self.golden is not None and not self.golden.ok:
            return False
        if self.config.self_check and self.self_check_error is not None:
            return False
        if self.campaign_violations:
            return False
        return True

    def summary_lines(self) -> List[str]:
        """Human-readable run summary (the CLI prints these)."""
        lines = [
            f"differential: {self.cases_run} cases x "
            f"{len(self.config.engines)} engines, "
            f"{len(self.mismatches)} mismatch(es), "
            f"{len(self.invariance_violations)} batch-invariance "
            "violation(s)"
        ]
        for ce in self.mismatches:
            lines.append(f"  MISMATCH {ce.describe()}")
        for line in self.invariance_violations:
            lines.append(f"  INVARIANCE {line}")
        if self.golden_refreshed:
            lines.append(f"golden: refreshed {self.golden_refreshed} entries")
        elif self.golden is not None:
            lines.append(
                f"golden: {self.golden.checked} entries checked, "
                f"{len(self.golden.stale_digests)} stale digest(s), "
                f"{len(self.golden.mismatches)} mismatch(es)"
            )
            for name in self.golden.stale_digests:
                lines.append(f"  STALE {name}")
            for line in self.golden.mismatches:
                lines.append(f"  DRIFT {line}")
        if self.config.self_check:
            if self.injected is not None:
                lines.append(
                    "self-check: injected stuck-at fault detected and "
                    f"minimized ({self.injected.describe()})"
                )
            else:
                lines.append(
                    f"self-check: FAILED — {self.self_check_error}"
                )
        for campaign in self.campaigns:
            status = "ok" if campaign.ok else "VIOLATED"
            lines.append(
                f"campaign {campaign.case.name}: "
                f"{len(campaign.curves)} sweep(s), {status}"
            )
        for line in self.campaign_violations:
            lines.append(f"  CAMPAIGN {line}")
        if self.artifacts:
            lines.append(
                f"artifacts: {len(self.artifacts)} file(s) under "
                f"{self.artifacts[0].parent}"
            )
        lines.append("conformance: " + ("PASS" if self.ok else "FAIL"))
        return lines

    def as_dict(self) -> Dict[str, object]:
        return {
            "cases_run": self.cases_run,
            "engines": list(self.config.engines),
            "mismatches": [ce.as_dict() for ce in self.mismatches],
            "invariance_violations": list(self.invariance_violations),
            "golden": self.golden.as_dict() if self.golden else None,
            "golden_refreshed": self.golden_refreshed,
            "self_check": {
                "enabled": self.config.self_check,
                "detected": self.injected is not None,
                "error": self.self_check_error,
                "counterexample": (
                    self.injected.as_dict() if self.injected else None
                ),
            },
            "campaigns": [c.as_dict() for c in self.campaigns],
            "artifacts": [str(p) for p in self.artifacts],
            "ok": self.ok,
        }


def _save_counterexamples(
    report: ConformanceReport, directory: Path
) -> None:
    directory = Path(directory)
    examples = list(report.mismatches)
    if report.injected is not None:
        examples.append(report.injected)
    for ce in examples:
        report.artifacts.extend(ce.save(directory))


def _save_campaigns(report: ConformanceReport, directory: Path) -> None:
    """One JSON artifact per campaign: curves, violations and the
    device-array snapshot digests pinning the aged cell state."""
    import json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for campaign in report.campaigns:
        path = directory / f"campaign_{campaign.case.name}.json"
        path.write_text(json.dumps(campaign.as_dict(), indent=2))
        report.artifacts.append(path)


def run_conformance(
    config: Optional[ConformanceConfig] = None,
) -> ConformanceReport:
    """Run the full conformance flow described in the module docstring."""
    config = config if config is not None else ConformanceConfig()
    runner = DifferentialRunner()
    report = ConformanceReport(config=config)

    if config.explicit_cases is not None:
        cases = list(config.explicit_cases)
    else:
        cases = generate_cases(
            count=config.cases, seed=config.seed, engines=config.engines
        )

    with obs.span("conformance.full", cases=len(cases)):
        for result in runner.run(cases):
            report.case_results.append(result)
            if not result.ok:
                logger.warning(
                    "case %s failed conformance", result.case.name
                )

        golden_dir = (
            Path(config.golden_dir)
            if config.golden_dir is not None
            else default_golden_dir()
        )
        if config.update_golden:
            entries = refresh_corpus(golden_dir, runner=DifferentialRunner(
                minimize=False, check_invariance=False
            ))
            report.golden_refreshed = len(entries)
        else:
            report.golden = verify_corpus(golden_dir)

        if config.self_check:
            probe = next(iter_zoo_shaped_cases(engines=("fused",)))
            try:
                report.injected = inject_and_detect(
                    probe, FaultSpec("stuck_low", 0.08), runner=runner
                )
            except ConformanceError as exc:
                report.self_check_error = str(exc)

        if config.campaign:
            campaign_cases = [
                case for case in iter_zoo_shaped_cases()
                if case.deterministic
            ]
            for case in campaign_cases:
                report.campaigns.append(
                    run_campaign(case, config.campaign_config)
                )

    if config.artifacts_dir is not None and (
        report.mismatches or report.injected is not None
    ):
        _save_counterexamples(report, config.artifacts_dir)
    if config.artifacts_dir is not None and report.campaigns:
        _save_campaigns(report, config.artifacts_dir)

    obs.set_gauge("conformance/ok", 1 if report.ok else 0)
    return report
