"""Model zoo: trained and quantized Table 2 networks, cached on disk.

Training the three CNNs and running Algorithm 1 takes minutes; every
benchmark and example needs the same artefacts.  This module trains each
network once, stores the weights (and the quantization thresholds) under
``.cache/models/`` and returns cached copies afterwards, so experiment
scripts stay fast and mutually consistent.

Hyper-parameters per network live in :data:`ZOO_RECIPES`.  The
``activation_l1`` penalty reproduces the long-tail activation distribution
(paper Table 1) on the synthetic dataset; see DESIGN.md.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.configs import build_network, get_network_spec
from repro.errors import ReproError
from repro.core.threshold_search import SearchConfig, SearchResult, search_thresholds
from repro.data import MnistLike, default_cache_dir, load_mnist_like
from repro.nn import Adam, TrainConfig, Trainer, evaluate_accuracy
from repro.nn.network import Sequential

logger = obs.get_logger("zoo")

__all__ = [
    "ZooRecipe",
    "ZOO_RECIPES",
    "get_dataset",
    "get_trained_network",
    "get_quantized",
    "get_deep_network",
    "build_deep_network",
    "QuantizedModel",
    "recipe_digest",
    "quantized_cache_paths",
    "warm_model",
    "clear_warm_models",
]

#: Default dataset sizes.  The paper uses MNIST's 60k/10k; we default to
#: 8k/1.5k so the full pipeline runs in minutes (the sizes are arguments
#: everywhere for users who want to scale up).
DEFAULT_TRAIN = 8000
DEFAULT_TEST = 1500
DEFAULT_SEED = 7
#: Training-set subset used for threshold search (speed/robustness
#: trade-off; the paper uses the full training set).
SEARCH_SUBSET = 2500


@dataclass(frozen=True)
class ZooRecipe:
    """Training hyper-parameters for one network."""

    epochs: int
    learning_rate: float = 2e-3
    activation_l1: float = 0.02
    batch_size: int = 64
    seed: int = 1


ZOO_RECIPES: Dict[str, ZooRecipe] = {
    # network1 has enough kernels that binarization is robust with a very
    # mild sparsity penalty; the larger penalty used for the small
    # networks would make conv2's inputs so sparse that the §4.3 split
    # votes become fragile.
    "network1": ZooRecipe(epochs=6, activation_l1=0.003),
    "network2": ZooRecipe(epochs=10, activation_l1=0.02),
    "network3": ZooRecipe(epochs=14, activation_l1=0.02),
}


@dataclass
class QuantizedModel:
    """A quantized network bundle: re-scaled weights + thresholds."""

    name: str
    search: SearchResult
    float_test_error: float
    quantized_test_error: float
    #: Recipe digest the artefact was cached under (see :func:`recipe_digest`).
    digest: str = ""


def _models_dir(cache_dir: Optional[Path]) -> Path:
    base = cache_dir if cache_dir is not None else default_cache_dir()
    return base / "models"


def recipe_digest(
    name: str, search_config: Optional[SearchConfig] = None
) -> str:
    """Digest of everything that shapes a quantized artefact.

    Covers the architecture spec, the training recipe and the full
    Algorithm 1 configuration (threshold grid, criterion, refinement,
    engine) — the same :func:`repro.obs.config_digest` the run manifest
    uses.  Two differently-configured quantizations therefore never
    share a cache path or a warm-registry slot.
    """
    config = search_config if search_config is not None else SearchConfig()
    return obs.config_digest(
        {
            "network": name,
            "spec": get_network_spec(name),
            "recipe": ZOO_RECIPES[name],
            "search": config,
        }
    )


def quantized_cache_paths(
    name: str,
    search_config: Optional[SearchConfig] = None,
    cache_dir: Optional[Path] = None,
) -> tuple:
    """(weights ``.npz``, sidecar ``.json``) cache paths for one recipe."""
    digest = recipe_digest(name, search_config)
    base = _models_dir(cache_dir) / f"{name}_quantized_{digest}"
    return base.with_suffix(".npz"), base.with_suffix(".json")


def _load_cached_network(network: Sequential, path: Path) -> bool:
    """Load cached weights into ``network``; False on any corrupt artifact.

    A truncated download, an interrupted save (pre-atomic-write caches)
    or a stale architecture must behave exactly like a cache miss — the
    caller retrains and overwrites — rather than crash the pipeline with
    a :class:`zipfile.BadZipFile`.
    """
    if not path.exists():
        return False
    try:
        network.load(path)
        return True
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError,
            ReproError) as exc:
        obs.count("zoo/cache/corrupt")
        logger.warning(
            "discarding corrupt model cache %s: %s", path.name, exc
        )
        return False


def _load_cached_meta(meta_path: Path) -> Optional[dict]:
    """Parse the quantization sidecar JSON; None if missing or corrupt."""
    if not meta_path.exists():
        return None
    try:
        meta = json.loads(meta_path.read_text())
        required = (
            "thresholds", "divisors", "layer_accuracy", "quantized_test_error",
        )
        if not all(key in meta for key in required):
            raise KeyError(f"missing one of {required}")
        return meta
    except (OSError, ValueError, KeyError) as exc:
        obs.count("zoo/cache/corrupt")
        logger.warning(
            "discarding corrupt model cache %s: %s", meta_path.name, exc
        )
        return None


def get_dataset(
    num_train: int = DEFAULT_TRAIN,
    num_test: int = DEFAULT_TEST,
    seed: int = DEFAULT_SEED,
    cache_dir: Optional[Path] = None,
) -> MnistLike:
    """The shared synthetic-MNIST dataset (cached)."""
    data_dir = None if cache_dir is None else cache_dir / "data"
    return load_mnist_like(num_train, num_test, seed=seed, cache_dir=data_dir)


def get_trained_network(
    name: str,
    dataset: Optional[MnistLike] = None,
    cache_dir: Optional[Path] = None,
    force_retrain: bool = False,
) -> Sequential:
    """Train (or load from cache) one of the Table 2 networks."""
    spec = get_network_spec(name)
    recipe = ZOO_RECIPES[name]
    path = _models_dir(cache_dir) / f"{name}_trained.npz"

    network = build_network(spec, seed=recipe.seed)
    if not force_retrain and _load_cached_network(network, path):
        obs.count("zoo/cache/hits")
        return network
    obs.count("zoo/cache/misses")
    logger.info("training %s (%d epochs)", name, recipe.epochs)

    with obs.span("zoo.train", network=name):
        dataset = (
            dataset if dataset is not None else get_dataset(cache_dir=cache_dir)
        )
        trainer = Trainer(
            network,
            Adam(recipe.learning_rate),
            TrainConfig(
                epochs=recipe.epochs,
                batch_size=recipe.batch_size,
                seed=recipe.seed,
                activation_l1=recipe.activation_l1,
            ),
        )
        trainer.fit(dataset.train.images, dataset.train.labels)
        network.save(path)
    return network


def get_quantized(
    name: str,
    dataset: Optional[MnistLike] = None,
    search_config: Optional[SearchConfig] = None,
    cache_dir: Optional[Path] = None,
    force: bool = False,
) -> QuantizedModel:
    """Trained + Algorithm-1-quantized bundle for one network (cached).

    The cache path carries the full recipe digest (architecture,
    training recipe, search configuration), so differently-configured
    quantizations of the same network never collide on disk.
    """
    spec = get_network_spec(name)
    digest = recipe_digest(name, search_config)
    path, meta_path = quantized_cache_paths(name, search_config, cache_dir)

    dataset = dataset if dataset is not None else get_dataset(cache_dir=cache_dir)
    network = get_trained_network(name, dataset, cache_dir=cache_dir)
    float_error = 1.0 - evaluate_accuracy(
        network, dataset.test.images, dataset.test.labels
    )

    if not force:
        rescaled = build_network(spec, seed=ZOO_RECIPES[name].seed)
        meta = _load_cached_meta(meta_path)
        if meta is not None and _load_cached_network(rescaled, path):
            obs.count("zoo/cache/hits")
            search = SearchResult(
                network=rescaled,
                thresholds={int(k): v for k, v in meta["thresholds"].items()},
                divisors={int(k): v for k, v in meta["divisors"].items()},
                layer_accuracy={
                    int(k): v for k, v in meta["layer_accuracy"].items()
                },
            )
            quant_error = meta["quantized_test_error"]
            return QuantizedModel(
                name, search, float_error, quant_error, digest=digest
            )

    obs.count("zoo/cache/misses")
    logger.info("running Algorithm 1 threshold search for %s", name)
    config = search_config if search_config is not None else SearchConfig()
    subset = min(SEARCH_SUBSET, len(dataset.train))
    with obs.span("zoo.quantize", network=name, samples=subset):
        search = search_thresholds(
            network,
            dataset.train.images[:subset],
            dataset.train.labels[:subset],
            config,
        )
        quant_error = search.binarized().error_rate(
            dataset.test.images, dataset.test.labels
        )

    search.network.save(path)
    tmp_meta = meta_path.with_name(meta_path.name + ".tmp")
    tmp_meta.write_text(
        json.dumps(
            {
                "thresholds": search.thresholds,
                "divisors": search.divisors,
                "layer_accuracy": search.layer_accuracy,
                "quantized_test_error": quant_error,
                "float_test_error": float_error,
            }
        )
    )
    tmp_meta.replace(meta_path)
    return QuantizedModel(name, search, float_error, quant_error, digest=digest)


#: In-process warm model registry: recipe digest -> quantized bundle.
#: Serving sessions consult this before touching the on-disk cache, so a
#: process that compiles the same recipe twice pays zero load cost the
#: second time.
_WARM_MODELS: Dict[tuple, QuantizedModel] = {}


def warm_model(
    name: str,
    dataset: Optional[MnistLike] = None,
    search_config: Optional[SearchConfig] = None,
    cache_dir: Optional[Path] = None,
    force: bool = False,
) -> QuantizedModel:
    """Quantized bundle from the warm in-process registry (fall back to disk).

    Keyed by the recipe digest (plus the cache location and, for custom
    datasets, the dataset sizes), so differently-configured models never
    alias.  ``force=True`` bypasses and refreshes the warm entry.
    """
    key = (
        recipe_digest(name, search_config),
        None if cache_dir is None else str(cache_dir),
        None if dataset is None else (len(dataset.train), len(dataset.test)),
    )
    if not force:
        model = _WARM_MODELS.get(key)
        if model is not None:
            obs.count("zoo/warm/hits")
            return model
    obs.count("zoo/warm/misses")
    model = get_quantized(
        name,
        dataset=dataset,
        search_config=search_config,
        cache_dir=cache_dir,
        force=force,
    )
    _WARM_MODELS[key] = model
    return model


def clear_warm_models() -> None:
    """Drop every warm-registry entry (tests, memory pressure)."""
    _WARM_MODELS.clear()


def build_deep_network(seed: int = 5) -> Sequential:
    """A 5-weighted-layer CNN (3 conv + 2 FC) beyond the Table 2 shape.

    Exercises the deeper-network claims of §2.3/§2.4: Algorithm 1 runs
    over four intermediate layers and the generic mapper costs the
    result.
    """
    from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU

    rng = np.random.default_rng(seed)
    layers = [
        Conv2D(1, 8, 3, use_bias=False, rng=rng),  # 28 -> 26
        ReLU(),
        Conv2D(8, 8, 3, use_bias=False, rng=rng),  # 26 -> 24
        ReLU(),
        MaxPool2D(2),  # 24 -> 12
        Conv2D(8, 16, 3, use_bias=False, rng=rng),  # 12 -> 10
        ReLU(),
        MaxPool2D(2),  # 10 -> 5
        Flatten(),  # 400
        Dense(400, 64, rng=rng),
        ReLU(),
        Dense(64, 10, rng=rng),
    ]
    return Sequential(layers, (1, 28, 28))


def get_deep_network(
    dataset: Optional[MnistLike] = None,
    cache_dir: Optional[Path] = None,
    force_retrain: bool = False,
) -> Sequential:
    """Trained deep demo network (cached like the Table 2 networks)."""
    path = _models_dir(cache_dir) / "deep_demo.npz"
    network = build_deep_network()
    if not force_retrain and _load_cached_network(network, path):
        obs.count("zoo/cache/hits")
        return network
    obs.count("zoo/cache/misses")
    logger.info("training deep demo network")

    with obs.span("zoo.train", network="deep_demo"):
        dataset = (
            dataset if dataset is not None else get_dataset(cache_dir=cache_dir)
        )
        trainer = Trainer(
            network,
            Adam(2e-3),
            TrainConfig(epochs=5, batch_size=64, seed=0, activation_l1=0.01),
        )
        trainer.fit(dataset.train.images, dataset.train.labels)
        network.save(path)
    return network
