"""repro: reproduction of "Switched by Input: Power Efficient Structure
for RRAM-based Convolutional Neural Network" (Xia et al., DAC 2016).

The package is organised as:

* :mod:`repro.nn` — a from-scratch numpy CNN substrate (training +
  inference);
* :mod:`repro.data` — a procedural MNIST-like digit dataset (offline
  substitute for MNIST);
* :mod:`repro.hw` — behavioural RRAM device / crossbar / peripheral
  models and the technology cost constants;
* :mod:`repro.core` — the paper's contribution: 1-bit quantization
  (Algorithm 1), the SEI structure, dynamic thresholds, ADC-less matrix
  splitting and homogenization;
* :mod:`repro.arch` — the architecture mapper and the Fig. 1 / Table 5
  cost model;
* :mod:`repro.analysis` — distribution and metric helpers;
* :mod:`repro.configs` — the Table 2 network definitions;
* :mod:`repro.zoo` — cached trained/quantized models for experiments.

Quickstart::

    from repro.zoo import get_dataset, get_quantized
    from repro.arch import evaluate_all_designs

    dataset = get_dataset()
    model = get_quantized("network1")       # trains + runs Algorithm 1
    print(model.float_test_error, model.quantized_test_error)
    designs = evaluate_all_designs("network1")
    print(designs["sei"].cost.energy_saving_vs(designs["dac_adc"].cost))
"""

from repro import obs  # first: the rest of the package may instrument itself
from repro import analysis, arch, configs, core, data, hw, nn
from repro.errors import (
    ConfigurationError,
    MappingError,
    QuantizationError,
    ReproError,
    ShapeError,
    TrainingError,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "hw",
    "core",
    "arch",
    "analysis",
    "configs",
    "obs",
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "MappingError",
    "QuantizationError",
    "TrainingError",
    "__version__",
]
