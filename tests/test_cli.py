"""Tests for the command-line interface.

Cost-model commands run as-is (instant).  The ``infer``/``serve``/
``conformance`` commands are exercised end-to-end against the tiny
session-scoped fixtures by monkeypatching the zoo loaders — the full
CLI path runs (parser -> handler -> session -> engines -> output)
without minutes of training.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["fig1"],
            ["table2"],
            ["table5"],
            ["quantize", "network1"],
            ["split", "network2", "--crossbar", "256"],
            ["tradeoff", "network3", "--structure", "dac_adc"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quantize", "network9"])

    def test_split_defaults(self):
        args = build_parser().parse_args(["split", "network1"])
        assert args.crossbar == 512
        assert args.method == "homogenize"
        assert not args.dynamic

    def test_session_commands_parse(self):
        parser = build_parser()
        infer = parser.parse_args(
            ["infer", "network2", "--engine", "reference", "--count", "4"]
        )
        assert infer.engine == "reference"
        assert infer.count == 4
        serve = parser.parse_args(
            ["serve", "network1", "--requests", "8", "--workers", "1"]
        )
        assert serve.requests == 8
        assert serve.workers == 1

    def test_explore_parses(self):
        args = build_parser().parse_args(
            ["explore", "--quick", "--workers", "2", "--out", "store",
             "--report", "report.md", "--json", "report.json"]
        )
        assert args.study == "sei_vs_adc"
        assert args.quick
        assert args.workers == 2
        assert args.out == "store"
        assert args.report == "report.md"
        assert args.json_out == "report.json"
        listing = build_parser().parse_args(["explore", "--list"])
        assert listing.list_studies
        named = build_parser().parse_args(
            ["explore", "synthetic_smoke", "--limit", "4", "--samples", "32",
             "--timeout", "5", "--seed", "3"]
        )
        assert named.study == "synthetic_smoke"
        assert named.limit == 4
        assert named.samples == 32
        assert named.timeout == 5.0
        assert named.seed == 3

    def test_help_epilog_covers_every_command(self):
        """The --help epilog and the handler table cannot drift apart."""
        from repro.cli import _COMMAND_SUMMARIES, _HANDLERS

        assert set(_COMMAND_SUMMARIES) == set(_HANDLERS)
        epilog = build_parser().epilog
        for command in _HANDLERS:
            assert command in epilog, command

    def test_readme_cli_table_covers_every_command(self):
        """README's CLI table lists every subcommand (drift guard)."""
        from pathlib import Path

        from repro.cli import _HANDLERS

        readme = (
            Path(__file__).resolve().parent.parent / "README.md"
        ).read_text()
        for command in _HANDLERS:
            assert f"`{command}`" in readme, (
                f"README CLI table is missing the {command!r} subcommand"
            )

    def test_conformance_parses(self):
        args = build_parser().parse_args(
            ["conformance", "--quick", "--artifacts", "out", "--seed", "7"]
        )
        assert args.quick
        assert args.artifacts == "out"
        assert args.seed == 7
        assert not args.update_golden
        assert args.estimator == "off"
        full = build_parser().parse_args(
            ["conformance", "--cases", "5", "--engines", "fused,reference",
             "--campaign", "--update-golden", "--estimator", "exact"]
        )
        assert full.cases == 5
        assert full.engines == "fused,reference"
        assert full.campaign
        assert full.update_golden
        assert full.estimator == "exact"

    def test_session_estimator_flags_parse(self):
        args = build_parser().parse_args(["infer", "network2"])
        assert args.estimator == "off" and args.confidence == 1.0
        exact = build_parser().parse_args(
            ["infer", "network2", "--estimator", "exact"]
        )
        assert exact.estimator == "exact"
        threshold = build_parser().parse_args(
            ["serve", "network1", "--estimator", "threshold",
             "--confidence", "0.8"]
        )
        assert threshold.estimator == "threshold"
        assert threshold.confidence == 0.8
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["infer", "network2", "--estimator", "sometimes"]
            )


class TestCostCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "ADC+DAC" in out
        assert "conv1" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "300 x 64" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "SEI" in out
        assert "FPGA" in out

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "network1", "--structure", "sei"]) == 0
        out = capsys.readouterr().out
        assert "replication" in out
        assert "line buffer" in out


@pytest.fixture
def tiny_zoo(monkeypatch, tiny_dataset, tiny_quantized):
    """Point the zoo at the session-scoped tiny artefacts.

    ``warm_model``/``get_dataset`` are resolved through the module at
    call time everywhere (CLI handlers, ``compile_session``), so
    patching the attributes reroutes the whole stack without touching
    the model cache.  The warm-session registry is cleared around each
    test so a cached real session can never shadow the stub.
    """
    from repro import zoo
    from repro.serve.session import clear_sessions

    model = zoo.QuantizedModel(
        name="network2",
        search=tiny_quantized,
        float_test_error=0.0,
        quantized_test_error=0.0,
        digest="tiny-cli-fixture",
    )
    dataset = SimpleNamespace(
        train=SimpleNamespace(
            images=tiny_dataset["train_x"], labels=tiny_dataset["train_y"]
        ),
        test=SimpleNamespace(
            images=tiny_dataset["test_x"], labels=tiny_dataset["test_y"]
        ),
    )
    monkeypatch.setattr(zoo, "warm_model", lambda name, **kw: model)
    monkeypatch.setattr(zoo, "get_dataset", lambda **kw: dataset)
    clear_sessions()
    yield dataset
    clear_sessions()


class TestSessionCommands:
    """infer/serve/conformance end-to-end over the tiny fixtures."""

    def test_infer_end_to_end_with_trace(self, tiny_zoo, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "infer", "network2", "--count", "4", "--tile", "2",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        payload = json.loads(trace.read_text())
        assert {"manifest", "metrics", "trace"} <= set(payload)
        assert payload["trace"], "trace export carries no spans"
        metrics_only = json.loads(metrics.read_text())
        assert "trace" not in metrics_only
        assert "manifest" in metrics_only

    def test_infer_engines_agree_on_predictions(self, tiny_zoo, capsys):
        outputs = {}
        for engine in ("fused", "reference"):
            assert main([
                "infer", "network2", "--engine", engine,
                "--count", "6", "--tile", "3",
            ]) == 0
            outputs[engine] = capsys.readouterr().out
        fused = [l for l in outputs["fused"].splitlines() if "predictions" in l]
        ref = [l for l in outputs["reference"].splitlines() if "predictions" in l]
        assert fused and fused == ref

    def test_infer_estimator_exact_matches_off(self, tiny_zoo, capsys):
        outputs = {}
        for estimator in ("off", "exact"):
            assert main([
                "infer", "network2", "--engine", "fused",
                "--estimator", estimator, "--count", "6", "--tile", "3",
            ]) == 0
            outputs[estimator] = [
                l for l in capsys.readouterr().out.splitlines()
                if "predictions" in l
            ]
        assert outputs["off"] and outputs["off"] == outputs["exact"]

    def test_serve_end_to_end_with_metrics(self, tiny_zoo, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main([
            "serve", "network2", "--requests", "8", "--clients", "2",
            "--workers", "1", "--batch-size", "4", "--tile", "2",
            "--metrics-out", str(metrics),
        ]) == 0
        payload = json.loads(metrics.read_text())
        assert "trace" not in payload
        assert {"manifest", "metrics"} <= set(payload)

    def test_conformance_cli_fast(self, tmp_path):
        """Single-case differential sweep + empty golden dir: exit 0."""
        report_path = tmp_path / "report.json"
        assert main([
            "conformance", "--cases", "1", "--engines", "fused,reference",
            "--no-self-check", "--golden", str(tmp_path / "golden"),
            "--report", str(report_path),
        ]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["cases_run"] == 1
        assert payload["mismatches"] == []


class TestExploreCommand:
    """The explore command end-to-end over the synthetic study."""

    def test_explore_synthetic_end_to_end(self, tmp_path):
        store = tmp_path / "store"
        json_path = tmp_path / "report.json"
        md_path = tmp_path / "report.md"
        assert main([
            "explore", "synthetic_smoke", "--out", str(store),
            "--json", str(json_path), "--report", str(md_path),
        ]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["counts"]["completed"] == 15
        assert payload["pareto"]["front"]
        assert md_path.read_text().startswith("# Study report")

        # Resume through the CLI: byte-identical report artifact.
        first = json_path.read_text()
        assert main([
            "explore", "synthetic_smoke", "--out", str(store),
            "--json", str(json_path),
        ]) == 0
        assert json_path.read_text() == first

    def test_explore_list(self, capsys):
        assert main(["explore", "--list"]) == 0
        out = capsys.readouterr().out
        assert "sei_vs_adc" in out
        assert "synthetic_smoke" in out

    def test_explore_unknown_study(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown study"):
            main(["explore", "nope"])

    def test_explore_quick_limits_unknown_variant(self, tmp_path):
        # synthetic_smoke has no *_quick variant: --quick caps candidates.
        json_path = tmp_path / "report.json"
        assert main([
            "explore", "synthetic_smoke", "--quick",
            "--out", str(tmp_path / "s"), "--json", str(json_path),
        ]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["counts"]["completed"] == 8


class TestModelCommands:
    """Exercised only when the repo's model cache is already populated
    (benchmarks build it); otherwise they would retrain for minutes."""

    @pytest.fixture(autouse=True)
    def _require_cache(self):
        from repro.data import default_cache_dir

        if not (default_cache_dir() / "models" / "network2_quantized.npz").exists():
            pytest.skip("model cache not populated")

    def test_quantize_command(self, capsys):
        assert main(["quantize", "network2"]) == 0
        out = capsys.readouterr().out
        assert "quantized test error" in out
        assert "layer 0" in out


class TestTelemetryCli:
    """serve --listen, top, and --metrics-flush-interval."""

    def test_serve_listen_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "network2", "--listen", "127.0.0.1:9100",
            "--port-file", "port.txt", "--duration", "5",
            "--slo-window", "30", "--slo-p99-ms", "50",
            "--slo-error-rate", "0.01", "--slo-joules-per-request", "1e-6",
        ])
        assert args.listen == "127.0.0.1:9100"
        assert args.port_file == "port.txt"
        assert args.duration == 5.0
        assert args.slo_window == 30.0
        assert args.slo_p99_ms == 50.0
        assert args.slo_error_rate == 0.01
        assert args.slo_joules_per_request == 1e-6
        plain = build_parser().parse_args(["serve", "network2"])
        assert plain.listen is None and plain.duration == 0.0

    def test_top_flags_parse(self):
        args = build_parser().parse_args([
            "top", "--url", "http://127.0.0.1:9100",
            "--interval", "0.5", "--frames", "3",
        ])
        assert args.url == "http://127.0.0.1:9100"
        assert args.interval == 0.5
        assert args.frames == 3
        watch = build_parser().parse_args(["top", "--watch"])
        assert watch.watch and watch.url is None

    def test_flush_interval_parses_on_any_command(self):
        args = build_parser().parse_args([
            "table5", "--metrics-out", "m.json",
            "--metrics-flush-interval", "0.5",
        ])
        assert args.metrics_flush_interval == 0.5

    def test_top_requires_url_or_watch(self):
        assert main(["top", "--frames", "1"]) == 2

    def test_top_watch_renders_frames(self, capsys):
        assert main([
            "top", "--watch", "--frames", "2", "--interval", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("repro-top") == 2
        assert "latency" in out and "flight" in out

    def test_top_watch_renders_skip_gauges(self, capsys):
        """The dashboard frame carries the estimator skip-rate gauges,
        and the synthetic --watch workload drives them live (percentages,
        not placeholders) once a window has traffic."""
        assert main([
            "top", "--watch", "--frames", "3", "--interval", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        skip_lines = [
            line for line in out.splitlines() if line.startswith("  skip")
        ]
        assert len(skip_lines) == 3
        assert all(
            "rows skipped" in line and "estimator hits" in line
            for line in skip_lines
        )
        assert any("%" in line for line in skip_lines)

    def test_top_polls_a_live_server(self, capsys):
        """top --url renders frames scraped from a real exposition server."""
        from repro import obs
        from repro.obs import TelemetryPlane

        plane = TelemetryPlane().install()
        plane.recorder.metrics.inc("serve/requests", 3)
        server = plane.serve()
        try:
            assert main([
                "top", "--url", server.url, "--frames", "1",
            ]) == 0
        finally:
            server.stop()
            obs.disable()
        assert "repro-top" in capsys.readouterr().out

    def test_serve_listen_end_to_end(self, tiny_zoo, tmp_path, capsys):
        port_file = tmp_path / "port.txt"
        assert main([
            "serve", "network2", "--requests", "8", "--clients", "2",
            "--workers", "1", "--batch-size", "4", "--tile", "2",
            "--listen", "127.0.0.1:0", "--port-file", str(port_file),
        ]) == 0
        url = port_file.read_text().strip()
        assert url.startswith("http://127.0.0.1:")
        out = capsys.readouterr().out
        assert "repro-top" in out  # final dashboard frame
        assert "served" in out
        # The exposition server died with the command.
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=2)

    def test_flush_interval_survives_sigkill(self, tmp_path):
        """A killed run leaves valid partial metrics behind."""
        import os
        import signal
        import subprocess
        import sys
        import time
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        metrics_path = tmp_path / "metrics.json"
        env = dict(
            os.environ,
            PYTHONPATH=str(repo / "src"),
            OMP_NUM_THREADS="1",
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "top", "--watch",
                "--frames", "0", "--interval", "0.2",
                "--metrics-out", str(metrics_path),
                "--metrics-flush-interval", "0.1",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if metrics_path.exists() and metrics_path.read_text():
                    break
                time.sleep(0.1)
            else:
                pytest.fail("flusher never wrote the metrics file")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        # SIGKILL skips all cleanup: only the periodic flusher's atomic
        # writes can explain a parseable file.
        payload = json.loads(metrics_path.read_text())
        assert "metrics" in payload and "manifest" in payload
        assert "trace" not in payload
