"""Tests for repro.arch.scheduling (timing, tradeoff, buffers)."""

import pytest

from repro.arch import (
    TimingModel,
    buffer_plan,
    design_timing,
    layer_latency_ns,
    map_layer,
    network_layer_geometries,
    power_time_tradeoff,
)
from repro.errors import ConfigurationError
from repro.hw import TechnologyModel

TECH = TechnologyModel()
TIMING = TimingModel()


class TestTimingModel:
    def test_defaults_positive(self):
        timing = TimingModel()
        assert timing.crossbar_read_ns > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimingModel(crossbar_read_ns=0)
        with pytest.raises(ConfigurationError):
            TimingModel(sa_decision_ns=-1)


class TestLayerLatency:
    def test_scales_with_positions(self):
        conv1, conv2, _ = network_layer_geometries("network1")
        m1 = map_layer(conv1, "sei", TECH)
        m2 = map_layer(conv2, "sei", TECH)
        l1 = layer_latency_ns(m1, TIMING)
        l2 = layer_latency_ns(m2, TIMING)
        assert l1 / l2 == pytest.approx(conv1.positions / conv2.positions, rel=0.1)

    def test_sei_faster_than_adc_per_layer(self):
        geometry = network_layer_geometries("network1")[1]
        sei = layer_latency_ns(map_layer(geometry, "sei", TECH), TIMING)
        adc = layer_latency_ns(map_layer(geometry, "dac_adc", TECH), TIMING)
        assert sei < adc

    def test_replication_divides_latency(self):
        geometry = network_layer_geometries("network1")[0]
        mapping = map_layer(geometry, "sei", TECH)
        full = layer_latency_ns(mapping, TIMING, replication=1)
        half = layer_latency_ns(mapping, TIMING, replication=2)
        assert half == pytest.approx(full / 2, rel=0.01)

    def test_invalid_replication(self):
        geometry = network_layer_geometries("network1")[0]
        mapping = map_layer(geometry, "sei", TECH)
        with pytest.raises(ConfigurationError):
            layer_latency_ns(mapping, TIMING, replication=0)

    def test_input_layer_dacs_not_on_critical_path(self):
        """Input pixels are pre-converted and held, so the input layer
        pays no per-position DAC settle."""
        conv1 = network_layer_geometries("network1")[0]
        conv2 = network_layer_geometries("network1")[1]
        m1 = map_layer(conv1, "dac_adc", TECH)
        m2 = map_layer(conv2, "dac_adc", TECH)
        per_pos_1 = layer_latency_ns(m1, TIMING) / conv1.positions
        per_pos_2 = layer_latency_ns(m2, TIMING) / conv2.positions
        assert per_pos_2 == pytest.approx(
            per_pos_1 + TIMING.dac_settle_ns, rel=1e-6
        )


class TestDesignTiming:
    def test_latency_is_sum_throughput_is_bottleneck(self):
        t = design_timing("network1", "sei")
        assert t.latency_us == pytest.approx(
            sum(t.layer_latency_ns) / 1000.0
        )
        assert t.bottleneck_ns == max(t.layer_latency_ns)

    def test_sei_lower_power_than_baseline(self):
        sei = design_timing("network1", "sei")
        base = design_timing("network1", "dac_adc")
        assert sei.average_power_mw < base.average_power_mw

    def test_three_layers(self):
        t = design_timing("network2", "onebit_adc")
        assert len(t.layer_latency_ns) == 3


class TestPowerTimeTradeoff:
    def test_energy_invariant_power_scales(self):
        rows = power_time_tradeoff("network1", "sei", replications=(1, 4))
        assert rows[0]["energy_uj"] == pytest.approx(rows[1]["energy_uj"])
        assert rows[1]["power_mw"] > rows[0]["power_mw"]
        assert rows[1]["latency_us"] < rows[0]["latency_us"]
        assert rows[1]["area_mm2"] == pytest.approx(4 * rows[0]["area_mm2"])

    def test_rows_cover_replications(self):
        rows = power_time_tradeoff("network2", "dac_adc", replications=(1, 2, 8))
        assert [r["replication"] for r in rows] == [1.0, 2.0, 8.0]


class TestBufferPlan:
    def test_quantized_designs_divide_by_eight(self):
        full8 = buffer_plan("network1", "dac_adc")
        full1 = buffer_plan("network1", "sei")
        for row8, row1 in zip(full8, full1):
            assert row8["full map (bytes)"] == pytest.approx(
                8 * row1["full map (bytes)"], abs=1
            )

    def test_line_buffer_never_larger(self):
        for structure in ("dac_adc", "sei"):
            for row in buffer_plan("network1", structure):
                assert row["line buffer (bytes)"] <= row["full map (bytes)"]
                assert 0.0 <= row["saving"] <= 1.0

    def test_conv_boundary_saves(self):
        rows = buffer_plan("network1", "sei")
        conv_boundary = rows[0]
        assert conv_boundary["saving"] > 0.0

    def test_known_sizes_network1(self):
        rows = buffer_plan("network1", "dac_adc")
        # pool1 output: 12x12x12 bytes at 8-bit.
        assert rows[0]["full map (bytes)"] == 12 * 12 * 12
