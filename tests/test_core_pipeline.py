"""Tests for repro.core.pipeline (the splitting flow of §4.3)."""

import numpy as np
import pytest

from repro.core import SplitConfig, build_split_network
from repro.errors import ConfigurationError


class TestSplitConfig:
    def test_invalid_partition_method(self):
        with pytest.raises(ConfigurationError):
            SplitConfig(partition_method="sorted")

    def test_invalid_final_mode(self):
        with pytest.raises(ConfigurationError):
            SplitConfig(final_layer_mode="adc")


@pytest.fixture(scope="module")
def split_inputs(request):
    """Lazy access to the session fixtures from a module-scoped helper."""
    return None


class TestBuildSplitNetwork:
    def test_no_split_when_everything_fits(self, tiny_quantized, tiny_dataset):
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=4096),
        )
        assert result.reports == {}
        assert result.binarized.layer_computes == {}

    def test_split_layers_detected(self, tiny_quantized, tiny_dataset):
        # Tiny net: conv2 matrix 100 rows -> 400 SEI rows; fc 128 -> 512.
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256),
        )
        assert set(result.reports) == {3, 7}
        assert result.reports[3].num_blocks == 2
        assert result.reports[7].num_blocks == 2
        assert result.reports[7].is_final

    def test_analog_final_layer_keeps_exact_compute(
        self, tiny_quantized, tiny_dataset
    ):
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256, final_layer_mode="analog"),
        )
        # conv2 gets a compute hook; the final layer does not (analog WTA).
        assert 3 in result.binarized.layer_computes
        assert 7 not in result.binarized.layer_computes

    def test_vote_final_layer_installs_compute(
        self, tiny_quantized, tiny_dataset
    ):
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256, final_layer_mode="vote"),
        )
        assert 7 in result.binarized.layer_computes
        report = result.reports[7]
        assert np.isfinite(report.calibration_accuracy)

    def test_split_network_accuracy_degrades_gracefully(
        self, tiny_quantized, tiny_dataset
    ):
        unsplit_err = tiny_quantized.binarized().error_rate(
            tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256),
        )
        split_err = result.binarized.error_rate(
            tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        assert split_err <= unsplit_err + 0.25

    def test_homogenize_beats_or_ties_natural_distance(
        self, tiny_quantized, tiny_dataset
    ):
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256, partition_method="homogenize"),
        )
        for report in result.reports.values():
            assert report.distance <= report.natural_distance + 1e-12

    def test_dynamic_config_allows_nonzero_slope(
        self, tiny_quantized, tiny_dataset
    ):
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256, dynamic=True),
        )
        for index, report in result.reports.items():
            if not report.is_final:
                assert report.decision.ones_slope >= 0.0

    def test_random_partition_seeded(self, tiny_quantized, tiny_dataset):
        orders = []
        for seed in (0, 0, 1):
            result = build_split_network(
                tiny_quantized.network,
                tiny_quantized.thresholds,
                tiny_dataset["train_x"][:64],
                tiny_dataset["train_y"][:64],
                SplitConfig(
                    max_crossbar_size=256,
                    partition_method="random",
                    seed=seed,
                ),
            )
            orders.append(result.reports[3].partition.order.copy())
        np.testing.assert_array_equal(orders[0], orders[1])
        assert not np.array_equal(orders[0], orders[2])

    def test_vote_threshold_within_bounds(self, tiny_quantized, tiny_dataset):
        result = build_split_network(
            tiny_quantized.network,
            tiny_quantized.thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SplitConfig(max_crossbar_size=256),
        )
        for report in result.reports.values():
            assert 1 <= report.decision.vote_threshold <= report.num_blocks
