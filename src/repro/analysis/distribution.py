"""Intermediate-data distribution analysis (Table 1).

The paper motivates 1-bit quantization by the long-tail distribution of
conv-layer outputs: normalised by each layer's maximum, the vast majority
of values fall below 1/16 (CaffeNet: >93% per layer, >98% overall).  This
module computes the same four-bin histogram for our trained networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.layers import Conv2D
from repro.nn.network import Sequential

__all__ = ["TABLE1_BINS", "bin_fractions", "conv_output_distribution"]

#: The paper's Table 1 bin edges on the max-normalised output range.
TABLE1_BINS: Tuple[float, float, float, float] = (1 / 16, 1 / 8, 1 / 4, 1.0)


def bin_fractions(
    values: np.ndarray, bins: Sequence[float] = TABLE1_BINS
) -> List[float]:
    """Fractions of ``values`` in [0,b1), [b1,b2), ..., [b_{n-1}, b_n].

    ``values`` must already be normalised to [0, 1]; negative inputs are
    clamped to zero first (they correspond to pre-ReLU negatives, which
    the neuron outputs as exact zeros).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ShapeError("cannot histogram an empty array")
    if values.max(initial=0.0) > 1.0 + 1e-9:
        raise ShapeError(
            "values must be normalised to [0, 1] "
            f"(max is {values.max():.4g})"
        )
    edges = list(bins)
    if sorted(edges) != edges or len(edges) < 2:
        raise ConfigurationError(f"bins must be sorted, got {bins}")

    clamped = np.maximum(values, 0.0)
    fractions = []
    lower = 0.0
    for i, upper in enumerate(edges):
        if i == len(edges) - 1:
            mask = (clamped >= lower) & (clamped <= upper)
        else:
            mask = (clamped >= lower) & (clamped < upper)
        fractions.append(float(mask.mean()))
        lower = upper
    return fractions


def conv_output_distribution(
    network: Sequential,
    images: np.ndarray,
    bins: Sequence[float] = TABLE1_BINS,
    batch_size: int = 256,
) -> Dict[str, List[float]]:
    """Table 1 rows: per-conv-layer and all-layer bin fractions.

    Outputs are taken *after* the ReLU neuron (the intermediate data that
    would be transferred between layers) and normalised by each layer's
    own maximum, exactly as the paper describes.
    """
    conv_indices = [
        i for i, l in enumerate(network.layers) if isinstance(l, Conv2D)
    ]
    if not conv_indices:
        raise ConfigurationError("network has no conv layers to analyse")

    per_layer: Dict[int, List[np.ndarray]] = {i: [] for i in conv_indices}
    for start in range(0, len(images), batch_size):
        x = images[start : start + batch_size]
        for index, layer in enumerate(network.layers):
            x = layer.forward(x)
            if index in per_layer:
                per_layer[index].append(np.maximum(x, 0.0))

    result: Dict[str, List[float]] = {}
    all_normalised = []
    for order, index in enumerate(conv_indices, start=1):
        outputs = np.concatenate(
            [chunk.ravel() for chunk in per_layer[index]]
        )
        peak = outputs.max(initial=0.0)
        normalised = outputs / peak if peak > 0 else outputs
        result[f"layer {order}"] = bin_fractions(normalised, bins)
        all_normalised.append(normalised)

    result["all layers"] = bin_fractions(
        np.concatenate(all_normalised), bins
    )
    return result
