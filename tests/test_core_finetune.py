"""Tests for repro.core.finetune (STE quantization-aware fine-tuning)."""

import numpy as np
import pytest

from repro.core import (
    BinarizedNetwork,
    FinetuneConfig,
    quantization_aware_finetune,
)
from repro.errors import QuantizationError, TrainingError


class TestFinetuneConfig:
    def test_validation(self):
        with pytest.raises(QuantizationError):
            FinetuneConfig(epochs=0)
        with pytest.raises(QuantizationError):
            FinetuneConfig(learning_rate=0.0)
        with pytest.raises(QuantizationError):
            FinetuneConfig(ste_window=0.0)


class TestFinetune:
    def test_does_not_wreck_a_calibrated_network(
        self, tiny_quantized, tiny_dataset
    ):
        """On an already well-calibrated net, fine-tuning is roughly
        neutral (its value shows on miscalibrated/deeper nets)."""
        net = tiny_quantized.network.copy()
        thresholds = dict(tiny_quantized.thresholds)
        before = BinarizedNetwork(net, thresholds).error_rate(
            tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        quantization_aware_finetune(
            net,
            thresholds,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            FinetuneConfig(epochs=2, seed=0),
        )
        after = BinarizedNetwork(net, thresholds).error_rate(
            tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        assert after <= before + 0.08

    def test_recovers_miscalibrated_thresholds(
        self, tiny_quantized, tiny_dataset
    ):
        """The headline property: weights adapt to (fixed) bad thresholds,
        recovering a large part of the lost accuracy."""
        bad = {
            k: min(2 * v + 0.05, 0.9)
            for k, v in tiny_quantized.thresholds.items()
        }
        net = tiny_quantized.network.copy()
        before = BinarizedNetwork(net, bad).error_rate(
            tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        quantization_aware_finetune(
            net,
            bad,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            FinetuneConfig(epochs=4, seed=0),
        )
        after = BinarizedNetwork(net, bad).error_rate(
            tiny_dataset["test_x"], tiny_dataset["test_y"]
        )
        assert after < before - 0.1

    def test_history_recorded(self, tiny_quantized, tiny_dataset):
        net = tiny_quantized.network.copy()
        history = quantization_aware_finetune(
            net,
            dict(tiny_quantized.thresholds),
            tiny_dataset["train_x"][:128],
            tiny_dataset["train_y"][:128],
            FinetuneConfig(epochs=2),
        )
        assert len(history.train_loss) == 2
        assert len(history.train_accuracy) == 2
        assert all(0 <= a <= 1 for a in history.train_accuracy)

    def test_training_loss_decreases(self, tiny_quantized, tiny_dataset):
        net = tiny_quantized.network.copy()
        history = quantization_aware_finetune(
            net,
            dict(tiny_quantized.thresholds),
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            FinetuneConfig(epochs=4, seed=1),
        )
        assert history.train_loss[-1] <= history.train_loss[0]

    def test_mutates_weights_in_place(self, tiny_quantized, tiny_dataset):
        net = tiny_quantized.network.copy()
        before = net.layers[0].params["weight"].copy()
        quantization_aware_finetune(
            net,
            dict(tiny_quantized.thresholds),
            tiny_dataset["train_x"][:64],
            tiny_dataset["train_y"][:64],
            FinetuneConfig(epochs=1),
        )
        assert not np.allclose(net.layers[0].params["weight"], before)

    def test_requires_thresholds(self, tiny_quantized, tiny_dataset):
        net = tiny_quantized.network.copy()
        with pytest.raises(QuantizationError):
            quantization_aware_finetune(
                net, {0: 0.1}, tiny_dataset["train_x"], tiny_dataset["train_y"]
            )

    def test_empty_dataset(self, tiny_quantized):
        net = tiny_quantized.network.copy()
        with pytest.raises(TrainingError):
            quantization_aware_finetune(
                net,
                dict(tiny_quantized.thresholds),
                np.zeros((0, 1, 28, 28)),
                np.zeros(0, dtype=int),
            )

    def test_deterministic_given_seed(self, tiny_quantized, tiny_dataset):
        results = []
        for _ in range(2):
            net = tiny_quantized.network.copy()
            quantization_aware_finetune(
                net,
                dict(tiny_quantized.thresholds),
                tiny_dataset["train_x"][:96],
                tiny_dataset["train_y"][:96],
                FinetuneConfig(epochs=1, seed=5),
            )
            results.append(net.layers[0].params["weight"].copy())
        np.testing.assert_allclose(results[0], results[1])
