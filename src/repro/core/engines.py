"""Engine registry: one typed spec for every inference backend.

Historically the inference backends were selected by stringly-typed
keyword arguments scattered across the package: ``engine='fused'`` /
``engine='reference'`` on :func:`repro.core.hardware_network.assemble_sei_network`
(and friends), with the noise / device / fabric options riding along as
separate ``config=HardwareConfig(...)`` or ``device=RRAMDevice(...)``
kwargs, and the ADC baseline living behind a different function
altogether.  This module consolidates all of that into one value:

* :class:`EngineSpec` — *which* backend (``fused`` | ``reference`` |
  ``adc`` | ``packed``) plus *all* hardware/noise options it needs, as a
  single frozen dataclass that digests cleanly into cache keys and run
  manifests;
* a **registry** mapping engine names to builder functions, so new
  backends (sharded, multi-device, ...) plug in without touching call
  sites;
* :func:`compile_network` — the single compile entry point: quantized
  artefacts in, ready-to-run :class:`~repro.core.binarized.BinarizedNetwork`
  out.  ``repro.serve`` sessions, the CLI and the benchmarks all go
  through here.

The old keyword forms still work but are deprecated:
``assemble_sei_network(..., engine='reference')`` (a bare string) emits
a :class:`DeprecationWarning` pointing at :class:`EngineSpec`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.core.binarized import BinarizedNetwork
from repro.core.estimate import EstimatorPolicy
from repro.core.hardware_network import (
    HardwareConfig,
    assemble_adc_network,
    assemble_sei_network,
)
from repro.core.homogenize import Partition
from repro.core.splitting import SplitDecision
from repro.nn.network import Sequential

__all__ = [
    "EngineSpec",
    "EngineBuilder",
    "available_engines",
    "register_engine",
    "engine_builder",
    "oracle_engine",
    "resolve_engine",
    "compile_network",
]


@dataclass(frozen=True)
class EngineSpec:
    """Everything that selects and parameterises an inference backend.

    Parameters
    ----------
    name:
        Registry name of the backend: ``'fused'`` (default; collapsed
        stacked-matmul SEI arithmetic), ``'reference'`` (the retained
        pre-fusion per-slice loops, the equivalence oracle), ``'adc'``
        (the traditional DAC+crossbar+ADC functional model, the Table 5
        baseline) or ``'packed'`` (bit-packed popcount SEI arithmetic:
        activations as bit planes, precomputed integer row-weight
        partial sums; see :mod:`repro.core.packed`).
    hardware:
        Device / fabric parameters (cell precision, noise sigmas, IR
        drop, crossbar size, partitioning).  The noise options that used
        to travel as loose kwargs live in ``hardware.device``.
    data_bits:
        Intermediate-data DAC precision for the ``'adc'`` engine (the
        input layer always runs 8-bit DACs, §3.2).  Ignored by the SEI
        engines, whose intermediate data is 1-bit by construction.
    estimator:
        Runtime output-activity estimation policy
        (:class:`repro.core.estimate.EstimatorPolicy`).  ``off`` by
        default; ``exact`` lets the fused / packed engines skip row work
        once every output bit is provably decided (bit-identical to
        ``off``); ``threshold`` trades bounded output disagreement for
        earlier skipping (CompRRAE-style).  Rejected by the ``adc`` and
        ``reference`` engines, which stay estimator-free baselines.
    """

    name: str = "fused"
    hardware: HardwareConfig = field(default_factory=HardwareConfig)
    data_bits: int = 8
    estimator: EstimatorPolicy = field(default_factory=EstimatorPolicy)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"engine name must be a non-empty string, got {self.name!r}"
            )
        if self.data_bits < 1:
            raise ConfigurationError(
                f"data_bits must be >= 1, got {self.data_bits}"
            )

    @property
    def deterministic(self) -> bool:
        """Whether repeated inference draws no per-call randomness.

        Programming variation is applied once at compile time (seeded),
        so only per-read noise makes repeated calls diverge.  The ADC
        engine models no read noise.
        """
        return self.name == "adc" or self.hardware.device.read_sigma <= 0


#: A builder turns quantized artefacts into a runnable network.
EngineBuilder = Callable[..., BinarizedNetwork]

_ENGINES: Dict[str, EngineBuilder] = {}
_ORACLE: Dict[str, str] = {}


def register_engine(
    name: str,
    builder: EngineBuilder,
    replace: bool = False,
    oracle: bool = False,
) -> None:
    """Register an inference backend under ``name``.

    Third-party backends (sharded fabrics, alternative devices) register
    here and immediately become valid :class:`EngineSpec` names for
    :func:`compile_network`, ``repro.serve`` sessions, the conformance
    harness and the CLI.  Pass ``oracle=True`` to designate the backend
    as the equivalence oracle every other engine is differentially
    tested against (``repro.testing`` compares candidates to it).
    """
    if not replace and name in _ENGINES:
        raise ConfigurationError(f"engine {name!r} is already registered")
    _ENGINES[name] = builder
    if oracle:
        _ORACLE["name"] = name


def available_engines() -> Tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_ENGINES))


def oracle_engine() -> str:
    """Name of the designated equivalence-oracle engine.

    The oracle is the retained pre-fusion arithmetic every optimised
    backend must stay bit-identical to; :class:`repro.testing`'s
    differential runner compares against it by default.
    """
    return _ORACLE.get("name", "reference")


def engine_builder(name: str) -> EngineBuilder:
    """The builder registered under ``name``."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(available_engines())}"
        ) from None


def resolve_engine(
    engine: Union[EngineSpec, str, None],
    hardware: Optional[HardwareConfig] = None,
    allowed: Optional[Sequence[str]] = None,
    caller: str = "this function",
    stacklevel: int = 3,
) -> EngineSpec:
    """Normalise the deprecated string/kwarg engine forms to an EngineSpec.

    ``engine=None`` (the modern default) resolves to the default fused
    spec with ``hardware`` folded in.  A bare string is the legacy form:
    it still works, but emits a :class:`DeprecationWarning`.  Passing an
    :class:`EngineSpec` alongside a separate ``hardware`` config is
    ambiguous and rejected.
    """
    if isinstance(engine, EngineSpec):
        if hardware is not None:
            raise ConfigurationError(
                f"pass hardware options inside the EngineSpec, not as a "
                f"separate config argument to {caller}"
            )
        spec = engine
    elif engine is None:
        spec = EngineSpec(
            hardware=hardware if hardware is not None else HardwareConfig()
        )
    elif isinstance(engine, str):
        warnings.warn(
            f"passing engine={engine!r} as a string to {caller} is "
            "deprecated; pass repro.core.EngineSpec(name="
            f"{engine!r}, hardware=...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        spec = EngineSpec(
            name=engine,
            hardware=hardware if hardware is not None else HardwareConfig(),
        )
    else:
        raise ConfigurationError(
            f"engine must be an EngineSpec, a registered engine name or "
            f"None, got {type(engine).__name__}"
        )
    if allowed is not None and spec.name not in allowed:
        raise ConfigurationError(
            f"{caller} supports engines {', '.join(sorted(allowed))}; "
            f"got {spec.name!r}"
        )
    return spec


def compile_network(
    network: Sequential,
    thresholds: Dict[int, float],
    spec: Union[EngineSpec, str, None] = None,
    *,
    decisions: Optional[Dict[int, SplitDecision]] = None,
    partitions: Optional[Dict[int, Partition]] = None,
    calibration_images: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> BinarizedNetwork:
    """The single compile entry point: quantized artefacts -> runnable net.

    Parameters
    ----------
    network, thresholds:
        The re-scaled network and per-layer thresholds from Algorithm 1
        (e.g. ``model.search.network`` / ``model.search.thresholds``).
    spec:
        Engine selection; ``None`` means the default fused SEI engine.
        A bare string is accepted for backward compatibility (with a
        :class:`DeprecationWarning`).
    decisions, partitions:
        Optional calibrated §4.3 split decisions / row partitions per
        layer index (from :func:`repro.core.pipeline.build_split_network`).
    calibration_images:
        Example inputs used by engines that calibrate converter ranges
        (the ``'adc'`` engine); ignored by the SEI engines.
    rng:
        Programming-noise stream; defaults to a generator seeded by the
        spec's hardware seed, so identical specs compile to identical
        hardware.
    """
    spec = resolve_engine(spec, caller="compile_network")
    builder = engine_builder(spec.name)
    if rng is None:
        rng = np.random.default_rng(spec.hardware.seed)
    return builder(
        network,
        thresholds,
        spec,
        decisions=decisions,
        partitions=partitions,
        calibration_images=calibration_images,
        rng=rng,
    )


# -- built-in engines ------------------------------------------------------------


def _build_sei(
    network: Sequential,
    thresholds: Dict[int, float],
    spec: EngineSpec,
    *,
    decisions=None,
    partitions=None,
    calibration_images=None,
    rng=None,
) -> BinarizedNetwork:
    return assemble_sei_network(
        network,
        thresholds,
        decisions=decisions,
        partitions=partitions,
        rng=rng,
        engine=spec,
    )


def _build_adc(
    network: Sequential,
    thresholds: Dict[int, float],
    spec: EngineSpec,
    *,
    decisions=None,
    partitions=None,
    calibration_images=None,
    rng=None,
) -> BinarizedNetwork:
    if decisions or partitions:
        raise ConfigurationError(
            "the 'adc' engine merges digitised partial sums exactly and "
            "takes no split decisions/partitions"
        )
    if spec.estimator.enabled:
        raise ConfigurationError(
            "the 'adc' engine digitises full column sums and supports no "
            "runtime activation estimator; use the fused or packed engine"
        )
    temporal = spec.hardware.temporal
    if temporal is not None and temporal.enabled:
        raise ConfigurationError(
            "the 'adc' engine calibrates its converter ranges against "
            "static cells; temporal aging requires the fused or "
            "reference engine"
        )
    return assemble_adc_network(
        network,
        thresholds=thresholds,
        device=spec.hardware.device,
        data_bits=spec.data_bits,
        calibration_images=calibration_images,
        rng=rng,
    )


register_engine("fused", _build_sei)
register_engine("reference", _build_sei, oracle=True)
register_engine("adc", _build_adc)

# The packed popcount engine lives in its own module and imports this
# registry lazily, so registering it here closes the loop without a
# circular import at module load.
from repro.core.packed import _build_packed  # noqa: E402

register_engine("packed", _build_packed)
