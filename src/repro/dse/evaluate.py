"""Candidate evaluation: one design point in, one scored record out.

The ``hardware`` evaluator is the real thing: it resolves a candidate
configuration into an :class:`~repro.core.engines.EngineSpec` plus a
matching :class:`~repro.hw.tech.TechnologyModel`, compiles a warm
:class:`~repro.serve.session.InferenceSession` through the zoo (the
quantized artefacts come from the digest-keyed warm/disk cache, so every
candidate sharing a pipeline prefix pays for it once), scores

* **accuracy** on a fixed test subset through the selected engine (with
  the hardware activity counters recorded, so the SEI dynamic-power
  estimate of :mod:`repro.obs.power` rides along for free), and
* **energy / area / efficiency** through the calibrated cost model
  (:func:`repro.arch.designs.evaluate_design`, i.e.
  :func:`repro.arch.cost.design_cost` per layer mapping).

The ``synthetic`` evaluator computes analytic objectives from the
configuration alone — no zoo, no hardware — and exists so the runner,
store and report machinery can be exercised (and fault-injected: see
the ``fail`` / ``sleep_ms`` / ``crash`` hooks) in milliseconds.

Candidate configuration keys understood by the hardware evaluator:

=================  ==========================================================
``engine``         ``fused`` | ``reference`` | ``adc`` (default ``fused``)
``crossbar``       max crossbar dimension (fabric + cost model)
``cell_bits``      RRAM device precision (device + cost model)
``weight_bits``    weight precision (default 8)
``read_sigma``     per-read conductance noise (SEI engines)
``program_sigma``  programming-variation sigma
``data_bits``      intermediate-data DAC precision (``adc`` engine)
``estimator``      runtime activation estimator mode: ``off`` | ``exact``
                   | ``threshold`` (fused/packed engines)
``confidence``     threshold-estimator confidence knob in (0, 1]
``hardware_seed``  programming-draw seed (default: the study seed)
``network``        zoo network override (default: the study network)
``refine_passes``  Algorithm 1 refinement passes
``search_step`` / ``thres_min`` / ``thres_max`` / ``criterion``
                   remaining Algorithm 1 hyper-parameters
``drift_nu``       conductance drift exponent (temporal aging)
``drift_nu_sigma`` per-cell drift-exponent dispersion
``retention_rate`` retention decay rate (``1 / tau``)
``read_disturb``   per-read disturb rate
``age_batches``    inference batches run to age the session pre-scoring
``retune``         online re-tune cadence in batches (0/absent = off)
=================  ==========================================================

Any non-zero aging knob compiles the session over
:class:`~repro.hw.array.TemporalSimDeviceArray` cells (``reuse=False``
— aged sessions must not leak into the warm registry), scores the
fresh hardware, runs ``age_batches`` aging batches, re-scores, and
records the drift/retune telemetry plus the device-array snapshot
digest that pins the exact aged cell state.

The ``aging`` evaluator is the zoo-free, fully deterministic
device-level variant: one array programmed, aged and health-checked —
milliseconds per candidate, byte-identical across resumed runs.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.dse.study import Candidate, Study

__all__ = [
    "EVALUATORS",
    "resolve_evaluator",
    "evaluate_candidate",
    "hardware_evaluator",
    "synthetic_evaluator",
    "aging_evaluator",
    "prewarm",
]

_SEARCH_KEYS = (
    "search_step",
    "thres_min",
    "thres_max",
    "criterion",
    "refine_passes",
)


def _search_config(config: Dict[str, Any]):
    """The Algorithm 1 config a candidate implies (None = zoo default)."""
    from repro.core.threshold_search import SearchConfig

    kwargs = {k: config[k] for k in _SEARCH_KEYS if k in config}
    return SearchConfig(**kwargs) if kwargs else None


def _temporal_config(config: Dict[str, Any], seed: int):
    """The aging behaviour a candidate implies (None = static cells)."""
    from repro.hw.array import TemporalConfig

    drift = float(config.get("drift_nu") or 0.0)
    rate = float(config.get("retention_rate") or 0.0)
    disturb = float(config.get("read_disturb") or 0.0)
    if drift <= 0 and rate <= 0 and disturb <= 0:
        return None
    return TemporalConfig(
        drift_nu=drift,
        drift_nu_sigma=float(config.get("drift_nu_sigma") or 0.0),
        retention_tau=1.0 / rate if rate > 0 else 0.0,
        read_disturb_rate=disturb,
        seed=int(config.get("temporal_seed", seed)),
    )


def _engine_spec(study: "Study", config: Dict[str, Any]):
    from repro.core.engines import EngineSpec
    from repro.core.estimate import EstimatorPolicy
    from repro.core.hardware_network import HardwareConfig
    from repro.hw.device import RRAMDevice

    device = RRAMDevice(
        bits=int(config.get("cell_bits", 4)),
        read_sigma=float(config.get("read_sigma") or 0.0),
        program_sigma=float(config.get("program_sigma") or 0.0),
    )
    hardware = HardwareConfig(
        device=device,
        weight_bits=int(config.get("weight_bits", 8)),
        max_crossbar_size=int(config.get("crossbar", 512)),
        seed=int(config.get("hardware_seed", study.seed)),
        temporal=_temporal_config(config, study.seed),
    )
    return EngineSpec(
        name=str(config.get("engine", "fused")),
        hardware=hardware,
        data_bits=int(config.get("data_bits", 8)),
        estimator=EstimatorPolicy(
            mode=str(config.get("estimator", "off")),
            confidence=float(config.get("confidence", 1.0)),
        ),
    )


def hardware_evaluator(
    study: "Study", candidate: "Candidate"
) -> Dict[str, Any]:
    """Score one candidate through the real engines + cost model."""
    from repro import obs, zoo
    from repro.arch.designs import evaluate_design
    from repro.hw.retune import RetunePolicy
    from repro.hw.tech import TechnologyModel
    from repro.obs.power import estimate_from_metrics
    from repro.serve.session import SessionConfig, compile_session

    config = candidate.config
    spec = _engine_spec(study, config)
    search = _search_config(config)
    network = str(config.get("network", study.network))

    temporal = spec.hardware.temporal is not None
    retune_every = int(config.get("retune") or 0)
    session_config = SessionConfig(
        network=network,
        engine=spec,
        tile=study.tile,
        search=search,
        retune=(
            RetunePolicy(check_every=retune_every)
            if retune_every > 0
            else None
        ),
    )
    # Aged sessions mutate their device arrays; never share them.
    session = compile_session(session_config, reuse=not temporal)
    dataset = zoo.get_dataset()
    samples = min(study.eval_samples, len(dataset.test))
    images = dataset.test.images[:samples]
    labels = dataset.test.labels[:samples]

    tech = replace(
        TechnologyModel(),
        cell_bits=spec.hardware.device.bits,
        weight_bits=spec.hardware.weight_bits,
        max_crossbar_size=spec.hardware.max_crossbar_size,
    )

    errors = []
    power: Optional[dict] = None
    eval_start = time.perf_counter()
    with obs.recording() as rec:
        for _ in range(study.eval_repeats):
            errors.append(float(session.error_rate(images, labels)))
    eval_wall_s = time.perf_counter() - eval_start
    power = estimate_from_metrics(rec.metrics, tech)

    structure = "dac_adc" if spec.name == "adc" else "sei"
    evaluation = evaluate_design(network, structure, tech)

    error_rate = sum(errors) / len(errors)
    record: Dict[str, Any] = {
        "structure": structure,
        "accuracy": 1.0 - error_rate,
        "error_rate": error_rate,
        "eval_samples": samples,
        "energy_uj": float(evaluation.energy_uj_per_picture),
        "area_mm2": float(evaluation.area_mm2),
        "gops_per_j": float(evaluation.gops_per_joule()),
        "converter_energy_share": float(
            evaluation.cost.energy_share("adc", "dac")
        ),
        "crossbars": int(sum(m.crossbars for m in evaluation.mappings)),
    }
    if temporal:
        age_batches = int(config.get("age_batches") or 0)
        probe = images[: study.tile]
        for _ in range(age_batches):
            session.infer_batch(probe)
        health = session.health()
        aged_error = float(session.error_rate(images, labels))
        record["fresh_error_rate"] = error_rate
        record["aged_error_rate"] = aged_error
        # Deployment accuracy is the aged one — that is the design point.
        record["error_rate"] = aged_error
        record["accuracy"] = 1.0 - aged_error
        record["device_age"] = max(
            (h.age for h in health.values()), default=0.0
        )
        record["worst_drift"] = max(
            (h.drift_level_steps for h in health.values()), default=0.0
        )
        arrays = session.device_arrays
        if arrays:
            first = sorted(arrays)[0]
            record["snapshot_digest"] = arrays[first].snapshot().digest()
        if retune_every > 0:
            retune_report = session.retune()
            record["retune_events"] = len(retune_report.events)
            record["post_retune_error_rate"] = float(
                session.error_rate(images, labels)
            )
    if study.eval_repeats > 1:
        record["error_rate_runs"] = errors
    if session.model is not None:
        record["quantized_test_error"] = float(
            session.model.quantized_test_error
        )
    if power is not None and structure == "sei":
        record["sei_dynamic_saving"] = power["total"]["saving_vs_static"]
        record["sei_dynamic_pj"] = power["total"]["dynamic_pj"]
    if "estimator" in config:
        # Estimator studies trade energy against latency: the skip
        # bookkeeping is not free, so the wall-clock of the scoring
        # loop is itself an objective.
        record["eval_wall_s"] = eval_wall_s
        if power is not None:
            record["skipped_rows_pct"] = (
                power["total"]["skipped_rows_pct"] or 0.0
            )
            record["estimator_hit_rate"] = (
                power["total"]["estimator_hit_rate"] or 0.0
            )
    return record


def synthetic_evaluator(
    study: "Study", candidate: "Candidate"
) -> Dict[str, Any]:
    """Analytic two-objective score; zoo-free harness/self-test mode.

    Fault hooks (all driven by candidate config keys, used by the tests
    and the runner's own self-checks): ``fail`` raises, ``sleep_ms``
    stalls, ``crash`` hard-kills the worker process.
    """
    config = candidate.config
    if config.get("fail"):
        raise RuntimeError(f"deliberate failure for candidate {candidate.digest}")
    if config.get("sleep_ms"):
        time.sleep(float(config["sleep_ms"]) / 1000.0)
    if config.get("crash"):  # pragma: no cover - kills the process
        import os

        os._exit(13)
    x = float(config.get("x", 0.0))
    y = float(config.get("y", 0.0))
    return {
        "f0": (x - 0.3) ** 2 + 0.1 * y,
        "f1": (y - 0.7) ** 2 + 0.1 * x,
        "accuracy": max(0.0, 1.0 - abs(x - y)),
    }


def aging_evaluator(
    study: "Study", candidate: "Candidate"
) -> Dict[str, Any]:
    """Device-level aging score: one array programmed, aged, checked.

    Zoo-free and fully deterministic (everything derives from the study
    seed and the candidate config), so resumed
    :mod:`repro.dse` runs reproduce records byte-for-byte — asserted in
    ``tests/test_dse.py``.  The returned ``snapshot_digest`` pins the
    exact aged cell state each record was measured on.
    """
    import numpy as np

    from repro.hw.array import make_array
    from repro.hw.device import RRAMDevice

    config = candidate.config
    temporal = _temporal_config(config, study.seed)
    bits = int(config.get("cell_bits", 4))
    rows = int(config.get("rows", 32))
    cols = int(config.get("cols", 32))
    age = float(config.get("age", 64.0))
    reads = int(config.get("reads", 0))

    device = RRAMDevice(
        bits=bits,
        program_sigma=float(config.get("program_sigma") or 0.0),
    )
    targets = np.random.default_rng([study.seed, 0xA6E]).random((rows, cols))
    array = make_array(
        device,
        temporal=temporal,
        rng=np.random.default_rng([study.seed, candidate.index]),
    )
    array.program(targets, np.random.default_rng([study.seed, candidate.index]))
    array.note_reads(reads)
    array.advance(age)
    health = array.health()
    levels = float(2**bits - 1)
    return {
        "drift_level_steps": health.drift_level_steps,
        "max_drift_level_steps": health.max_drift_level_steps,
        "device_age": health.age,
        "reads": health.reads_since_program,
        "snapshot_digest": array.snapshot().digest(),
        # Cell-level figure of merit: fraction of the level grid intact.
        "accuracy": max(0.0, 1.0 - health.drift_level_steps / levels),
    }


EVALUATORS: Dict[str, Callable[["Study", "Candidate"], Dict[str, Any]]] = {
    "hardware": hardware_evaluator,
    "synthetic": synthetic_evaluator,
    "aging": aging_evaluator,
}


def resolve_evaluator(
    evaluator: Any,
) -> Callable[["Study", "Candidate"], Dict[str, Any]]:
    """An evaluator callable from a registry name or a callable."""
    if callable(evaluator):
        return evaluator
    try:
        return EVALUATORS[evaluator]
    except KeyError:
        raise ConfigurationError(
            f"unknown evaluator {evaluator!r}; registered: "
            f"{', '.join(sorted(EVALUATORS))}"
        ) from None


def evaluate_candidate(study: "Study", candidate: "Candidate") -> Dict[str, Any]:
    """Dispatch to the study's evaluator."""
    return resolve_evaluator(study.evaluator)(study, candidate)


def prewarm(study: "Study", candidates) -> None:
    """Materialise the shared pipeline prefixes once, in this process.

    Training and Algorithm 1 are the expensive shared prefixes of every
    candidate; running them here (parent) before the worker pool starts
    means forked workers inherit the warm in-process registry and
    spawned workers hit the digest-keyed disk cache — no worker ever
    retrains a model another worker already produced.
    """
    if study.evaluator != "hardware":
        return
    from repro import zoo

    seen = set()
    for candidate in candidates:
        network = str(candidate.config.get("network", study.network))
        search = _search_config(candidate.config)
        key = (network, zoo.recipe_digest(network, search))
        if key in seen:
            continue
        seen.add(key)
        zoo.warm_model(network, search_config=search)
