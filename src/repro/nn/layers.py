"""Layer classes for the numpy CNN substrate.

Each layer implements ``forward``/``backward`` and exposes its trainable
``params`` and accumulated ``grads`` as dictionaries keyed by parameter
name, so optimisers can update them generically.  Layers cache whatever the
backward pass needs during ``forward`` (mirroring define-by-run
frameworks); inference-only users can pass ``train=False`` to skip caching.

The four layer types are exactly the building blocks of the paper's CNNs
(Table 2): convolution kernels, ReLU neurons, max pooling and fully
connected layers.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn import functional as F
from repro.nn.initializers import get_initializer

__all__ = ["Layer", "Conv2D", "ReLU", "MaxPool2D", "Flatten", "Dense"]


class Layer:
    """Base class for all layers."""

    #: True for layers whose output is an activation the paper quantizes.
    quantizable: bool = False

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    # -- interface ---------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output (excluding batch) for a given input shape."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------
    def zero_grad(self) -> None:
        for name in self.grads:
            self.grads[name][...] = 0.0

    @property
    def num_params(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Conv2D(Layer):
    """2D convolution layer (a bank of ``out_channels`` kernels).

    The flattened weight matrix (``in_channels*kh*kw`` rows by
    ``out_channels`` columns) is what gets mapped onto RRAM crossbars:
    each column stores one kernel, exactly as described in §2.2 of the
    paper.
    """

    quantizable = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ConfigurationError(
                "Conv2D dimensions must be positive, got "
                f"in={in_channels}, out={out_channels}, k={kernel_size}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias

        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(weight_init)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.params["weight"] = init(shape, rng).astype(np.float64)
        self.grads["weight"] = np.zeros(shape)
        if use_bias:
            self.params["bias"] = np.zeros(out_channels)
            self.grads["bias"] = np.zeros(out_channels)

        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    # -- paper-facing helpers ---------------------------------------------
    @property
    def weight_matrix(self) -> np.ndarray:
        """Kernels as an ``(in_channels*kh*kw, out_channels)`` matrix.

        This is the "weight matrix" of Table 2 (e.g. 25 x 12 for Network 1
        conv layer 1) and the array that is mapped onto crossbars.
        """
        return self.params["weight"].reshape(self.out_channels, -1).T

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        """Inverse of :attr:`weight_matrix`; used by quantization rescaling."""
        expected = (
            self.in_channels * self.kernel_size * self.kernel_size,
            self.out_channels,
        )
        if matrix.shape != expected:
            raise ShapeError(
                f"weight matrix must have shape {expected}, got {matrix.shape}"
            )
        self.params["weight"] = np.ascontiguousarray(
            matrix.T.reshape(self.params["weight"].shape)
        )

    # -- forward/backward ---------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        bias = self.params.get("bias")
        out, cols = F.conv2d(
            x, self.params["weight"], bias, self.stride, self.padding
        )
        if train:
            self._cache = (cols, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        cols, image_shape = self._cache
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output,
            cols,
            self.params["weight"],
            image_shape,
            self.stride,
            self.padding,
        )
        self.grads["weight"] += grad_w
        if self.use_bias:
            self.grads["bias"] += grad_b
        return grad_x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(
                f"layer expects {self.in_channels} channels, got {c}"
            )
        oh = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride}, pad={self.padding})"
        )


class ReLU(Layer):
    """Rectified linear neuron, applied one-by-one after a kernel."""

    def __init__(self) -> None:
        super().__init__()
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._cache = x
        return F.relu(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        return F.relu_backward(grad_output, self._cache)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape


class MaxPool2D(Layer):
    """Spatial max pooling; degenerates to OR over 1-bit activations."""

    def __init__(self, pool: int, stride: Optional[int] = None) -> None:
        super().__init__()
        if pool <= 0:
            raise ConfigurationError(f"pool size must be positive, got {pool}")
        self.pool = pool
        self.stride = pool if stride is None else stride
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train:
            # Inference never uses the winner indices; skip the window
            # materialisation + argmax bookkeeping entirely.
            return F.maxpool2d_forward(x, self.pool, self.stride)
        out, argmax = F.maxpool2d(x, self.pool, self.stride)
        self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        argmax, image_shape = self._cache
        return F.maxpool2d_backward(
            grad_output, argmax, image_shape, self.pool, self.stride
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        oh = F.conv_output_size(h, self.pool, self.stride, 0, allow_partial=True)
        ow = F.conv_output_size(w, self.pool, self.stride, 0, allow_partial=True)
        return (c, oh, ow)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2D({self.pool})"


class Flatten(Layer):
    """Flattens feature maps into vectors for the fully connected layer."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError("backward called before forward(train=True)")
        return grad_output.reshape(self._shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Dense(Layer):
    """Fully connected layer: ``output = x @ W + b`` (Equ. 2 of the paper).

    Weights are stored as ``(in_features, out_features)`` so the matrix is
    directly the crossbar image (rows = inputs, columns = outputs).
    """

    quantizable = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                "Dense dimensions must be positive, got "
                f"in={in_features}, out={out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias

        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(weight_init)
        # Initialise in (out, in) convention, store transposed.
        self.params["weight"] = np.ascontiguousarray(
            init((out_features, in_features), rng).T
        )
        self.grads["weight"] = np.zeros((in_features, out_features))
        if use_bias:
            self.params["bias"] = np.zeros(out_features)
            self.grads["bias"] = np.zeros(out_features)

        self._cache: Optional[np.ndarray] = None

    @property
    def weight_matrix(self) -> np.ndarray:
        """The ``(in_features, out_features)`` crossbar image of the layer."""
        return self.params["weight"]

    def set_weight_matrix(self, matrix: np.ndarray) -> None:
        expected = (self.in_features, self.out_features)
        if matrix.shape != expected:
            raise ShapeError(
                f"weight matrix must have shape {expected}, got {matrix.shape}"
            )
        self.params["weight"] = np.ascontiguousarray(matrix)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense expects (n, {self.in_features}), got {x.shape}"
            )
        if train:
            self._cache = x
        out = x @ self.params["weight"]
        if self.use_bias:
            out = out + self.params["bias"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward called before forward(train=True)")
        x = self._cache
        self.grads["weight"] += x.T @ grad_output
        if self.use_bias:
            self.grads["bias"] += grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ShapeError(
                f"Dense expects input shape ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}->{self.out_features})"
