"""Tests for repro.obs: tracing, metrics, manifest, recorder, power.

The two load-bearing guarantees are (a) instrumentation never perturbs
results — traced noisy inference is bit-identical to untraced, because
the hooks never touch the RNG stream — and (b) everything exported
round-trips through JSON unchanged.
"""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core import HardwareConfig, SearchConfig, assemble_sei_network
from repro.core import search_thresholds
from repro.hw import RRAMDevice, TechnologyModel
from repro.obs import MetricsRegistry, NULL_SPAN, Recorder, Tracer
from repro.obs.power import estimate_from_metrics, record_mvm_batch


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    """Every test starts and ends with instrumentation off."""
    assert obs.active() is None
    yield
    obs.disable()


class TestTracing:
    def test_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", engine="fused") as outer:
            with tracer.span("inner", index=0) as inner:
                inner.set("score", 0.5)
            outer.set("layers", 1)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.attrs == {"engine": "fused", "layers": 1}
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attrs == {"index": 0, "score": 0.5}
        assert root.duration_s >= root.children[0].duration_s >= 0.0
        assert tracer.depth == 0

    def test_to_dict_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", x=np.int64(3), y=np.float64(0.25)):
            with tracer.span("b"):
                pass
        exported = tracer.to_dict()
        assert json.loads(json.dumps(exported)) == exported
        # Numpy scalars were coerced to plain types.
        assert exported["spans"][0]["attrs"] == {"x": 3, "y": 0.25}

    def test_pretty_renders_tree(self):
        tracer = Tracer()
        with tracer.span("root", k="v"):
            with tracer.span("child"):
                pass
        text = tracer.pretty()
        assert "root" in text and "child" in text
        assert "k=v" in text
        assert text.index("root") < text.index("child")

    def test_stack_recovers_from_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.depth == 0
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "after"]


class TestMetrics:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 4)
        reg.set_gauge("rows", 128)
        reg.observe("activity", np.array([0.1, 0.1, 0.9]))
        exported = reg.as_dict()
        assert exported["counters"]["hits"] == 5
        assert exported["gauges"]["rows"] == 128
        hist = exported["histograms"]["activity"]
        assert hist["count"] == 3
        assert hist["mean"] == pytest.approx(1.1 / 3)
        assert hist["min"] == pytest.approx(0.1)
        assert hist["max"] == pytest.approx(0.9)
        assert sum(hist["counts"]) == 3

    def test_scope_prefixes_and_nests(self):
        reg = MetricsRegistry()
        scope = reg.scope("hw/layer3")
        scope.inc("mvms", 7)
        scope.scope("sub").set_gauge("x", 1)
        exported = reg.as_dict()
        assert exported["counters"]["hw/layer3/mvms"] == 7
        assert exported["gauges"]["hw/layer3/sub/x"] == 1

    def test_export_json_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("a", 2.5)
        reg.observe("h", 0.3)
        exported = reg.as_dict()
        assert json.loads(json.dumps(exported)) == exported


class TestManifest:
    def test_run_manifest_keys(self):
        manifest = obs.run_manifest(seed=7, config={"a": 1}, extra_field="x")
        for key in (
            "package",
            "package_version",
            "numpy_version",
            "python_version",
            "platform",
            "git_sha",
            "timestamp_utc",
            "seed",
            "config_digest",
        ):
            assert key in manifest
        assert manifest["seed"] == 7
        assert manifest["extra_field"] == "x"

    def test_config_digest_deterministic(self):
        cfg_a = SearchConfig(thres_max=0.3)
        cfg_b = SearchConfig(thres_max=0.3)
        cfg_c = SearchConfig(thres_max=0.4)
        assert obs.config_digest(cfg_a) == obs.config_digest(cfg_b)
        assert obs.config_digest(cfg_a) != obs.config_digest(cfg_c)


class TestRecorder:
    def test_disabled_helpers_are_noops(self):
        assert obs.span("anything", x=1) is NULL_SPAN
        obs.count("nothing")
        obs.set_gauge("nothing", 1)
        obs.observe("nothing", 0.5)
        with obs.span("still-null") as sp:
            sp.set("k", "v")
        assert sp is NULL_SPAN

    def test_recording_restores_previous_state(self):
        with obs.recording() as outer:
            assert obs.active() is outer
            with obs.recording() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_export_structure(self):
        with obs.recording() as rec:
            with obs.span("work", n=3):
                obs.count("items", 3)
        export = rec.export(seed=1)
        assert set(export) == {"manifest", "trace", "metrics"}
        assert export["trace"]["spans"][0]["name"] == "work"
        assert export["metrics"]["counters"]["items"] == 3
        assert json.loads(json.dumps(export)) == export

    def test_export_includes_power_when_hw_counters_present(self):
        with obs.recording() as rec:
            record_mvm_batch(
                rec.metrics, 0, np.ones((4, 8)), cols=2, cells_per_weight=4
            )
        export = rec.export()
        assert "power" in export

    def test_null_overhead_negligible(self):
        # 100k disabled helper calls must be far under a second: each is
        # one module-global None check (the bound is deliberately loose
        # to stay robust on slow CI machines).
        start = time.perf_counter()
        for _ in range(100_000):
            obs.count("x")
            obs.span("y")
        assert time.perf_counter() - start < 1.0


class TestPowerEstimator:
    def test_known_workload_exact_energies(self):
        tech = TechnologyModel()
        reg = MetricsRegistry()
        bits = np.zeros((10, 100))
        bits[:, :25] = 1.0  # 25% row activity
        record_mvm_batch(reg, 2, bits, cols=16, cells_per_weight=4)
        est = estimate_from_metrics(reg, tech=tech)
        layer = est["layers"]["2"]
        active = 10 * 25
        assert layer["positions"] == 10
        assert layer["mean_row_activity"] == pytest.approx(0.25)
        assert layer["rram_read_pj"] == pytest.approx(
            active * 4 * 16 * tech.cell_read_energy_pj
        )
        assert layer["row_drive_pj"] == pytest.approx(
            active * 4 * tech.row_drive_energy_pj
        )
        assert layer["sense_amp_pj"] == pytest.approx(
            10 * 16 * tech.sense_amp_energy_pj
        )
        assert layer["digital_pj"] == 0.0  # unsplit layer: no vote logic
        assert layer["dynamic_pj"] < layer["static_pj"]
        assert 0.0 < layer["saving_vs_static"] < 1.0

    def test_all_rows_active_saves_nothing(self):
        reg = MetricsRegistry()
        record_mvm_batch(reg, 0, np.ones((5, 40)), cols=8, cells_per_weight=4)
        est = estimate_from_metrics(reg)
        assert est["layers"]["0"]["saving_vs_static"] == pytest.approx(0.0)

    def test_digital_merge_gauge_controls_vote_energy(self):
        split = MetricsRegistry()
        record_mvm_batch(
            split, 0, np.ones((3, 20)), cols=4, blocks=2, cells_per_weight=4
        )
        analog = MetricsRegistry()
        record_mvm_batch(
            analog,
            0,
            np.ones((3, 20)),
            cols=4,
            blocks=2,
            cells_per_weight=4,
            sa_events=3 * 4,
            digital_merge=False,
        )
        assert estimate_from_metrics(split)["layers"]["0"]["digital_pj"] > 0
        assert estimate_from_metrics(analog)["layers"]["0"]["digital_pj"] == 0

    def test_estimator_skip_prices_selected_rows(self):
        """Three accounting regimes, hand-computed from Table 5 constants:
        *static* charges every physical row, *active* charges the
        input-switched rows, and with a runtime estimator installed the
        read/drive energy shrinks to the post-skip selection
        (``active_rows - skipped_rows``)."""
        tech = TechnologyModel()
        assert tech.cell_read_energy_pj == 0.2
        assert tech.row_drive_energy_pj == 0.05
        assert tech.sense_amp_energy_pj == 5.0
        reg = MetricsRegistry()
        bits = np.zeros((10, 100))
        bits[:, :40] = 1.0  # 40% row activity: 400 active rows
        record_mvm_batch(
            reg, 0, bits, cols=16, cells_per_weight=4,
            skipped_rows=150, skipped_slots=300,
            est_positions=160, est_decided=120,
            sa_events=40,
        )
        est = estimate_from_metrics(reg, tech=tech)
        layer = est["layers"]["0"]
        assert layer["active_rows"] == 400
        assert layer["skipped_rows"] == 150
        assert layer["selected_rows"] == 250
        assert layer["estimator_hit_rate"] == pytest.approx(120 / 160)
        # Post-skip selection pays the read and driver energy:
        # 250 rows x 4 cells x 16 cols x 0.2 pJ = 3200 pJ, and
        # 250 rows x 4 cells x 0.05 pJ = 50 pJ.
        assert layer["rram_read_pj"] == pytest.approx(3200.0)
        assert layer["row_drive_pj"] == pytest.approx(50.0)
        # SA events were recorded post-skip too: 40 x 5 pJ.
        assert layer["sense_amp_pj"] == pytest.approx(200.0)
        # The static regime still charges all 10 x 100 physical rows.
        assert layer["static_pj"] == pytest.approx(
            1000 * 4 * 16 * 0.2 + 1000 * 4 * 0.05 + 200.0
        )
        totals = est["total"]
        assert totals["skipped_rows_pct"] == pytest.approx(150 / 400)
        assert totals["estimator_hit_rate"] == pytest.approx(120 / 160)

    def test_skip_defaults_keep_active_row_accounting(self):
        """Without an estimator the priced rows are exactly the active
        rows (the historical accounting) and the hit-rate gauge is None."""
        tech = TechnologyModel()
        reg = MetricsRegistry()
        bits = np.zeros((4, 50))
        bits[:, :10] = 1.0
        record_mvm_batch(reg, 0, bits, cols=8, cells_per_weight=2)
        est = estimate_from_metrics(reg, tech=tech)
        layer = est["layers"]["0"]
        assert layer["selected_rows"] == layer["active_rows"] == 40
        assert layer["skipped_rows"] == 0
        assert layer["estimator_hit_rate"] is None
        assert layer["rram_read_pj"] == pytest.approx(
            40 * 2 * 8 * tech.cell_read_energy_pj
        )
        assert est["total"]["skipped_rows_pct"] == pytest.approx(0.0)
        assert est["total"]["estimator_hit_rate"] is None

    def test_no_hw_counters_returns_none(self):
        reg = MetricsRegistry()
        reg.inc("train/steps", 10)
        assert estimate_from_metrics(reg) is None

    def test_accepts_exported_dict(self):
        reg = MetricsRegistry()
        record_mvm_batch(reg, 1, np.ones((2, 6)), cols=3, cells_per_weight=4)
        from_registry = estimate_from_metrics(reg)
        from_dict = estimate_from_metrics(
            json.loads(json.dumps(reg.as_dict()))
        )
        assert from_registry == from_dict


class TestBitIdentical:
    """Tracing must not consume RNG draws or alter any arithmetic."""

    NOISY = HardwareConfig(
        max_crossbar_size=256,
        device=RRAMDevice(bits=4, read_sigma=0.02, program_sigma=0.05),
    )

    def _build(self, tiny_quantized):
        return assemble_sei_network(
            tiny_quantized.network, tiny_quantized.thresholds, self.NOISY
        )

    def test_traced_noisy_inference_bit_identical(
        self, tiny_quantized, tiny_dataset
    ):
        x = tiny_dataset["test_x"][:40]
        plain = self._build(tiny_quantized).predict(x)
        with obs.recording() as rec:
            traced = self._build(tiny_quantized).predict(x)
        np.testing.assert_array_equal(plain, traced)
        counters = rec.metrics.as_dict()["counters"]
        assert any(name.endswith("/mvms") for name in counters)
        assert any(name.endswith("/noise_draws") for name in counters)
        power = estimate_from_metrics(rec.metrics)
        assert 0.0 <= power["total"]["saving_vs_static"] < 1.0

    def test_traced_search_identical_thresholds(
        self, tiny_quantized, trained_tiny_network, tiny_dataset
    ):
        with obs.recording() as rec:
            traced = search_thresholds(
                trained_tiny_network,
                tiny_dataset["train_x"],
                tiny_dataset["train_y"],
                SearchConfig(thres_max=0.3, search_step=0.02),
            )
        assert traced.thresholds == tiny_quantized.thresholds
        counters = rec.metrics.as_dict()["counters"]
        assert counters["search/candidates_scored"] > 0
        assert counters["search/prefix_cache/misses"] > 0
        span_names = {
            s["name"] for s in _walk(rec.tracer.to_dict()["spans"])
        }
        assert {"algorithm1.search", "algorithm1.layer"} <= span_names

    def test_refinement_cache_and_memo_counters(self, tiny_dataset):
        # Prefix-cache hits need >= 3 intermediate layers (with two, the
        # refine memo — checked first — always short-circuits the only
        # reusable collection), so search the 5-weighted-layer deep demo
        # network; untrained weights are fine for exercising the caches.
        from repro.zoo import build_deep_network

        with obs.recording() as rec:
            search_thresholds(
                build_deep_network(),
                tiny_dataset["train_x"][:60],
                tiny_dataset["train_y"][:60],
                SearchConfig(
                    thres_max=0.1, search_step=0.05, refine_passes=2
                ),
            )
        counters = rec.metrics.as_dict()["counters"]
        assert counters["search/prefix_cache/hits"] > 0
        assert counters["search/prefix_cache/misses"] > 0
        assert counters["search/refine_memo/hits"] > 0
        assert counters["search/refine_memo/misses"] > 0

    def test_traced_software_binarized_identical(
        self, tiny_quantized, tiny_dataset
    ):
        x, y = tiny_dataset["test_x"], tiny_dataset["test_y"]
        plain_err = tiny_quantized.binarized().error_rate(x, y)
        with obs.recording() as rec:
            traced_err = tiny_quantized.binarized().error_rate(x, y)
        assert traced_err == plain_err
        # The software path records the SEI (binary-input) layers only.
        counters = rec.metrics.as_dict()["counters"]
        assert any(name.endswith("/active_rows") for name in counters)


def _walk(spans):
    for span in spans:
        yield span
        yield from _walk(span["children"])


class TestCLIIntegration:
    def test_trace_flag_writes_export(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["fig1", "--trace", str(out), "-q"]) == 0
        payload = json.loads(out.read_text())
        assert {"manifest", "trace", "metrics"} <= set(payload)
        assert payload["manifest"]["command"] == "fig1"

    def test_metrics_out_flag_omits_spans(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        assert main(["table5", "--metrics-out", str(out), "-q"]) == 0
        payload = json.loads(out.read_text())
        assert "trace" not in payload
        assert "metrics" in payload

    def test_flags_parse_after_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["table3", "--trace", "t.json", "-vv"]
        )
        assert args.trace == "t.json"
        assert args.verbose == 2
        args = build_parser().parse_args(["split", "network1", "-q"])
        assert args.quiet == 1 and args.trace is None

    def test_recording_disabled_after_main(self, tmp_path):
        from repro.cli import main

        main(["fig1", "--trace", str(tmp_path / "t.json"), "-q"])
        assert obs.active() is None


class TestZooCacheCounters:
    def test_corrupt_cache_counted(self, tmp_path, caplog):
        from repro.zoo import _load_cached_meta

        bad = tmp_path / "meta.json"
        bad.write_text("{ nope")
        with obs.recording() as rec:
            with caplog.at_level("WARNING", logger="repro.zoo"):
                assert _load_cached_meta(bad) is None
        assert rec.metrics.as_dict()["counters"]["zoo/cache/corrupt"] == 1


class TestPerfHelpers:
    def test_throughput_guards_degenerate_measurements(self):
        from repro.analysis.perf import Timing

        assert Timing("x", seconds=0.0, repeats=3, items=10).throughput is None
        assert Timing("x", seconds=1.0, repeats=0, items=10).throughput is None
        assert Timing("x", seconds=2.0, repeats=3, items=10).throughput == 5.0

    def test_time_call_records_into_metrics(self):
        from repro.analysis.perf import time_call

        reg = MetricsRegistry()
        timing = time_call(
            lambda: None, label="noop", repeats=1, warmup=0, items=5,
            metrics=reg,
        )
        gauges = reg.as_dict()["gauges"]
        assert gauges["perf/noop/seconds"] == pytest.approx(timing.seconds)
        assert "perf/noop/items_per_second" in gauges

    def test_time_interleaved_records_into_metrics(self):
        from repro.analysis.perf import time_interleaved

        reg = MetricsRegistry()
        time_interleaved(
            {"a": lambda: None, "b": lambda: None},
            repeats=1,
            warmup=0,
            metrics=reg,
        )
        gauges = reg.as_dict()["gauges"]
        assert "perf/a/seconds" in gauges and "perf/b/seconds" in gauges


class TestLogging:
    def test_get_logger_namespacing(self):
        assert obs.get_logger("zoo").name == "repro.zoo"
        assert obs.get_logger("repro.cli").name == "repro.cli"
        assert obs.get_logger().name == "repro"

    def test_configure_idempotent(self):
        first = obs.configure(0)
        handlers_after_first = list(first.handlers)
        second = obs.configure(1)
        assert second is first
        assert list(second.handlers) == handlers_after_first

    def test_verbosity_mapping(self):
        import logging

        from repro.obs.log import verbosity_level

        assert verbosity_level(2) == logging.DEBUG
        assert verbosity_level(0) == logging.INFO
        assert verbosity_level(-1) == logging.WARNING
        assert verbosity_level(-5) == logging.ERROR


class TestRecorderEdgeCases:
    """Recorder swap/teardown corners the serving plane leans on."""

    def test_swap_recorder_while_span_open(self):
        """A span survives the global recorder changing under it.

        The span belongs to the tracer that opened it, so closing it
        after a swap must unwind *that* tracer's stack — and metric
        helpers called meanwhile land in the *new* recorder.
        """
        first = obs.enable()
        span = obs.span("outer", who="first")
        span.__enter__()
        second = Recorder()
        obs.enable(second)  # swap mid-span
        obs.count("after_swap")
        span.__exit__(None, None, None)
        obs.disable()

        assert first.tracer.depth == 0
        assert [s.name for s in first.tracer.roots] == ["outer"]
        assert first.metrics.as_dict()["counters"] == {}
        assert second.metrics.as_dict()["counters"] == {"after_swap": 1}
        assert second.tracer.roots == []

    def test_nested_recording_restores_outer_recorder(self):
        with obs.recording() as outer:
            obs.count("outer_metric")
            with obs.recording() as inner:
                obs.count("inner_metric")
            assert obs.active() is outer
            obs.count("outer_metric")
        assert obs.active() is None
        assert outer.metrics.as_dict()["counters"] == {"outer_metric": 2}
        assert inner.metrics.as_dict()["counters"] == {"inner_metric": 1}

    def test_null_path_allocation_free(self):
        """Disabled instrumentation must not accumulate memory.

        The hot paths call these helpers millions of times with
        recording off; net traced allocations over thousands of calls
        must stay at zero (transient call frames don't count — they are
        freed before the snapshot).
        """
        import tracemalloc

        assert obs.active() is None
        values = np.array([1.0, 2.0])

        def hammer(n):
            for _ in range(n):
                obs.count("x")
                obs.set_gauge("y", 1.0)
                obs.observe("z", values)
                assert obs.span("s") is NULL_SPAN

        hammer(10)  # warm up lazy imports/caches outside the window
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            hammer(2000)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 512, (
            f"null path leaked {after - before} bytes over 2000 iterations"
        )

    def test_null_span_is_shared_and_inert(self):
        with obs.span("anything", a=1) as sp:
            sp.set("k", "v")  # must be a no-op, not an error
        assert obs.span("again") is NULL_SPAN


class TestLoggingEdgeCases:
    def test_broken_pipe_on_emit_is_silent(self, capsys, monkeypatch):
        """`repro-cli table5 | head` closing stdout must not traceback."""
        import sys as _sys

        class _ClosedPipe:
            def write(self, data):
                raise BrokenPipeError("downstream went away")

            def flush(self):
                raise BrokenPipeError("downstream went away")

        logger = obs.configure(0)
        monkeypatch.setattr(_sys, "stdout", _ClosedPipe())
        obs.get_logger("test").info("does this pipe hold?")  # must not raise
        assert "Traceback" not in capsys.readouterr().err

    def test_configure_retunes_formatter_without_stacking(self):
        from repro.obs.log import _StdoutHandler

        logger = obs.configure(0, fmt="%(levelname)s %(message)s")
        stdout_handlers = [
            h for h in logger.handlers if isinstance(h, _StdoutHandler)
        ]
        assert len(stdout_handlers) == 1
        assert stdout_handlers[0].formatter._fmt == "%(levelname)s %(message)s"
        obs.configure(0)  # back to default
        assert stdout_handlers[0].formatter._fmt == "%(message)s"
        assert [
            h for h in logger.handlers if isinstance(h, _StdoutHandler)
        ] == stdout_handlers

    def test_stdout_handler_follows_stream_swaps(self, capsys):
        """The handler writes to wherever sys.stdout points at emit time."""
        import io
        import sys as _sys

        obs.configure(0)
        logger = obs.get_logger("swap")
        buffer = io.StringIO()
        original = _sys.stdout
        try:
            _sys.stdout = buffer
            logger.info("into the buffer")
        finally:
            _sys.stdout = original
        assert "into the buffer" in buffer.getvalue()
