"""Design-space exploration over the cost model (extension bench).

Sweeps (crossbar size x cell precision) for Network 1 and reports the
response surface plus its Pareto front, quantifying §5.3's closing
remark — "the energy efficiency gains and area saving further increase
if we have to use smaller crossbars ... or [weights] can be stored into
the same crossbar" — across the whole grid rather than two points.
"""

import pytest

from repro.arch import format_table
from repro.dse import design_space_sweep, pareto_front

from benchmarks.conftest import heading


def run_sweep():
    rows = design_space_sweep(
        "network1",
        crossbar_sizes=(1024, 512, 256, 128),
        cell_bits=(2, 4, 8),
    )
    sei_rows = [r for r in rows if r["structure"] == "sei"]
    front = pareto_front(sei_rows)
    return rows, front


@pytest.mark.benchmark(group="design_space")
def test_design_space_exploration(benchmark):
    rows, front = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    heading("Design space — (crossbar size x cell bits), Network 1")
    print(format_table(rows, floatfmt="{:.3f}"))
    print("\nPareto front (energy, area) among SEI points:")
    print(format_table(front, floatfmt="{:.3f}"))

    sei = [r for r in rows if r["structure"] == "sei"]

    # §5.3 trend: relative saving grows as crossbars shrink, for every
    # cell precision (tiny non-monotonic ripples from block-count
    # rounding are tolerated).
    for bits in (2, 4, 8):
        by_size = sorted(
            (r for r in sei if r["cell_bits"] == bits),
            key=lambda r: r["crossbar"],
            reverse=True,
        )
        savings = [r["energy_saving_vs_baseline"] for r in by_size]
        assert savings[-1] > savings[0], bits
        for earlier, later in zip(savings, savings[1:]):
            assert later >= earlier - 0.005, bits

    # Higher-precision cells shrink the SEI fabric (fewer cells/weight).
    at512 = {
        r["cell_bits"]: r["energy_uj"]
        for r in sei
        if r["crossbar"] == 512
    }
    assert at512[8] < at512[4] < at512[2]

    # The Pareto front is non-empty and contained in the sweep.
    assert front
    assert all(r in sei for r in front)
