"""Energy and area accounting over layer mappings.

Every cost is itemised per component class so the Fig. 1 breakdowns and
Table 5 savings come from the same numbers.  Component keys:

``dac``, ``adc``, ``rram`` (cell reads / cell area), ``sa`` (sense
amplifiers), ``digital`` (merge/vote/neuron logic), ``buffer``
(intermediate-data SRAM), ``driver`` (row transmission gates + decoders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.hw.tech import TechnologyModel

from repro.arch.mapper import LayerMapping

__all__ = [
    "COMPONENTS",
    "layer_energy_pj",
    "layer_area_um2",
    "LayerCost",
    "DesignCost",
    "design_cost",
]

COMPONENTS = ("dac", "adc", "rram", "sa", "digital", "buffer", "driver")


def layer_energy_pj(
    mapping: LayerMapping, tech: TechnologyModel
) -> Dict[str, float]:
    """Per-picture energy (pJ) of one mapped layer, itemised by component."""
    return {
        "dac": mapping.dac_conversions * tech.dac_energy_pj,
        "adc": mapping.adc_conversions * tech.adc_energy_pj,
        "rram": mapping.cell_activations * tech.cell_read_energy_pj,
        "sa": mapping.sa_events * tech.sense_amp_energy_pj,
        "digital": mapping.digital_ops * tech.digital_op_energy_pj,
        "buffer": 2 * mapping.buffer_bytes * tech.buffer_access_energy_pj,
        "driver": mapping.row_drive_events * tech.row_drive_energy_pj,
    }


def layer_area_um2(
    mapping: LayerMapping, tech: TechnologyModel
) -> Dict[str, float]:
    """Area (um^2) of one mapped layer, itemised by component."""
    decoder_area = mapping.decoder_rows * tech.decoder_area_per_row_um2
    if mapping.structure == "sei":
        decoder_area += mapping.decoder_rows * tech.sei_mux_area_per_row_um2
    digital_lanes = mapping.geometry.cols * max(
        1, mapping.crossbars // max(mapping.split_blocks, 1)
    )
    return {
        "dac": mapping.dac_channels * tech.dac_area_um2,
        "adc": mapping.adc_channels * tech.adc_area_um2,
        "rram": mapping.cells * tech.cell_area_um2,
        "sa": mapping.sense_amps * tech.sense_amp_area_um2,
        "digital": digital_lanes * tech.digital_op_area_um2,
        "buffer": mapping.buffer_bytes * tech.buffer_area_per_byte_um2,
        "driver": decoder_area,
    }


@dataclass
class LayerCost:
    """Cost breakdown of one layer."""

    mapping: LayerMapping
    energy_pj: Dict[str, float]
    area_um2: Dict[str, float]

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())

    @property
    def total_area_um2(self) -> float:
        return sum(self.area_um2.values())


@dataclass
class DesignCost:
    """Full-design cost: per-layer breakdowns plus totals and ratios."""

    structure: str
    layers: List[LayerCost] = field(default_factory=list)

    # -- totals -------------------------------------------------------------
    @property
    def energy_pj(self) -> Dict[str, float]:
        totals = {key: 0.0 for key in COMPONENTS}
        for layer in self.layers:
            for key, value in layer.energy_pj.items():
                totals[key] += value
        return totals

    @property
    def area_um2(self) -> Dict[str, float]:
        totals = {key: 0.0 for key in COMPONENTS}
        for layer in self.layers:
            for key, value in layer.area_um2.items():
                totals[key] += value
        return totals

    @property
    def total_energy_uj(self) -> float:
        return sum(self.energy_pj.values()) * 1e-6

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_um2.values()) * 1e-6

    # -- analysis ---------------------------------------------------------------
    @staticmethod
    def _check_components(components) -> None:
        if not components:
            raise ConfigurationError("need at least one component name")
        unknown = [c for c in components if c not in COMPONENTS]
        if unknown:
            raise ConfigurationError(
                f"unknown component(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(COMPONENTS)}"
            )

    def energy_share(self, *components: str) -> float:
        """Fraction of total energy consumed by the given components."""
        self._check_components(components)
        totals = self.energy_pj
        total = sum(totals.values())
        if total <= 0:
            raise ConfigurationError("design consumes no energy")
        return sum(totals[c] for c in components) / total

    def area_share(self, *components: str) -> float:
        self._check_components(components)
        totals = self.area_um2
        total = sum(totals.values())
        if total <= 0:
            raise ConfigurationError("design occupies no area")
        return sum(totals[c] for c in components) / total

    def energy_saving_vs(self, baseline: "DesignCost") -> float:
        """Fractional energy saving relative to ``baseline``."""
        if baseline.total_energy_uj <= 0:
            raise ConfigurationError(
                "baseline design consumes no energy; saving undefined"
            )
        return 1.0 - self.total_energy_uj / baseline.total_energy_uj

    def area_saving_vs(self, baseline: "DesignCost") -> float:
        if baseline.total_area_mm2 <= 0:
            raise ConfigurationError(
                "baseline design occupies no area; saving undefined"
            )
        return 1.0 - self.total_area_mm2 / baseline.total_area_mm2

    def gops_per_joule(self, gops_per_picture: float) -> float:
        """Energy efficiency given the per-picture workload in GOPs."""
        if gops_per_picture <= 0:
            raise ConfigurationError("gops_per_picture must be positive")
        if self.total_energy_uj <= 0:
            raise ConfigurationError(
                "design consumes no energy; efficiency undefined"
            )
        return gops_per_picture / (self.total_energy_uj * 1e-6)


def design_cost(
    structure: str,
    mappings: List[LayerMapping],
    tech: TechnologyModel,
) -> DesignCost:
    """Bundle per-layer costs for a full design."""
    cost = DesignCost(structure=structure)
    for mapping in mappings:
        cost.layers.append(
            LayerCost(
                mapping=mapping,
                energy_pj=layer_energy_pj(mapping, tech),
                area_um2=layer_area_um2(mapping, tech),
            )
        )
    return cost
