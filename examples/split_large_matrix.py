"""Splitting a large weight matrix across crossbars without ADCs (§4.3).

Network 1's conv2 (300x64 -> a 1200-row SEI image) and FC (1024x10 ->
4096 rows) exceed the 512x512 crossbar limit.  This example walks through
the paper's remedy: split the rows into blocks, watch accuracy drop for
arbitrary row orders, then repair it with matrix homogenization and
per-block dynamic thresholds.

Run:  python examples/split_large_matrix.py
"""

from repro.arch import format_table
from repro.core import SplitConfig, build_split_network
from repro.zoo import get_dataset, get_quantized


def split_error(model, dataset, **kwargs):
    result = build_split_network(
        model.search.network,
        model.search.thresholds,
        dataset.train.images,
        dataset.train.labels,
        SplitConfig(max_crossbar_size=512, **kwargs),
    )
    error = result.binarized.error_rate(
        dataset.test.images, dataset.test.labels
    )
    return error, result


def main() -> None:
    dataset = get_dataset()
    model = get_quantized("network1", dataset=dataset)

    print(f"float error:        {model.float_test_error:.2%}")
    print(f"1-bit (unsplit):    {model.quantized_test_error:.2%}\n")

    rows = []

    err, result = split_error(model, dataset, partition_method="natural")
    for index, report in result.reports.items():
        print(
            f"layer {index}: {report.num_blocks} blocks "
            f"(final={report.is_final}), Equ.10 distance natural order = "
            f"{report.natural_distance:.3f}"
        )
    rows.append({"row order": "natural", "test error": f"{err:.2%}"})

    for seed in range(3):
        err, _ = split_error(
            model, dataset, partition_method="random", seed=seed
        )
        rows.append(
            {"row order": f"random (seed {seed})", "test error": f"{err:.2%}"}
        )

    err, result = split_error(model, dataset, partition_method="homogenize")
    reductions = ", ".join(
        f"{1 - r.distance / r.natural_distance:.0%}"
        for r in result.reports.values()
        if r.natural_distance > 0
    )
    rows.append(
        {
            "row order": f"homogenized (distance cut {reductions})",
            "test error": f"{err:.2%}",
        }
    )

    err, _ = split_error(
        model, dataset, partition_method="homogenize", dynamic=True
    )
    rows.append(
        {"row order": "homogenized + dynamic thresholds", "test error": f"{err:.2%}"}
    )

    print("\n== Table 4 style comparison (crossbar 512) ==")
    print(format_table(rows))
    print(
        "\nNote: the fully digital final-layer vote can be selected with "
        "SplitConfig(final_layer_mode='vote'); the default merges the "
        "classifier blocks in analog into the winner-take-all readout."
    )


if __name__ == "__main__":
    main()
