"""Tests for repro.arch.programming and the IR-drop extensions."""

import numpy as np
import pytest

from repro.arch import (
    ProgrammingModel,
    evaluate_design,
    programming_cost,
)
from repro.core import DynamicThresholdMatrix, SEIMatrix, binarize
from repro.errors import ConfigurationError


class TestProgrammingModel:
    def test_defaults_valid(self):
        model = ProgrammingModel()
        assert model.verify_iterations >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProgrammingModel(write_pulse_ns=0)
        with pytest.raises(ConfigurationError):
            ProgrammingModel(verify_iterations=0.5)


class TestProgrammingCost:
    def test_counts_all_cells(self):
        ev = evaluate_design("network1", "sei")
        cost = programming_cost(ev.mappings, ev.energy_uj_per_picture)
        assert cost.total_cells == sum(m.cells for m in ev.mappings)
        assert cost.energy_uj > 0 and cost.time_ms > 0

    def test_energy_scales_with_iterations(self):
        ev = evaluate_design("network2", "sei")
        cheap = programming_cost(
            ev.mappings,
            ev.energy_uj_per_picture,
            model=ProgrammingModel(verify_iterations=2),
        )
        costly = programming_cost(
            ev.mappings,
            ev.energy_uj_per_picture,
            model=ProgrammingModel(verify_iterations=8),
        )
        assert costly.energy_uj == pytest.approx(4 * cheap.energy_uj)

    def test_amortization_reasonable(self):
        """Programming amortizes within O(1000) pictures — ignoring it in
        Table 5, as the paper does, is justified."""
        ev = evaluate_design("network1", "sei")
        cost = programming_cost(ev.mappings, ev.energy_uj_per_picture)
        assert cost.pictures_to_amortize(0.01) < 5000

    def test_amortization_validation(self):
        ev = evaluate_design("network2", "sei")
        cost = programming_cost(ev.mappings, ev.energy_uj_per_picture)
        with pytest.raises(ConfigurationError):
            cost.pictures_to_amortize(0.0)
        with pytest.raises(ConfigurationError):
            programming_cost(ev.mappings, 0.0)

    def test_baseline_programs_more_cells_than_sei_for_small_nets(self):
        """SEI stores 4 cells/weight in one crossbar; the baseline stores
        the same 4 copies across crossbars — similar totals, plus SEI's
        threshold column."""
        base = evaluate_design("network2", "dac_adc")
        sei = evaluate_design("network2", "sei")
        base_cells = sum(m.cells for m in base.mappings)
        sei_cells = sum(m.cells for m in sei.mappings)
        assert sei_cells == pytest.approx(base_cells, rel=0.2)


class TestIRDrop:
    def test_sei_attenuation_factor(self, rng):
        clean = SEIMatrix(rng.normal(size=(20, 4)), max_crossbar_size=512)
        droop = SEIMatrix(
            rng.normal(size=(20, 4)),
            max_crossbar_size=512,
            ir_drop_lambda=1.0,
        )
        assert clean.ir_drop_attenuation == 1.0
        assert droop.ir_drop_attenuation < 1.0

    def test_sei_output_attenuated(self, rng):
        weights = rng.normal(size=(30, 4))
        bits = (rng.random((10, 30)) < 0.3).astype(float)
        clean = SEIMatrix(weights, max_crossbar_size=512)
        droop = SEIMatrix(
            weights, max_crossbar_size=512, ir_drop_lambda=2.0
        )
        np.testing.assert_allclose(
            droop.compute(bits),
            clean.compute(bits) * droop.ir_drop_attenuation,
            atol=1e-12,
        )

    def test_dynamic_threshold_fire_is_ir_drop_invariant(self, rng):
        """Fig. 4's in-crossbar reference column cancels uniform IR drop."""
        weights = rng.normal(size=(40, 6)) * 0.05
        bits = (rng.random((200, 40)) < 0.25).astype(float)
        clean = DynamicThresholdMatrix(
            weights, threshold=0.06, max_crossbar_size=1024
        )
        droop = DynamicThresholdMatrix(
            weights,
            threshold=0.06,
            max_crossbar_size=1024,
            ir_drop_lambda=3.0,
        )
        np.testing.assert_array_equal(clean.fire(bits), droop.fire(bits))

    def test_plain_sei_decisions_biased_by_ir_drop(self, rng):
        """An external SA reference does not track the attenuation, so
        decisions flip — the weakness the Fig. 4 structure removes."""
        weights = np.abs(rng.normal(size=(60, 8))) * 0.02
        bits = (rng.random((500, 60)) < 0.3).astype(float)
        threshold = 0.08
        clean = SEIMatrix(weights, max_crossbar_size=1024)
        droop = SEIMatrix(
            weights, max_crossbar_size=1024, ir_drop_lambda=3.0
        )
        fire_clean = binarize(clean.compute(bits), threshold)
        fire_droop = binarize(droop.compute(bits), threshold)
        assert (fire_clean == fire_droop).mean() < 1.0
