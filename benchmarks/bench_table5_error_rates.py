"""Table 5's *error-rate* column: accuracy measured through hardware.

Paper (Network 1, 512 crossbars): DAC+ADC 0.93% (= the original CNN),
1-bit-Input+ADC 1.63% (= the quantized CNN), SEI 1.52%.  The pattern to
reproduce: the full-precision baseline matches the float network, the
1-bit designs match the quantized network, and the complete SEI design
(including its ADC-free splitting) stays within a fraction of a percent
of them.

Every number here is measured by running the test set through the
corresponding *functional hardware model* — DAC/ADC quantization and
bit-sliced crossbars for the ADC designs, 4-bit SEI crossbars with
vote-merged splitting for the SEI design — not by quoting the software
pipeline.
"""

import pytest

from repro.arch import format_table
from repro.core import (
    HardwareConfig,
    assemble_adc_network,
    assemble_sei_network,
    rescale_network,
)
from repro.zoo import get_trained_network

from benchmarks.conftest import heading

SAMPLES = 800


def run_error_rates(quantized_models, dataset):
    images = dataset.test.images[:SAMPLES]
    labels = dataset.test.labels[:SAMPLES]
    rows = []
    for name, qm in quantized_models.items():
        # 8-bit DAC+ADC baseline on the re-scaled float network.
        float_net = get_trained_network(name, dataset=dataset).copy()
        rescale_network(float_net, dataset.train.images[:500])
        baseline = assemble_adc_network(
            float_net, calibration_images=dataset.train.images[:200]
        )
        base_err = float(
            (baseline.predict(images).argmax(1) != labels).mean()
        )
        float_err = float(
            (float_net.predict(images).argmax(1) != labels).mean()
        )

        onebit = assemble_adc_network(
            qm.search.network,
            thresholds=qm.search.thresholds,
            data_bits=1,
            calibration_images=dataset.train.images[:200],
        )
        onebit_err = onebit.error_rate(images, labels)

        sei = assemble_sei_network(
            qm.search.network,
            qm.search.thresholds,
            HardwareConfig(max_crossbar_size=512),
        )
        sei_err = sei.error_rate(images, labels)

        rows.append(
            {
                "network": name,
                "float (%)": 100 * float_err,
                "DAC+ADC (%)": 100 * base_err,
                "1-bit+ADC (%)": 100 * onebit_err,
                "SEI (%)": 100 * sei_err,
                "software 1-bit (%)": 100 * qm.quantized_test_error,
            }
        )
    return rows


@pytest.mark.benchmark(group="table5")
def test_table5_error_rate_column(benchmark, quantized_models, dataset):
    rows = benchmark.pedantic(
        run_error_rates,
        args=(quantized_models, dataset),
        rounds=1,
        iterations=1,
    )

    heading("Table 5 — error rates measured through the hardware models")
    print(format_table(rows))
    print(
        "paper pattern: DAC+ADC == original CNN; 1-bit designs == "
        "quantized CNN; SEI within a fraction of a percent"
    )

    for row in rows:
        # The 8-bit baseline reproduces the float network.
        assert abs(row["DAC+ADC (%)"] - row["float (%)"]) < 0.7, row
        # The 1-bit ADC design tracks the software-quantized error.
        assert (
            abs(row["1-bit+ADC (%)"] - row["software 1-bit (%)"]) < 1.0
        ), row
        # The complete SEI design stays close to the quantized network.
        assert row["SEI (%)"] <= row["software 1-bit (%)"] + 2.0, row
