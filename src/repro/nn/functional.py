"""Low-level numerical primitives for the numpy CNN substrate.

This module implements the convolution and pooling arithmetic used by the
layer classes in :mod:`repro.nn.layers`.  Convolution is implemented with
the classic ``im2col`` transformation so that the heavy lifting happens in
a single BLAS matmul — exactly the "conv kernel as matrix-vector
multiplication" view the paper relies on when mapping kernels onto RRAM
crossbars (each crossbar column stores one flattened ``S x S x I`` kernel).

All functions use the layout ``(batch, channels, height, width)`` for
feature maps and ``(out_channels, in_channels, kh, kw)`` for kernels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "conv_output_size",
    "im2col",
    "col2im",
    "conv2d",
    "conv2d_backward",
    "maxpool2d",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "relu",
    "relu_backward",
]


def conv_output_size(
    size: int, kernel: int, stride: int, padding: int, allow_partial: bool = False
) -> int:
    """Return the spatial output size of a convolution/pooling window.

    With ``allow_partial=True`` a trailing partial window is silently
    dropped (floor semantics, the convention for pooling layers — e.g. the
    11x11 maps of the paper's Networks 2/3 pool down to 5x5).  Otherwise a
    partial window raises :class:`ShapeError`.
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"window of size {kernel} (stride {stride}, padding {padding}) "
            f"does not fit input of size {size}"
        )
    if not allow_partial and (size + 2 * padding - kernel) % stride != 0:
        raise ShapeError(
            f"input size {size} with kernel {kernel}, stride {stride}, "
            f"padding {padding} leaves a partial window; adjust the shape"
        )
    return out


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    out: np.ndarray = None,
) -> np.ndarray:
    """Unfold sliding windows of a batch of images into a matrix.

    Parameters
    ----------
    images:
        Array of shape ``(n, c, h, w)``.
    kernel_h, kernel_w:
        Window height and width.
    stride, padding:
        Window stride and symmetric zero padding.
    out:
        Optional preallocated C-contiguous destination of shape
        ``(n * out_h * out_w, c * kernel_h * kernel_w)`` and the same
        dtype as ``images``; batch loops can reuse one buffer instead
        of re-faulting a large fresh allocation per call.

    Returns
    -------
    Array of shape ``(n * out_h * out_w, c * kernel_h * kernel_w)``.  Each
    row is one receptive field flattened in ``(channel, kh, kw)`` order,
    which matches the row ordering used when mapping kernels onto crossbar
    rows.
    """
    if images.ndim != 4:
        raise ShapeError(f"im2col expects a 4D array, got shape {images.shape}")
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        images = np.pad(
            images,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    # Strided view: (n, c, out_h, out_w, kernel_h, kernel_w)
    sn, sc, sh, sw = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # -> (n, out_h, out_w, c, kernel_h, kernel_w) then flatten.
    rows = n * out_h * out_w
    width = c * kernel_h * kernel_w
    if out is not None:
        if (
            out.shape != (rows, width)
            or out.dtype != images.dtype
            or not out.flags["C_CONTIGUOUS"]
        ):
            raise ShapeError(
                f"im2col out must be C-contiguous {(rows, width)} "
                f"{images.dtype}, got {out.shape} {out.dtype}"
            )
        np.copyto(
            out.reshape(n, out_h, out_w, c, kernel_h, kernel_w),
            windows.transpose(0, 2, 3, 1, 4, 5),
        )
        return out
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(rows, width)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col` used by the convolution backward pass.

    Overlapping window contributions are accumulated (summed), which is the
    correct adjoint of the unfolding operation.
    """
    n, c, h, w = image_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    expected_rows = n * out_h * out_w
    expected_cols = c * kernel_h * kernel_w
    if cols.shape != (expected_rows, expected_cols):
        raise ShapeError(
            f"col2im expected shape {(expected_rows, expected_cols)}, "
            f"got {cols.shape}"
        )

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    windows = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 1, 2, 4, 5
    )
    for i in range(kernel_h):
        for j in range(kernel_w):
            padded[
                :,
                :,
                i : i + out_h * stride : stride,
                j : j + out_w * stride : stride,
            ] += windows[:, :, :, :, i, j]

    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    images: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """2D convolution (technically cross-correlation, as in all CNN code).

    Parameters
    ----------
    images:
        ``(n, c_in, h, w)`` input feature maps.
    weights:
        ``(c_out, c_in, kh, kw)`` kernels.
    bias:
        Optional ``(c_out,)`` bias.

    Returns
    -------
    ``(output, cols)`` where ``output`` has shape ``(n, c_out, out_h,
    out_w)`` and ``cols`` is the im2col matrix, returned so the backward
    pass (and the crossbar mapper) can reuse it.
    """
    if weights.ndim != 4:
        raise ShapeError(f"conv2d weights must be 4D, got {weights.shape}")
    c_out, c_in, kh, kw = weights.shape
    n, c, h, w = images.shape
    if c != c_in:
        raise ShapeError(
            f"input has {c} channels but kernels expect {c_in} channels"
        )
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(images, kh, kw, stride, padding)
    weight_matrix = weights.reshape(c_out, -1)  # (c_out, c_in*kh*kw)
    out = cols @ weight_matrix.T
    if bias is not None:
        out = out + bias
    output = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(output), cols


def conv2d_backward(
    grad_output: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d`.

    Returns ``(grad_images, grad_weights, grad_bias)``.
    """
    c_out, c_in, kh, kw = weights.shape
    n = grad_output.shape[0]
    # (n, c_out, oh, ow) -> (n*oh*ow, c_out)
    grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, c_out)

    grad_bias = grad_flat.sum(axis=0)
    grad_weight_matrix = grad_flat.T @ cols  # (c_out, c_in*kh*kw)
    grad_weights = grad_weight_matrix.reshape(weights.shape)

    grad_cols = grad_flat @ weights.reshape(c_out, -1)
    grad_images = col2im(grad_cols, image_shape, kh, kw, stride, padding)
    return grad_images, grad_weights, grad_bias


def maxpool2d(
    images: np.ndarray, pool: int, stride: int | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling over non-overlapping (by default) square windows.

    Returns ``(output, argmax)`` where ``argmax`` holds, for each output
    element, the flat index of the winning element inside its window; it is
    consumed by :func:`maxpool2d_backward`.
    """
    stride = pool if stride is None else stride
    n, c, h, w = images.shape
    out_h = conv_output_size(h, pool, stride, 0, allow_partial=True)
    out_w = conv_output_size(w, pool, stride, 0, allow_partial=True)

    sn, sc, sh, sw = images.strides
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=(n, c, out_h, out_w, pool, pool),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, out_h, out_w, pool * pool)
    argmax = flat.argmax(axis=-1)
    output = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    return np.ascontiguousarray(output), argmax


def maxpool2d_forward(
    images: np.ndarray, pool: int, stride: int | None = None
) -> np.ndarray:
    """Inference-only max pooling: values of :func:`maxpool2d`, no argmax.

    The full :func:`maxpool2d` materialises every window to track winner
    indices for the backward pass — an allocation and an argmax scan that
    inference never consumes.  Here the window maximum accumulates over
    the ``pool * pool`` strided offset views with :func:`np.maximum`, so
    no window copy is made; this is the hot pooling path of the fused
    inference/search engine.
    """
    stride = pool if stride is None else stride
    n, c, h, w = images.shape
    out_h = conv_output_size(h, pool, stride, 0, allow_partial=True)
    out_w = conv_output_size(w, pool, stride, 0, allow_partial=True)

    output: np.ndarray | None = None
    h_stop = (out_h - 1) * stride + 1
    w_stop = (out_w - 1) * stride + 1
    for i in range(pool):
        for j in range(pool):
            window = images[:, :, i : i + h_stop : stride, j : j + w_stop : stride]
            if output is None:
                output = np.ascontiguousarray(window)
            else:
                np.maximum(output, window, out=output)
    assert output is not None
    return output


def maxpool2d_backward(
    grad_output: np.ndarray,
    argmax: np.ndarray,
    image_shape: Tuple[int, int, int, int],
    pool: int,
    stride: int | None = None,
) -> np.ndarray:
    """Backward pass of :func:`maxpool2d`: routes gradients to the argmax."""
    stride = pool if stride is None else stride
    n, c, h, w = image_shape
    out_h, out_w = grad_output.shape[2], grad_output.shape[3]
    grad_images = np.zeros(image_shape, dtype=grad_output.dtype)

    # Window-local coordinates of each winner.
    win_i = argmax // pool
    win_j = argmax % pool
    base_i = (np.arange(out_h) * stride)[None, None, :, None]
    base_j = (np.arange(out_w) * stride)[None, None, None, :]
    rows = (base_i + win_i).reshape(n, c, -1)
    cols_idx = (base_j + win_j).reshape(n, c, -1)

    n_idx = np.arange(n)[:, None, None]
    c_idx = np.arange(c)[None, :, None]
    np.add.at(
        grad_images,
        (n_idx, c_idx, rows, cols_idx),
        grad_output.reshape(n, c, -1),
    )
    return grad_images


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit, the paper's non-linear neuron (h = max(g, 0))."""
    return np.maximum(x, 0.0)


def relu_backward(grad_output: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Backward pass of :func:`relu` given the forward input ``x``."""
    return grad_output * (x > 0)
