"""Logging helpers: one named logger tree, verbosity mapping, stdout.

All of ``repro`` logs under the ``repro`` logger namespace
(``repro.cli``, ``repro.zoo``, ...).  :func:`get_logger` is the single
entry point modules use; :func:`configure` is called once by the CLI (or
a test) to attach a handler and map a ``-v``/``-q`` count to a level.

The handler resolves ``sys.stdout`` at emit time rather than capturing
the stream object at configure time, so output lands wherever stdout
currently points (pytest's ``capsys``, a shell redirect started later).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "configure", "verbosity_level", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"


class _StdoutHandler(logging.StreamHandler):
    """StreamHandler bound to *current* ``sys.stdout`` at emit time."""

    def __init__(self) -> None:
        super().__init__(sys.stdout)

    @property
    def stream(self):
        return sys.stdout

    @stream.setter
    def stream(self, value) -> None:
        # StreamHandler.__init__ assigns self.stream; ignore — we always
        # resolve sys.stdout dynamically.
        pass

    def handleError(self, record) -> None:
        # A downstream pipe closing early (``repro-cli table5 | head``)
        # is normal CLI life, not an error worth a traceback on stderr.
        if isinstance(sys.exc_info()[1], BrokenPipeError):
            return
        super().handleError(record)


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_level(verbosity: int) -> int:
    """Map a ``-v`` minus ``-q`` count to a logging level.

    0 → INFO (default CLI chatter), 1+ → DEBUG, -1 → WARNING,
    -2 and below → ERROR.
    """
    if verbosity >= 1:
        return logging.DEBUG
    if verbosity == 0:
        return logging.INFO
    if verbosity == -1:
        return logging.WARNING
    return logging.ERROR


def configure(verbosity: int = 0, fmt: Optional[str] = None) -> logging.Logger:
    """Attach (or retune) the stdout handler on the ``repro`` logger.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers, so tests and nested CLI invocations stay clean.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(verbosity_level(verbosity))
    # Propagation stays on: the root logger normally has no handlers (so
    # nothing duplicates), and pytest's caplog relies on it.
    handler = next(
        (h for h in logger.handlers if isinstance(h, _StdoutHandler)), None
    )
    if handler is None:
        handler = _StdoutHandler()
        logger.addHandler(handler)
    handler.setFormatter(
        logging.Formatter(fmt if fmt is not None else "%(message)s")
    )
    return logger
