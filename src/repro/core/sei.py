"""SEI: the SElected-by-Input crossbar structure (§4.1, Fig. 2c).

After 1-bit quantization, an input only decides *whether* a row
contributes (Equ. 4), so the input data moves to the transmission-gate
select port (:class:`repro.hw.peripherals.SEIDecoder`) and the row voltage
port becomes free to carry **common information of the row's weights**.
Equ. 6 shows what that buys: a weighted merge

    sum_{in_j = 1} sum_k A_k * w(k)_j  >  Thres - B

runs inside a *single* crossbar when each weight's K components (bit
slices, signs) occupy K cells in the same column and the k-th component's
row is driven with voltage ``A_k * v_com``.  For 8-bit weights on 4-bit
cells with signs, K = 4: A = (+16, +1, -16, -1) — the "shift and add" and
the subtraction happen in the analog current sum, so no ADC-based merging
is needed; the column current goes straight to a sense amplifier.

:class:`SEIMatrix` is the behavioural model: it performs exactly the cell
decomposition the hardware stores (per-slice nibbles on a 4-bit device,
optionally with programming noise) and computes the weighted analog sum.
Physical geometry (rows = K x logical rows, +1 threshold column when the
dynamic-threshold variant is used) is exposed for the mapper/cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MappingError, ShapeError
from repro.hw.array import DeviceArrayBase, TemporalConfig, make_array
from repro.hw.device import RRAMDevice
from repro.nn.layers import Layer

from repro.core.matrix_compute import (
    apply_matrix_fn,
    ensure_binary,
    layer_weight_matrix,
)

__all__ = ["SEIMatrix", "sei_layer_compute", "decompose_weights"]


def decompose_weights(
    weights: np.ndarray,
    weight_bits: int,
    cell_bits: int,
    signed: bool = True,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Split weights into per-cell slice magnitudes.

    Returns ``(slices, coefficients, scale)`` where

    * ``slices`` has shape ``(num_slices, rows, cols)`` with entries in
      [0, 1] — the normalised cell contents, most significant slice first,
      positive slices before negative ones;
    * ``coefficients`` are the extra-port weights ``A_k`` such that the
      represented matrix is ``scale * sum_k A_k * slices_k * cell_max``
      with ``cell_max = 2**cell_bits - 1``;
    * ``scale`` maps the integer representation back to weight units.

    With ``signed=False`` the weights must be non-negative and only the
    positive slice group is emitted (half the cells) — the layout the
    dynamic-threshold structure uses after its linear transformation.
    """
    if weight_bits % cell_bits != 0:
        raise ConfigurationError(
            f"weight bits ({weight_bits}) must be a multiple of cell bits "
            f"({cell_bits})"
        )
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ShapeError(f"weights must be 2D, got shape {weights.shape}")
    if not signed and (weights < 0).any():
        raise ConfigurationError(
            "signed=False requires non-negative weights; apply the "
            "linear transformation first"
        )

    num_slices = weight_bits // cell_bits
    cell_max = 2**cell_bits - 1
    int_max = 2**weight_bits - 1

    w_abs_max = float(np.abs(weights).max(initial=0.0))
    if w_abs_max == 0.0:
        w_abs_max = 1.0
    # Magnitudes quantized to `weight_bits` integers.
    magnitudes = np.rint(np.abs(weights) / w_abs_max * int_max).astype(np.int64)
    signs = np.sign(weights)

    slices: List[np.ndarray] = []
    coefficients: List[float] = []
    sign_groups = (1.0, -1.0) if signed else (1.0,)
    for sign_value in sign_groups:
        if signed:
            masked = np.where(signs == sign_value, magnitudes, 0)
        else:
            masked = magnitudes
        for k in range(num_slices - 1, -1, -1):
            nibble = (masked >> (k * cell_bits)) & cell_max
            slices.append(nibble / cell_max)
            coefficients.append(sign_value * float(2 ** (k * cell_bits)))

    scale = w_abs_max / int_max
    return np.stack(slices), np.asarray(coefficients), scale


@dataclass
class SEIMatrix:
    """One logical weight matrix implemented as a single SEI crossbar.

    Parameters
    ----------
    weights:
        Signed ``(rows, cols)`` weight matrix (already re-scaled by the
        quantization pipeline).
    device:
        RRAM device storing each slice; its ``bits`` is the cell precision.
    weight_bits:
        Weight precision to represent (8 in the paper).
    max_crossbar_size:
        Fabrication limit checked against the *physical* geometry.
    signed_inputs:
        True uses positive/negative extra-port voltages for the two sign
        groups (bipolar devices).  For unipolar devices use the
        dynamic-threshold structure in
        :mod:`repro.core.dynamic_threshold` instead.
    ir_drop_lambda:
        First-order IR-drop coefficient: column outputs attenuate by
        ``1 / (1 + lambda * physical_rows / max_crossbar_size)``.  Note
        that a plain SEI column compares against an *external* SA
        reference, so attenuation biases the decision; the Fig. 4
        dynamic-threshold structure generates the reference inside the
        same crossbar and is immune (see DynamicThresholdMatrix).
    rng:
        Source of programming noise (only used when the device is noisy).
    temporal:
        Optional :class:`~repro.hw.array.TemporalConfig`; when enabled
        the cells live on a :class:`~repro.hw.array.
        TemporalSimDeviceArray` and age between computes.
    """

    weights: np.ndarray
    device: Optional[RRAMDevice] = None
    weight_bits: int = 8
    max_crossbar_size: int = 512
    signed_inputs: bool = True
    ir_drop_lambda: float = 0.0
    rng: Optional[np.random.Generator] = None
    temporal: Optional[TemporalConfig] = None

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.device = self.device if self.device is not None else RRAMDevice()
        if not self.signed_inputs and (self.weights < 0).any():
            raise ConfigurationError(
                "negative weights need signed extra-port inputs; for "
                "unipolar devices use DynamicThresholdMatrix"
            )
        slices, coefficients, scale = decompose_weights(
            self.weights, self.weight_bits, self.device.bits
        )
        self._coefficients = coefficients
        self._scale = scale

        if self.physical_rows > self.max_crossbar_size:
            raise MappingError(
                f"SEI needs {self.physical_rows} physical rows for "
                f"{self.logical_rows} weights, exceeding the "
                f"{self.max_crossbar_size} limit; split the matrix "
                "(repro.core.splitting)"
            )
        if self.cols > self.max_crossbar_size:
            raise MappingError(
                f"{self.cols} columns exceed the {self.max_crossbar_size} "
                "crossbar limit"
            )

        # Program every slice through the device array: this applies the
        # 4-bit level quantization (slices are exact nibbles, so
        # quantization is lossless here) and programming variation if
        # configured.  The array programs a (K, rows, cols) stack one
        # leading slice at a time, consuming the RNG stream exactly like
        # the historical per-slice loop here.
        rng = self.rng if self.rng is not None else np.random.default_rng()
        self.array: DeviceArrayBase = make_array(
            self.device, temporal=self.temporal, rng=rng
        )
        self.array.program(slices, rng)

        # Fused-kernel state.  The K slices of a column all feed the same
        # analog current sum (Equ. 6), so the crossbar is equivalent to ONE
        # signed matrix; collapsing it turns compute() into a single BLAS
        # matmul.  With read noise the collapse must happen per read (the
        # noise is per-cell per-read); with an aging array it must happen
        # per *generation* — the cache below is keyed on the array's
        # generation counter, so a static array collapses exactly once.
        self._fused_cache: Optional[Tuple[int, np.ndarray]] = None

    # -- geometry ------------------------------------------------------------
    @property
    def logical_rows(self) -> int:
        return self.weights.shape[0]

    @property
    def cols(self) -> int:
        return self.weights.shape[1]

    @property
    def cells_per_weight(self) -> int:
        return len(self._coefficients)

    @property
    def physical_rows(self) -> int:
        """Crossbar rows: one per (weight, slice/sign component)."""
        return self.logical_rows * self.cells_per_weight

    @property
    def num_cells(self) -> int:
        return self.physical_rows * self.cols

    @property
    def ir_drop_attenuation(self) -> float:
        """Multiplicative output attenuation from wordline resistance."""
        if self.ir_drop_lambda < 0:
            raise ConfigurationError("ir_drop_lambda must be non-negative")
        return 1.0 / (
            1.0
            + self.ir_drop_lambda * self.physical_rows / self.max_crossbar_size
        )

    # -- behaviour ------------------------------------------------------------
    @property
    def scale(self) -> float:
        """Integer-representation to weight-unit conversion factor."""
        return self._scale

    @property
    def coefficients(self) -> np.ndarray:
        """Extra-port merge coefficients ``A_k`` (Equ. 6)."""
        return self._coefficients

    @property
    def effective_weights(self) -> np.ndarray:
        """The signed matrix the cells *currently* represent.

        Reads the device array's present state, so on a temporal backend
        this reflects accumulated drift/retention/disturb.
        """
        cell_max = 2**self.device.bits - 1
        recon = np.zeros_like(self.weights)
        for coeff, cells in zip(self._coefficients, self.array.normalized):
            recon = recon + coeff * cells * cell_max
        return recon * self._scale

    @property
    def fused_matrix(self) -> Optional[np.ndarray]:
        """Pre-collapsed signed matrix (incl. IR drop), or None with read noise.

        When reads are noiseless the crossbar is a static linear map, and
        ``compute(bits) == bits @ fused_matrix`` exactly; composite
        structures (splitting, analog merge) stack these to fuse across
        crossbars.  The collapse is cached per device-array generation:
        static arrays collapse once, aging arrays re-collapse lazily
        whenever their state moved.
        """
        if self.device.read_sigma > 0:
            return None
        generation = self.array.generation
        cache = self._fused_cache
        if cache is None or cache[0] != generation:
            cache = (
                generation,
                self.effective_weights * self.ir_drop_attenuation,
            )
            self._fused_cache = cache
        return cache[1]

    def read_effective_weights(
        self, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """One noisy read of the whole crossbar, collapsed to a signed matrix.

        All ``K x rows x cols`` cells are read in a single vectorized call
        (one RNG draw covering every slice — the same stream a per-slice
        read loop would consume) and the slice currents are merged by the
        extra-port coefficients, exactly the analog sum of Equ. 6.
        """
        if self.device.read_sigma <= 0:
            return self.effective_weights
        rng = rng if rng is not None else np.random.default_rng()
        noisy = self.array.read_normalized(rng)
        cell_max = 2**self.device.bits - 1
        return (
            np.tensordot(self._coefficients, noisy, axes=1)
            * cell_max
            * self._scale
        )

    def compute(self, bits: np.ndarray, validate: bool = True) -> np.ndarray:
        """Analog column outputs for 1-bit inputs (the SA's input).

        ``bits`` is ``(n, logical_rows)`` (or 1D) with 0/1 entries; the
        read includes the device's read noise if configured.
        ``validate=False`` skips the 0/1 check for callers that already
        validated the bits in a more compact layout (pre-im2col).

        Fused kernel: the K weight slices collapse into one signed matrix
        (at ``__post_init__`` time when reads are noiseless, per read
        otherwise), so the whole crossbar pass is a single BLAS matmul
        instead of a Python loop over slices.  Seeded noise draws are
        bit-identical to the retained per-slice reference
        (:meth:`compute_reference`).
        """
        bits = self._check_bits(bits, validate)
        fused = self.fused_matrix
        if fused is not None:
            out = bits @ fused
        else:
            rng = self.rng if self.rng is not None else np.random.default_rng()
            matrix = self.read_effective_weights(rng)
            out = (bits @ matrix) * self.ir_drop_attenuation
        self.array.note_reads(self._read_positions(bits))
        return out

    def compute_reference(self, bits: np.ndarray) -> np.ndarray:
        """The pre-fusion slice-loop implementation, kept verbatim.

        Serves as the equivalence oracle for :meth:`compute` and as the
        baseline side of ``benchmarks/bench_perf_engine.py``.  Given the
        same RNG state it draws exactly the same read noise as the fused
        kernel (slice-sequential draws and one stacked draw consume the
        PCG64 stream identically).
        """
        bits = np.asarray(bits, dtype=np.float64)
        if bits.shape[-1] != self.logical_rows:
            raise ShapeError(
                f"input has {bits.shape[-1]} bits, matrix has "
                f"{self.logical_rows} logical rows"
            )
        unique = np.unique(bits)
        if unique.size and not np.all(np.isin(unique, (0.0, 1.0))):
            raise ShapeError("SEI inputs must be 0/1 selection signals")

        rng = self.rng if self.rng is not None else np.random.default_rng()
        cell_max = 2**self.device.bits - 1
        span = self.device.g_max - self.device.g_min
        result = np.zeros(bits.shape[:-1] + (self.cols,))
        for coeff, cells in zip(self._coefficients, self.array.normalized):
            if self.device.read_sigma > 0:
                conductance = self.device.read(
                    self.device.g_min + cells * span, rng
                )
                cells = self.device.conductance_to_normalized(conductance)
            result = result + coeff * (bits @ cells) * cell_max
        out = result * self._scale * self.ir_drop_attenuation
        self.array.note_reads(self._read_positions(bits))
        return out

    @staticmethod
    def _read_positions(bits: np.ndarray) -> int:
        """MVM positions in a batch: one read event per input vector."""
        return int(np.prod(bits.shape[:-1], dtype=np.int64))

    def _check_bits(
        self, bits: np.ndarray, validate: bool = True
    ) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.float64)
        if bits.shape[-1] != self.logical_rows:
            raise ShapeError(
                f"input has {bits.shape[-1]} bits, matrix has "
                f"{self.logical_rows} logical rows"
            )
        if validate:
            ensure_binary(bits, "SEI inputs")
        return bits


def sei_layer_compute(
    layer: Layer,
    device: Optional[RRAMDevice] = None,
    weight_bits: int = 8,
    max_crossbar_size: int = 512,
    rng: Optional[np.random.Generator] = None,
    temporal: Optional[TemporalConfig] = None,
):
    """Build a BinarizedNetwork layer-compute hook backed by an SEIMatrix.

    Raises :class:`MappingError` if the layer needs splitting; use
    :func:`repro.core.splitting.split_layer_compute` in that case.  The
    hook exposes its backing structure as ``compute.matrix`` (and the
    live device array as ``compute.array``) so aging campaigns can
    advance the device clock between inference passes.
    """
    matrix = SEIMatrix(
        layer_weight_matrix(layer),
        device=device,
        weight_bits=weight_bits,
        max_crossbar_size=max_crossbar_size,
        rng=rng,
        temporal=temporal,
    )

    def compute(inner_layer: Layer, x: np.ndarray) -> np.ndarray:
        return apply_matrix_fn(inner_layer, x, matrix.compute)

    compute.matrix = matrix
    compute.array = matrix.array
    return compute
