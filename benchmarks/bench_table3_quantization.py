"""Table 3: error rate before vs after 1-bit quantization (Algorithm 1).

Paper (MNIST, thresholds optimised on the training set, errors on the
test set):

    Network            1       2       3
    Before Quant.   0.93%   2.88%   1.53%
    After Quant.    1.63%   3.42%   2.07%

i.e. the classification accuracy reduces by less than ~1% after pushing
every intermediate value down to a single bit.  We regenerate the same
rows on the synthetic digit task.
"""

import pytest

from repro.analysis import error_rate_pct, mcnemar_test, wilson_interval
from repro.arch import format_table
from repro.configs import get_network_spec
from repro.zoo import get_trained_network

from benchmarks.conftest import heading


def run_table3(quantized_models, dataset):
    rows = []
    total = len(dataset.test)
    for name, qm in quantized_models.items():
        spec = get_network_spec(name)
        low, high = wilson_interval(
            round(qm.quantized_test_error * total), total
        )
        float_net = get_trained_network(name, dataset=dataset)
        float_preds = float_net.predict(dataset.test.images).argmax(1)
        quant_preds = (
            qm.search.binarized().predict(dataset.test.images).argmax(1)
        )
        mcnemar = mcnemar_test(float_preds, quant_preds, dataset.test.labels)
        rows.append(
            {
                "network": name,
                "before quant (%)": error_rate_pct(qm.float_test_error),
                "after quant (%)": error_rate_pct(qm.quantized_test_error),
                "95% CI": f"[{100 * low:.2f}, {100 * high:.2f}]",
                "McNemar p": mcnemar.p_value,
                "delta (%)": error_rate_pct(qm.quantized_test_error)
                - error_rate_pct(qm.float_test_error),
                "paper before (%)": 100 * spec.paper_error_before,
                "paper after (%)": 100 * spec.paper_error_after,
            }
        )
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_quantization_error(benchmark, quantized_models, dataset):
    rows = benchmark.pedantic(
        run_table3,
        args=(quantized_models, dataset),
        rounds=1,
        iterations=1,
    )

    heading("Table 3 — error rate of the quantization method")
    print(format_table(rows, floatfmt="{:.3f}"))

    for row in rows:
        # Quantization must not help for free nor cost much: the paper's
        # headline is "accuracy only reduces less than 1%"; we allow a
        # slightly wider band on the synthetic task (see EXPERIMENTS.md).
        assert row["after quant (%)"] >= row["before quant (%)"] - 0.2, row
        assert row["delta (%)"] < 1.6, row
        # The quantized network is still an excellent classifier.
        assert row["after quant (%)"] < 5.0, row
