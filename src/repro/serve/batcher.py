"""Micro-batching request coalescer with bounded-queue backpressure.

The SEI pipeline is an embarrassingly batchable MVM chain: running 64
requests through one forward pass costs far less than 64 single-sample
passes (the per-call Python/layer overhead amortises and the matmuls
vectorise).  :class:`MicroBatcher` exploits that for concurrent traffic:

* clients call :meth:`MicroBatcher.submit` and get a
  :class:`concurrent.futures.Future` back immediately;
* a collector thread coalesces pending requests into batches bounded by
  ``max_batch_size`` *and* a coalescing deadline (``max_delay_ms``
  measured from the first request of the batch), so a lone request is
  never stalled longer than the deadline waiting for company;
* batches run on a worker pool (numpy releases the GIL inside the
  matmuls, so on multi-core hosts workers add real parallelism);
* the admission queue is bounded: when ``max_queue_depth`` requests are
  pending, :meth:`submit` blocks (backpressure) or — with a timeout —
  raises :class:`repro.errors.BackpressureError` so callers can shed
  load instead of queueing unboundedly.

Because :class:`repro.serve.session.InferenceSession` executes in fixed
hardware tiles, the results a request receives are bit-identical no
matter how the batcher happened to coalesce it (asserted in
``tests/test_serve.py`` and ``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.errors import BackpressureError, ConfigurationError, ServeError
from repro.serve.clock import SYSTEM_CLOCK, Clock

__all__ = ["BatcherConfig", "BatcherStats", "MicroBatcher"]

logger = obs.get_logger("serve")

#: Log-spaced edges for the request-latency histogram, in milliseconds.
LATENCY_EDGES_MS = (
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


@dataclass(frozen=True)
class BatcherConfig:
    """Coalescing and capacity parameters of one micro-batcher."""

    #: Largest batch one forward pass receives.
    max_batch_size: int = 64
    #: Coalescing deadline from the first request of a batch; a batch is
    #: dispatched as soon as it is full *or* this delay elapses.
    max_delay_ms: float = 2.0
    #: Bounded admission queue: submits beyond this many pending
    #: requests block (or raise, with a timeout) — backpressure.
    max_queue_depth: int = 256
    #: Worker threads executing batches.
    workers: int = 2

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_delay_ms < 0:
            raise ConfigurationError(
                f"max_delay_ms must be >= 0, got {self.max_delay_ms}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )


@dataclass
class BatcherStats:
    """Always-on lifetime statistics (obs-independent, used by benches)."""

    requests: int = 0
    batches: int = 0
    rejected: int = 0
    failed_batches: int = 0
    max_observed_queue_depth: int = 0
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> Optional[float]:
        return self.requests / self.batches if self.batches else None

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "rejected": self.rejected,
            "failed_batches": self.failed_batches,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size_seen": max(self.batch_sizes, default=0),
            "max_observed_queue_depth": self.max_observed_queue_depth,
        }


class _Request:
    __slots__ = ("x", "future", "enqueued_at", "rid")

    def __init__(
        self, x: np.ndarray, future: Future, enqueued_at: float, rid: int
    ):
        self.x = x
        self.future = future
        self.enqueued_at = enqueued_at
        self.rid = rid


_STOP = object()


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into bounded micro-batches.

    Parameters
    ----------
    target:
        Either an object with an ``infer_batch(images) -> outputs``
        method (an :class:`~repro.serve.session.InferenceSession`) or a
        bare callable with that signature.  Outputs must be indexable
        along axis 0 in request order.
    config:
        Coalescing/capacity parameters; defaults to
        :class:`BatcherConfig`.
    clock:
        Time source for every recorded timestamp (enqueue, batch start
        and end, latency histograms).  Defaults to the real
        :data:`~repro.serve.clock.SYSTEM_CLOCK`; tests inject a
        :class:`~repro.serve.clock.FakeClock` so latency accounting is
        exact instead of wall-clock-tolerant.  The *coalescing wait*
        itself stays on real time — it parks a thread in
        ``queue.get`` — so a fake clock changes what gets measured,
        never whether threads wake up.

    Use as a context manager (``with session.batcher() as mb: ...``) or
    call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        target: Union[Callable[[np.ndarray], np.ndarray], object],
        config: Optional[BatcherConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        infer = getattr(target, "infer_batch", None)
        if infer is None:
            if not callable(target):
                raise ConfigurationError(
                    "MicroBatcher target must be an InferenceSession or a "
                    f"callable, got {type(target).__name__}"
                )
            infer = target
        self._infer = infer
        self.config = config if config is not None else BatcherConfig()
        self.clock = clock if clock is not None else SYSTEM_CLOCK
        self.stats = BatcherStats()
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=self.config.max_queue_depth
        )
        self._stats_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._collector: Optional[threading.Thread] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._abort = False
        self._abort_error: Optional[BaseException] = None
        #: Requests currently inside a dispatched batch (guarded by
        #: ``_stats_lock``): :meth:`abort` fails these directly so a
        #: killed shard's waiters never hang on a stalled worker.
        self._inflight_requests: set = set()
        # In-flight batch limiter.  Without it the collector would drain
        # the bounded admission queue straight into the executor's
        # *unbounded* internal queue and backpressure would never engage;
        # with it, the collector only pulls work while a worker is free,
        # so pending requests accumulate in the admission queue and
        # ``submit`` genuinely blocks at ``max_queue_depth``.
        self._inflight = threading.Semaphore(self.config.workers)
        #: Edges for the batch-size histogram (one bin per size).
        self._size_edges = np.arange(self.config.max_batch_size + 1) + 0.5
        #: Optional flight recorder (a :class:`repro.obs.FlightRecorder`);
        #: attach one via :meth:`repro.obs.TelemetryPlane.attach` to get
        #: per-request/per-batch events into the bounded ring.
        self.flight = None
        #: Optional dedicated :class:`repro.obs.Recorder`.  Unset (the
        #: default), metrics go to the process-global recorder as
        #: before; a gateway shard points this at its *own* recorder so
        #: per-shard series stay separable behind the aggregated
        #: ``/metrics`` endpoint.
        self.recorder = None
        self._rid = itertools.count(1)
        # What the flight events say about the compute behind this
        # batcher: engine name + session digest when the target is an
        # InferenceSession, best-effort otherwise.
        session_config = getattr(target, "config", None)
        engine_spec = getattr(session_config, "engine", None)
        self._target_info = {
            "engine": getattr(engine_spec, "name", None),
            "session": getattr(target, "digest", None),
        }

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._collector is not None and self._collector.is_alive()

    def start(self) -> "MicroBatcher":
        with self._state_lock:
            if self._collector is not None:
                raise ServeError("MicroBatcher is already started")
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="serve-worker",
            )
            self._collector = threading.Thread(
                target=self._collect_loop, name="serve-collector", daemon=True
            )
            self._collector.start()
        logger.debug(
            "batcher started: %d workers, batch<=%d, delay<=%.1fms, "
            "queue<=%d",
            self.config.workers,
            self.config.max_batch_size,
            self.config.max_delay_ms,
            self.config.max_queue_depth,
        )
        return self

    def stop(
        self,
        drain: bool = True,
        error: Optional[BaseException] = None,
    ) -> None:
        """Shut down; ``drain=True`` finishes pending requests first.

        With ``drain=False`` pending (not yet dispatched) requests are
        cancelled — or, when ``error`` is given, *failed* with that
        exception instead.  The error form is what a dying shard uses:
        every waiter gets a :class:`~repro.errors.ShardDeadError`
        promptly rather than a bare cancellation (or worse, a hang).
        Idempotent.
        """
        with self._state_lock:
            if self._collector is None or self._closed:
                return
            self._closed = True
            self._abort = not drain
            self._abort_error = error if not drain else None
        self._queue.put(_STOP)
        self._collector.join()
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        # Anything still queued was behind the sentinel of an aborted
        # shutdown: resolve it so waiters do not hang.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                self._drop_request(item)

    def _drop_request(self, request: "_Request") -> None:
        """Resolve one undispatched request during an aborted shutdown."""
        if self._abort_error is not None:
            if not request.future.done():
                request.future.set_exception(self._abort_error)
        else:
            request.future.cancel()

    def abort(self, error: Optional[BaseException] = None) -> None:
        """Abrupt, non-blocking shutdown: fail everything, wait for nothing.

        Unlike :meth:`stop` this never joins workers, so it returns
        promptly even when a batch is wedged inside ``infer``.  Every
        queued *and* in-flight request is failed with ``error``
        (default: a :class:`~repro.errors.ServeError`); a wedged
        worker's late ``set_result`` on an already-failed future is a
        silent no-op.  This is the crash path a dying gateway shard
        takes — liveness over graceful drain.
        """
        error = (
            error
            if error is not None
            else ServeError("MicroBatcher aborted")
        )
        with self._state_lock:
            if self._collector is None:
                return
            already = self._closed
            self._closed = True
            self._abort = True
            self._abort_error = error
        if not already:
            self._queue.put(_STOP)
        # A collector parked on the in-flight semaphore (all workers
        # busy) would never see the sentinel; hand it a free slot.
        self._inflight.release()
        # Fail whatever is still queued (racing the collector over the
        # queue is fine — each item is resolved by exactly one side).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                self._drop_request(item)
        self._queue.put(_STOP)  # the drain above may have eaten it
        with self._stats_lock:
            inflight = list(self._inflight_requests)
        for request in inflight:
            if not request.future.done():
                request.future.set_exception(error)
        executor = self._executor
        if executor is not None:
            executor.shutdown(wait=False)

    def __enter__(self) -> "MicroBatcher":
        if not self.running:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- submission ------------------------------------------------------
    def submit(self, x: np.ndarray, timeout: Optional[float] = None) -> Future:
        """Enqueue one sample; resolves to that sample's output row.

        Blocks while the admission queue is full (backpressure).  With a
        ``timeout`` (seconds), raises
        :class:`~repro.errors.BackpressureError` instead of waiting
        longer.
        """
        if self._closed or self._collector is None:
            raise ServeError(
                "MicroBatcher is not running (call start() or use it as a "
                "context manager)"
            )
        # np.asarray is a no-op view for ndarray inputs: the request
        # carries the caller's buffer by reference (zero-copy handoff
        # between the gateway front-end and the shard's worker pool).
        request = _Request(
            np.asarray(x), Future(), self.clock.monotonic(), next(self._rid)
        )
        try:
            self._queue.put(request, block=True, timeout=timeout)
        except queue.Full:
            with self._stats_lock:
                self.stats.rejected += 1
            rec = self._rec()
            if rec is not None:
                rec.metrics.inc("serve/rejected")
            flight = self.flight
            if flight is not None:
                flight.record(
                    "rejected",
                    rid=request.rid,
                    queue_depth=self.config.max_queue_depth,
                    timeout_s=timeout,
                    **self._target_info,
                )
            raise BackpressureError(
                f"serving queue full ({self.config.max_queue_depth} pending "
                f"requests) and no slot freed within {timeout}s"
            ) from None
        depth = self._note_queue_depth()
        flight = self.flight
        if flight is not None:
            flight.record("enqueue", rid=request.rid, queue_depth=depth)
        return request.future

    def submit_many(
        self, xs: Sequence[np.ndarray], timeout: Optional[float] = None
    ) -> List[Future]:
        """Submit several samples; one future per sample, in order."""
        return [self.submit(x, timeout=timeout) for x in xs]

    # -- internals -------------------------------------------------------
    def _rec(self):
        """The recorder metric writes go to (dedicated or global)."""
        return self.recorder if self.recorder is not None else obs.active()

    def _note_queue_depth(self) -> int:
        """Sample the queue depth once; update gauge + high-watermark.

        Both ``submit`` and the drain loop used to write the
        ``serve/queue_depth`` gauge independently, so a stale producer
        write could land after the drain's fresher one.  Routing both
        through one helper makes each write a fresh ``qsize()`` sample
        and keeps the ``serve/queue_depth_high_watermark`` gauge in
        lock-step with ``stats.max_observed_queue_depth``.
        """
        depth = self._queue.qsize()
        if self._closed:
            # The _STOP sentinel is queued during shutdown; it is not a
            # pending request and must not count as one.
            depth = max(0, depth - 1)
        with self._stats_lock:
            if depth > self.stats.max_observed_queue_depth:
                self.stats.max_observed_queue_depth = depth
            watermark = self.stats.max_observed_queue_depth
        rec = self._rec()
        if rec is not None:
            rec.metrics.set_gauge("serve/queue_depth", depth)
            rec.metrics.set_gauge(
                "serve/queue_depth_high_watermark", watermark
            )
        return depth

    def _collect_loop(self) -> None:
        cfg = self.config
        delay = cfg.max_delay_ms / 1e3
        while True:
            self._inflight.acquire()
            first = self._queue.get()
            if first is _STOP:
                return
            if self._abort:
                self._drop_request(first)
                self._inflight.release()
                continue
            batch = [first]
            deadline = time.monotonic() + delay
            stop_after = False
            while len(batch) < cfg.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    stop_after = True
                    break
                batch.append(item)
            if self._abort:
                for item in batch:
                    self._drop_request(item)
                self._inflight.release()
                return
            assert self._executor is not None
            try:
                self._executor.submit(self._run_batch, batch)
            except RuntimeError:
                # abort() shut the executor down between our check and
                # the submit; resolve the batch ourselves.
                for item in batch:
                    self._drop_request(item)
                self._inflight.release()
                return
            if stop_after:
                return

    def _run_batch(self, batch: List[_Request]) -> None:
        with self._stats_lock:
            self._inflight_requests.update(batch)
        try:
            self._run_batch_inner(batch)
        finally:
            with self._stats_lock:
                self._inflight_requests.difference_update(batch)
            self._inflight.release()

    def _run_batch_inner(self, batch: List[_Request]) -> None:
        images = np.stack([request.x for request in batch])
        started = self.clock.monotonic()
        with obs.span("serve.batch", size=len(batch)):
            try:
                outputs = self._infer(images)
            except Exception as exc:  # fan the failure out to every waiter
                with self._stats_lock:
                    self.stats.failed_batches += 1
                rec = self._rec()
                if rec is not None:
                    rec.metrics.inc("serve/failed_batches")
                    rec.metrics.inc("serve/failed_requests", len(batch))
                logger.warning("batch of %d failed: %s", len(batch), exc)
                flight = self.flight
                if flight is not None:
                    flight.record(
                        "batch_failed",
                        rids=[request.rid for request in batch],
                        size=len(batch),
                        error=f"{type(exc).__name__}: {exc}",
                        **self._target_info,
                    )
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
                return
        done = self.clock.monotonic()
        for i, request in enumerate(batch):
            # done() futures were failed by abort() while this batch
            # was in flight; their waiters already have their answer.
            if not request.future.done():
                request.future.set_result(outputs[i])
        with self._stats_lock:
            self.stats.requests += len(batch)
            self.stats.batches += 1
            self.stats.batch_sizes.append(len(batch))
        latencies_ms = [
            (done - request.enqueued_at) * 1e3 for request in batch
        ]
        rec = self._rec()
        if rec is not None:
            rec.metrics.inc("serve/requests", len(batch))
            rec.metrics.inc("serve/batches")
            rec.metrics.observe(
                "serve/batch_size", len(batch), edges=self._size_edges
            )
            rec.metrics.observe(
                "serve/latency_ms",
                np.array(latencies_ms),
                edges=LATENCY_EDGES_MS,
            )
            self._note_queue_depth()
        flight = self.flight
        if flight is not None:
            flight.record(
                "batch",
                rids=[request.rid for request in batch],
                size=len(batch),
                queue_ms=[
                    round((started - request.enqueued_at) * 1e3, 3)
                    for request in batch
                ],
                infer_ms=round((done - started) * 1e3, 3),
                latency_ms=[round(v, 3) for v in latencies_ms],
                **self._target_info,
            )
