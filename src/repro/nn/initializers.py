"""Weight initialisation schemes for the numpy CNN substrate."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["he_normal", "glorot_uniform", "zeros", "get_initializer"]


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He-normal init, appropriate for ReLU networks (the paper's neuron)."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=tuple(shape))


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    fan_out = int(shape[0])
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=tuple(shape))


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (biases)."""
    del rng
    return np.zeros(tuple(shape))


_INITIALIZERS = {
    "he_normal": he_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises ConfigurationError if unknown."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(_INITIALIZERS))
        raise ConfigurationError(
            f"unknown initializer {name!r}; known: {known}"
        ) from None
