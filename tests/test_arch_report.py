"""Tests for repro.arch.report."""

import pytest

from repro.arch import (
    breakdown_rows,
    evaluate_design,
    format_table,
    reference_efficiency_rows,
    table5_rows,
)


class TestBreakdownRows:
    def test_rows_cover_layers_plus_total(self):
        ev = evaluate_design("network1", "dac_adc")
        rows = breakdown_rows(ev.cost)
        assert [r["layer"] for r in rows] == ["conv1", "conv2", "fc", "total"]

    def test_shares_sum_to_one(self):
        ev = evaluate_design("network1", "dac_adc")
        for row in breakdown_rows(ev.cost):
            power = sum(v for k, v in row.items() if k.endswith("power"))
            area = sum(v for k, v in row.items() if k.endswith("area"))
            assert power == pytest.approx(1.0)
            assert area == pytest.approx(1.0)

    def test_fig1_headline_shape(self):
        """Fig. 1: converters dominate every layer of the baseline."""
        ev = evaluate_design("network1", "dac_adc")
        for row in breakdown_rows(ev.cost):
            assert row["DAC power"] + row["ADC power"] > 0.9


class TestTable5Rows:
    def test_row_count_matches_paper(self):
        rows = table5_rows()
        # network1 at 512 and 256 (3 structures each) + networks 2, 3.
        assert len(rows) == 12

    def test_baseline_rows_have_zero_saving(self):
        for row in table5_rows():
            if row["structure"] == "DAC+ADC":
                assert row["energy_saving_pct"] == pytest.approx(0.0)
                assert row["area_saving_pct"] == pytest.approx(0.0)

    def test_custom_size_selection(self):
        rows = table5_rows(
            networks=("network2",), crossbar_sizes={"network2": (128,)}
        )
        assert len(rows) == 3
        assert all(r["crossbar"] == 128 for r in rows)

    def test_sei_efficiency_two_orders_above_references(self):
        """§5.3: SEI ~2 orders of magnitude above FPGA/GPU."""
        rows = table5_rows(networks=("network1",))
        sei = next(r for r in rows if r["structure"] == "SEI")
        for ref in reference_efficiency_rows():
            assert sei["gops_per_j"] > 50 * ref["gops_per_j"]


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "10" in lines[3]

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_float_format(self):
        text = format_table([{"x": 1.23456}], floatfmt="{:.1f}")
        assert "1.2" in text
