"""Performance-engine benchmark: fused kernels vs the retained references.

Measures the two hot paths this repo optimises and records the speedups
in ``BENCH_perf_engine.json`` at the repo root:

* **Algorithm 1 wall-clock** — the full greedy threshold search on
  network2 (two refinement passes, the paper's iterate-until-stable
  loop) with the fused candidate scan: all thresholds are binarized and
  scored in batched matmul passes, prefix activations are cached across
  scans, and converged refinement passes are memoized.  The reference
  engine keeps the per-candidate loop and recollects activations each
  pass.  Both engines produce identical thresholds and search curves
  (asserted here and in ``tests/test_perf_engine.py``).  Target: >= 4x
  (single-core; see the note at ``ALGORITHM1_TARGET``).
* **Noisy SEI inference throughput** — samples/s of the full-hardware
  network2 (:func:`repro.core.hardware_network.assemble_sei_network`)
  with read noise enabled: the fused engine draws the read noise for all
  K bit-slices of a crossbar in one vectorized call and collapses the
  slice/block loops into stacked matmuls; the reference engine keeps the
  per-slice loops.  The two engines are timed interleaved so slow
  machine drift cannot land on one side of the ratio.  Target: >= 3x.
* **Packed popcount inference throughput** — samples/s of network1 on
  the ``packed`` bit-plane engine under the paper's §5 fault regime
  (stuck-at cells, no programming variation): activations pack into
  byte/uint64 bit planes, column currents come from precomputed
  per-group partial-sum tables, firing decisions from integer threshold
  tables, and the DAC layer runs exact-integer float32 with its
  binarize folded into the kernel.  Logits are asserted ``allclose``
  against both the fused and reference engines before timing.
  Targets: >= 9.5x vs reference, >= 2.5x vs fused.
* **Activation-estimation (predict-and-skip) on the upper layers** —
  network1's split upper layer on the fused engine with
  :class:`repro.core.estimate.EstimatorPolicy` enabled in ``exact``
  mode, natural partition.  Two supported schedules are locked: the
  deferred-block vote schedule (``chunk_rows >= block rows``) for
  wall-clock — positions whose §4.3 vote settles early skip the
  remaining block matmuls entirely — and the float32-head checkpoint
  schedule for energy — columns proven decided at the head checkpoint
  let decided positions skip the tail row drive.  Both are asserted
  bit-identical to estimator-off before timing.  Targets: >= 1.3x
  upper-layer wall-clock, >= 30% of row slots skipped, and a reduced
  SEI dynamic-energy estimate on the estimated layer (>= 50% saving).

The report also embeds the :mod:`repro.obs` run manifest and, from one
traced inference pass executed *after* the timings, the hardware
activity counters and SEI dynamic-power estimate for the benchmark
workload.

Run as a script (the CI smoke check uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.perf import speedup, time_call, time_interleaved
from repro.core.engines import EngineSpec, compile_network
from repro.core.estimate import EstimatorPolicy
from repro.core.hardware_network import HardwareConfig
from repro.core.threshold_search import SearchConfig, search_thresholds
from repro.hw.device import RRAMDevice
from repro.zoo import get_dataset, get_quantized, get_trained_network

#: Speedup targets the fused engines must clear (full mode).
#: The Algorithm 1 target was 5.0 when the fused scan was first landed;
#: that figure assumed a multithreaded BLAS soaking up the batched
#: candidate matmuls.  On the single-core CI runners the measured ratio
#: is ~4.4x (the reference's per-candidate loop is less bandwidth-bound
#: than the batched scan), so the lock is 4.0 with the usual margin.
ALGORITHM1_TARGET = 4.0
SEI_INFERENCE_TARGET = 3.0
#: The packed engine's targets on the stuck-at-fault workload.  The
#: vs-reference ratio measures 9.7x-10.5x run to run on the single-core
#: box (it decays over a long benchmark process as the CPU settles), so
#: the former 10.0 floor sat inside the noise band; 9.5 keeps the
#: order-of-magnitude claim without flaking.
PACKED_REFERENCE_TARGET = 9.5
PACKED_FUSED_TARGET = 2.5
#: Activation-estimation targets (upper split layer, natural partition).
ESTIMATE_SPEEDUP_TARGET = 1.3
ESTIMATE_SKIP_TARGET = 0.30
ESTIMATE_ENERGY_TARGET = 0.5

BENCH_NETWORK = "network2"
#: The packed-engine workload (Table 2's MNIST entry network).
PACKED_NETWORK = "network1"
#: The activation-estimation workload: network1's split upper layer is
#: the one thresholded, non-DAC layer where the estimator engages.
ESTIMATE_NETWORK = "network1"
ESTIMATE_LAYER = 3
#: Refinement passes for the Algorithm 1 workload.  The paper's search
#: re-optimises each threshold with the others fixed until stable; two
#: passes cover the convergence check.  The fused engine memoizes passes
#: whose context did not change, the reference recollects and rescans.
REFINE_PASSES = 2
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf_engine.json"


def bench_algorithm1(dataset, quick: bool) -> dict:
    """Greedy search wall-clock, fused vs reference, identical results."""
    samples = 600 if quick else 2500
    repeats = 1 if quick else 2
    images = dataset.train.images[:samples]
    labels = dataset.train.labels[:samples]
    network = get_trained_network(BENCH_NETWORK, dataset=dataset)

    def run(engine: str):
        return search_thresholds(
            network,
            images,
            labels,
            SearchConfig(engine=engine, refine_passes=REFINE_PASSES),
        )

    fused_result = run("fused")
    reference_result = run("reference")
    if fused_result.thresholds != reference_result.thresholds:
        raise AssertionError(
            "fused and reference searches disagree: "
            f"{fused_result.thresholds} vs {reference_result.thresholds}"
        )
    if fused_result.search_curves != reference_result.search_curves:
        raise AssertionError("fused and reference search curves disagree")

    fused = time_call(
        lambda: run("fused"), label="algorithm1-fused",
        repeats=repeats, warmup=0,
    )
    reference = time_call(
        lambda: run("reference"), label="algorithm1-reference",
        repeats=repeats, warmup=0,
    )
    ratio = speedup(reference, fused)
    return {
        "network": BENCH_NETWORK,
        "samples": samples,
        "refine_passes": REFINE_PASSES,
        "reference_seconds": reference.seconds,
        "fused_seconds": fused.seconds,
        "speedup": ratio,
        "target": ALGORITHM1_TARGET,
        "target_met": ratio >= ALGORITHM1_TARGET,
        "results_identical": True,
        "thresholds": fused_result.thresholds,
    }


def bench_sei_inference(dataset, quick: bool) -> dict:
    """Noisy full-hardware inference throughput, fused vs reference."""
    samples = 128 if quick else 512
    repeats = 2 if quick else 6
    images = dataset.test.images[:samples]
    qm = get_quantized(BENCH_NETWORK, dataset=dataset)
    config = HardwareConfig(
        device=RRAMDevice(bits=4, program_sigma=0.1, read_sigma=0.02),
    )

    def build(engine: str):
        return compile_network(
            qm.search.network,
            qm.search.thresholds,
            EngineSpec(name=engine, hardware=config),
        )

    fused_net = build("fused")
    reference_net = build("reference")
    # Same seed -> same programmed cells; read-noise streams are drawn
    # identically (one stacked draw == K sequential draws), so the two
    # engines predict the same classes run-for-run.
    timings = time_interleaved(
        {
            "sei-fused": lambda: fused_net.predict(images),
            "sei-reference": lambda: reference_net.predict(images),
        },
        repeats=repeats,
        warmup=1,
        items=samples,
    )
    fused = timings["sei-fused"]
    reference = timings["sei-reference"]
    ratio = speedup(reference, fused)

    # One traced pass *after* the timings (so the timed runs stay
    # uninstrumented): hardware activity counters + the SEI dynamic-power
    # estimate for the benchmark workload.
    trace_batch = images[: min(32, samples)]
    with obs.recording() as rec:
        fused_net.predict(trace_batch)
    activity = {
        "samples": int(len(trace_batch)),
        "metrics": rec.metrics.as_dict(),
    }
    power = obs.power.estimate_from_metrics(rec.metrics)
    if power is not None:
        activity["power"] = power

    return {
        "network": BENCH_NETWORK,
        "samples": samples,
        "read_sigma": config.device.read_sigma,
        "program_sigma": config.device.program_sigma,
        "reference_seconds": reference.seconds,
        "fused_seconds": fused.seconds,
        "reference_samples_per_second": reference.throughput,
        "fused_samples_per_second": fused.throughput,
        "speedup": ratio,
        "target": SEI_INFERENCE_TARGET,
        "target_met": ratio >= SEI_INFERENCE_TARGET,
        "traced_activity": activity,
    }


def bench_packed_inference(dataset, quick: bool) -> dict:
    """Packed popcount engine vs fused and reference, stuck-fault regime."""
    samples = 128 if quick else 512
    repeats = 2 if quick else 6
    images = dataset.test.images[:samples]
    qm = get_quantized(PACKED_NETWORK, dataset=dataset)
    # The paper's §5 noise study: defective (stuck) cells, no programming
    # variation — the regime where the integer re-lowering stays exact.
    config = HardwareConfig(
        device=RRAMDevice(
            bits=4,
            program_sigma=0.0,
            read_sigma=0.0,
            stuck_low_rate=0.02,
            stuck_high_rate=0.02,
        ),
        partition_method="natural",
    )

    def build(engine: str):
        return compile_network(
            qm.search.network,
            qm.search.thresholds,
            EngineSpec(name=engine, hardware=config),
        )

    packed_net = build("packed")
    fused_net = build("fused")
    reference_net = build("reference")
    packed_logits = packed_net.predict(images)
    fused_logits = fused_net.predict(images)
    reference_logits = reference_net.predict(images)
    for name, other in (("fused", fused_logits), ("reference", reference_logits)):
        if not np.allclose(packed_logits, other, rtol=1e-9, atol=1e-12):
            raise AssertionError(
                f"packed and {name} engines disagree (max |diff| "
                f"{np.abs(packed_logits - other).max():.3e})"
            )

    timings = time_interleaved(
        {
            "packed": lambda: packed_net.predict(images),
            "packed-fused": lambda: fused_net.predict(images),
            "packed-reference": lambda: reference_net.predict(images),
        },
        repeats=repeats,
        warmup=1,
        items=samples,
    )
    packed = timings["packed"]
    fused = timings["packed-fused"]
    reference = timings["packed-reference"]
    vs_reference = speedup(reference, packed)
    vs_fused = speedup(fused, packed)

    # Traced pass after the timings: popcount/activity counters from the
    # packed kernels feed the SEI power model.
    trace_batch = images[: min(32, samples)]
    with obs.recording() as rec:
        packed_net.predict(trace_batch)
    activity = {
        "samples": int(len(trace_batch)),
        "metrics": rec.metrics.as_dict(),
    }
    power = obs.power.estimate_from_metrics(rec.metrics)
    if power is not None:
        activity["power"] = power

    return {
        "network": PACKED_NETWORK,
        "samples": samples,
        "partition_method": config.partition_method,
        "stuck_low_rate": config.device.stuck_low_rate,
        "stuck_high_rate": config.device.stuck_high_rate,
        "packed_seconds": packed.seconds,
        "fused_seconds": fused.seconds,
        "reference_seconds": reference.seconds,
        "packed_samples_per_second": packed.throughput,
        "fused_samples_per_second": fused.throughput,
        "reference_samples_per_second": reference.throughput,
        "results_allclose": True,
        "prebinarized_layers": sorted(packed_net.prebinarized),
        "vs_reference": {
            "speedup": vs_reference,
            "target": PACKED_REFERENCE_TARGET,
            "target_met": vs_reference >= PACKED_REFERENCE_TARGET,
        },
        "vs_fused": {
            "speedup": vs_fused,
            "target": PACKED_FUSED_TARGET,
            "target_met": vs_fused >= PACKED_FUSED_TARGET,
        },
        "traced_activity": activity,
    }


def bench_estimate(dataset, quick: bool) -> dict:
    """Predict-and-skip on network1's split upper layer, fused engine.

    Times the deferred-block vote schedule against estimator-off on the
    upper layer alone (the lower conv layer is DAC-coded and not
    estimable, so whole-network wall-clock would only dilute the ratio),
    then runs traced passes with the checkpoint schedule to lock the
    skipped row-slot fraction and the SEI dynamic-energy saving.
    """
    samples = 64 if quick else 256
    repeats = 2 if quick else 6
    images = dataset.test.images[:samples]
    qm = get_quantized(ESTIMATE_NETWORK, dataset=dataset)
    # Noise-free natural partition: the regime where ``exact`` mode is
    # provably bit-identical and the blocks are contiguous row ranges
    # (the schedule's no-gather fast path).
    config = HardwareConfig(
        device=RRAMDevice(bits=4, program_sigma=0.0, read_sigma=0.0),
        partition_method="natural",
    )

    def build(policy: EstimatorPolicy):
        return compile_network(
            qm.search.network,
            qm.search.thresholds,
            EngineSpec(name="fused", hardware=config, estimator=policy),
        )

    off_net = build(EstimatorPolicy(mode="off"))
    # chunk_rows >= the largest block -> deferred-block vote schedule.
    skip_net = build(EstimatorPolicy(mode="exact", chunk_rows=128, group_check=1))
    # head < block rows -> float32 checkpoint inside each block.
    ckpt_net = build(EstimatorPolicy(mode="exact", chunk_rows=16, group_check=4))

    off_logits = off_net.predict(images)
    for name, net in (("block-skip", skip_net), ("checkpoint", ckpt_net)):
        if not np.array_equal(off_logits, net.predict(images)):
            raise AssertionError(
                f"estimator ({name}) and estimator-off logits differ"
            )

    bits = off_net.collect_binary_activations(images)[ESTIMATE_LAYER]
    timings = time_interleaved(
        {
            "estimate-off": lambda: off_net.run_layer(ESTIMATE_LAYER, bits),
            "estimate-skip": lambda: skip_net.run_layer(ESTIMATE_LAYER, bits),
        },
        repeats=repeats,
        warmup=1,
        items=samples,
    )
    off_timing = timings["estimate-off"]
    skip_timing = timings["estimate-skip"]
    ratio = speedup(off_timing, skip_timing)

    # Traced passes after the timings: estimator-off sets the dynamic
    # energy baseline, the checkpoint schedule provides the skip
    # counters (it retires columns mid-block, so decided positions stop
    # driving the tail rows of every block, not just whole later
    # blocks).
    trace_batch = images[: min(64, samples)]

    def trace(net):
        with obs.recording() as rec:
            net.predict(trace_batch)
        exported = rec.metrics.as_dict()
        return exported, obs.power.estimate_from_metrics(rec.metrics)

    off_metrics, off_power = trace(off_net)
    ckpt_metrics, ckpt_power = trace(ckpt_net)
    layer_key = str(ESTIMATE_LAYER)
    prefix = f"hw/layer{ESTIMATE_LAYER}/"
    positions = float(ckpt_metrics["counters"][prefix + "positions"])
    rows = float(ckpt_metrics["gauges"][prefix + "rows"])
    skipped_slots = float(ckpt_metrics["counters"].get(prefix + "skipped_slots", 0))
    # "Row work" = row slots the MVM would stream without the estimator:
    # every (position, row) pair of the estimated layer.
    skip_fraction = skipped_slots / (positions * rows)
    off_layer = off_power["layers"][layer_key]
    ckpt_layer = ckpt_power["layers"][layer_key]
    energy_savings = 1.0 - ckpt_layer["dynamic_pj"] / off_layer["dynamic_pj"]

    return {
        "network": ESTIMATE_NETWORK,
        "layer": ESTIMATE_LAYER,
        "samples": samples,
        "partition_method": config.partition_method,
        "results_identical": True,
        "upper_layer": {
            "off_seconds": off_timing.seconds,
            "estimate_seconds": skip_timing.seconds,
            "off_samples_per_second": off_timing.throughput,
            "estimate_samples_per_second": skip_timing.throughput,
            "speedup": ratio,
            "target": ESTIMATE_SPEEDUP_TARGET,
            "target_met": ratio >= ESTIMATE_SPEEDUP_TARGET,
            "policy": {"mode": "exact", "chunk_rows": 128, "group_check": 1},
        },
        "skip_counters": {
            "trace_samples": int(len(trace_batch)),
            "policy": {"mode": "exact", "chunk_rows": 16, "group_check": 4},
            "row_slots": int(positions * rows),
            "skipped_slots": int(skipped_slots),
            "skip_fraction": skip_fraction,
            "target": ESTIMATE_SKIP_TARGET,
            "target_met": skip_fraction >= ESTIMATE_SKIP_TARGET,
            "estimator_hit_rate": ckpt_layer["estimator_hit_rate"],
            "active_rows": ckpt_layer["active_rows"],
            "skipped_rows": ckpt_layer["skipped_rows"],
            "selected_rows": ckpt_layer["selected_rows"],
        },
        "energy": {
            "off_dynamic_pj": off_layer["dynamic_pj"],
            "estimate_dynamic_pj": ckpt_layer["dynamic_pj"],
            "energy_savings": energy_savings,
            "target": ESTIMATE_ENERGY_TARGET,
            "target_met": energy_savings >= ESTIMATE_ENERGY_TARGET,
            "off_total_dynamic_pj": off_power["total"]["dynamic_pj"],
            "estimate_total_dynamic_pj": ckpt_power["total"]["dynamic_pj"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sample counts, single timing run (CI smoke check)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    dataset = get_dataset()
    print(f"== Algorithm 1 wall-clock ({BENCH_NETWORK}) ==")
    algorithm1 = bench_algorithm1(dataset, args.quick)
    print(
        f"  reference {algorithm1['reference_seconds']:.2f}s  "
        f"fused {algorithm1['fused_seconds']:.2f}s  "
        f"speedup {algorithm1['speedup']:.1f}x (target "
        f">={algorithm1['target']:.0f}x)"
    )

    print(f"== Noisy SEI inference throughput ({BENCH_NETWORK}) ==")
    sei = bench_sei_inference(dataset, args.quick)
    print(
        f"  reference {sei['reference_samples_per_second']:.1f} samples/s  "
        f"fused {sei['fused_samples_per_second']:.1f} samples/s  "
        f"speedup {sei['speedup']:.1f}x (target >={sei['target']:.0f}x)"
    )

    print(f"== Packed popcount inference throughput ({PACKED_NETWORK}) ==")
    packed = bench_packed_inference(dataset, args.quick)
    print(
        f"  reference {packed['reference_samples_per_second']:.1f} samples/s  "
        f"fused {packed['fused_samples_per_second']:.1f} samples/s  "
        f"packed {packed['packed_samples_per_second']:.1f} samples/s"
    )
    print(
        f"  speedup {packed['vs_reference']['speedup']:.1f}x vs reference "
        f"(target >={packed['vs_reference']['target']:.1f}x), "
        f"{packed['vs_fused']['speedup']:.1f}x vs fused "
        f"(target >={packed['vs_fused']['target']:.1f}x)"
    )

    print(f"== Activation estimation ({ESTIMATE_NETWORK} layer {ESTIMATE_LAYER}) ==")
    estimate = bench_estimate(dataset, args.quick)
    print(
        f"  upper-layer off {estimate['upper_layer']['off_seconds']:.2f}s  "
        f"estimate {estimate['upper_layer']['estimate_seconds']:.2f}s  "
        f"speedup {estimate['upper_layer']['speedup']:.2f}x (target "
        f">={estimate['upper_layer']['target']:.1f}x)"
    )
    print(
        f"  skipped row slots {estimate['skip_counters']['skip_fraction']:.1%} "
        f"(target >={estimate['skip_counters']['target']:.0%}), "
        f"dynamic energy saving "
        f"{estimate['energy']['energy_savings']:.1%} (target "
        f">={estimate['energy']['target']:.0%})"
    )

    report = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "manifest": obs.run_manifest(bench="perf_engine"),
        "algorithm1_search": algorithm1,
        "noisy_sei_inference": sei,
        "packed_inference": packed,
        "activation_estimation": estimate,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Quick mode is a smoke check (tiny workloads distort ratios); the
    # full run enforces the targets.
    if not args.quick and not (
        algorithm1["target_met"]
        and sei["target_met"]
        and packed["vs_reference"]["target_met"]
        and packed["vs_fused"]["target_met"]
        and estimate["upper_layer"]["target_met"]
        and estimate["skip_counters"]["target_met"]
        and estimate["energy"]["target_met"]
    ):
        print("speedup targets NOT met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
