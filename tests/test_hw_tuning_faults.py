"""Tests for the tuning loop (ref [13]) and stuck-at fault injection."""

import numpy as np
import pytest

from repro.core import SEIMatrix
from repro.errors import ConfigurationError
from repro.hw import RRAMDevice, tune_cells


class TestStuckAtFaults:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RRAMDevice(stuck_low_rate=-0.1)
        with pytest.raises(ConfigurationError):
            RRAMDevice(stuck_high_rate=1.5)
        with pytest.raises(ConfigurationError):
            RRAMDevice(stuck_low_rate=0.6, stuck_high_rate=0.6)

    def test_stuck_low_cells_at_gmin(self):
        device = RRAMDevice(stuck_low_rate=1.0)
        rng = np.random.default_rng(0)
        conductance = device.program(np.full(100, 1.0), rng)
        np.testing.assert_allclose(conductance, device.g_min)

    def test_stuck_high_cells_at_gmax(self):
        device = RRAMDevice(stuck_high_rate=1.0)
        rng = np.random.default_rng(0)
        conductance = device.program(np.zeros(100), rng)
        np.testing.assert_allclose(conductance, device.g_max)

    def test_fault_rate_statistics(self):
        device = RRAMDevice(stuck_low_rate=0.1)
        rng = np.random.default_rng(1)
        conductance = device.program(np.full(20000, 1.0), rng)
        stuck_fraction = (conductance == device.g_min).mean()
        assert stuck_fraction == pytest.approx(0.1, abs=0.01)

    def test_faults_degrade_sei_but_gracefully(self, rng):
        weights = rng.normal(size=(60, 8)) * 0.05
        bits = (rng.random((200, 60)) < 0.3).astype(float)
        clean = SEIMatrix(weights, max_crossbar_size=4096)
        faulty = SEIMatrix(
            weights,
            device=RRAMDevice(bits=4, stuck_low_rate=0.02),
            max_crossbar_size=4096,
            rng=np.random.default_rng(5),
        )
        clean_out = clean.compute(bits)
        faulty_out = faulty.compute(bits)
        assert not np.allclose(clean_out, faulty_out)
        # 2% dead cells: outputs stay within the weight scale.
        assert np.abs(faulty_out - clean_out).max() < np.abs(weights).max() * 30


class TestTuneCells:
    def test_tuning_places_within_tolerance(self):
        device = RRAMDevice(bits=4, program_sigma=1.0)
        rng = np.random.default_rng(0)
        targets = rng.random(5000)
        result = tune_cells(device, targets, tolerance=0.5, rng=rng)
        assert result.yield_fraction == 1.0
        ideal = device.level_conductance(device.quantize_levels(targets))
        assert (
            np.abs(result.conductance - ideal).max()
            <= 0.5 * device.level_step + 1e-18
        )

    def test_lower_sigma_needs_fewer_iterations(self):
        rng = np.random.default_rng(0)
        targets = rng.random(5000)
        sloppy = tune_cells(
            RRAMDevice(bits=4, program_sigma=1.0), targets, rng=np.random.default_rng(1)
        )
        precise = tune_cells(
            RRAMDevice(bits=4, program_sigma=0.2), targets, rng=np.random.default_rng(1)
        )
        assert precise.mean_iterations < sloppy.mean_iterations

    def test_noiseless_device_single_iteration(self):
        device = RRAMDevice(bits=4, program_sigma=0.0)
        result = tune_cells(device, np.linspace(0, 1, 16))
        assert result.mean_iterations == 1.0
        assert result.yield_fraction == 1.0

    def test_stuck_cells_never_converge(self):
        device = RRAMDevice(bits=4, program_sigma=0.1, stuck_low_rate=0.2)
        rng = np.random.default_rng(2)
        result = tune_cells(device, np.full(5000, 1.0), rng=rng)
        assert result.yield_fraction == pytest.approx(0.8, abs=0.02)
        unconverged = ~result.converged
        assert np.all(result.iterations[unconverged] == 20)

    def test_tight_tolerance_may_fail_within_budget(self):
        device = RRAMDevice(bits=4, program_sigma=3.0)
        rng = np.random.default_rng(3)
        result = tune_cells(
            device, np.full(2000, 0.5), tolerance=0.1, max_iterations=3, rng=rng
        )
        assert result.yield_fraction < 1.0

    def test_validation(self):
        device = RRAMDevice()
        with pytest.raises(ConfigurationError):
            tune_cells(device, np.zeros(3), tolerance=0.0)
        with pytest.raises(ConfigurationError):
            tune_cells(device, np.zeros(3), max_iterations=0)
