"""Ablations over the design choices DESIGN.md calls out.

Not paper tables — these probe the knobs the paper fixes:

* Algorithm 1's search criterion (accuracy, the paper's choice) vs the
  cheap quantization-error criterion mentioned in related work;
* the paper's [0, 0.1] threshold search range vs our wider [0, 0.2];
* RRAM cell precision (2/4/8-bit devices) under the SEI mapping;
* the final-classifier merge mode for split matrices (analog WTA vs the
  fully digital vote).
"""

import numpy as np
import pytest

from repro.arch import format_table
from repro.core import (
    SearchConfig,
    SplitConfig,
    build_split_network,
    search_thresholds,
    sei_layer_compute,
)
from repro.hw import RRAMDevice

from benchmarks.conftest import heading


@pytest.mark.benchmark(group="ablation")
def test_ablation_search_criterion(benchmark, quantized_models, dataset):
    """Accuracy-driven search (Algorithm 1) vs reconstruction-error search."""

    def run():
        qm = quantized_models["network2"]
        rows = []
        for criterion in ("accuracy", "qerror"):
            # Re-search from the *trained float* network each time.
            from repro.zoo import get_trained_network

            net = get_trained_network("network2", dataset=dataset)
            result = search_thresholds(
                net,
                dataset.train.images[:2000],
                dataset.train.labels[:2000],
                SearchConfig(criterion=criterion),
            )
            err = result.binarized().error_rate(
                dataset.test.images, dataset.test.labels
            )
            rows.append(
                {
                    "criterion": criterion,
                    "test error (%)": 100 * err,
                    "thresholds": str(
                        {k: round(v, 3) for k, v in result.thresholds.items()}
                    ),
                }
            )
        rows.append(
            {
                "criterion": "float reference",
                "test error (%)": 100 * qm.float_test_error,
                "thresholds": "-",
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Ablation — threshold search criterion (network2)")
    print(format_table(rows))

    by_name = {r["criterion"]: r for r in rows}
    # The paper's accuracy criterion is at least as good as qerror.
    assert (
        by_name["accuracy"]["test error (%)"]
        <= by_name["qerror"]["test error (%)"] + 0.75
    )
    assert by_name["accuracy"]["test error (%)"] < 6.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_search_range(benchmark, dataset):
    """The paper's [0, 0.1] range vs the wider [0, 0.2] default."""

    def run():
        from repro.zoo import get_trained_network

        rows = []
        for upper in (0.1, 0.2):
            net = get_trained_network("network2", dataset=dataset)
            result = search_thresholds(
                net,
                dataset.train.images[:2000],
                dataset.train.labels[:2000],
                SearchConfig(thres_max=upper),
            )
            err = result.binarized().error_rate(
                dataset.test.images, dataset.test.labels
            )
            rows.append({"range": f"[0, {upper}]", "test error (%)": 100 * err})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Ablation — threshold search range (network2)")
    print(format_table(rows))
    # The wider range can only match or improve the constrained one.
    assert rows[1]["test error (%)"] <= rows[0]["test error (%)"] + 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_device_bits(benchmark, quantized_models, dataset):
    """SEI accuracy vs RRAM cell precision (paper fixes 4-bit devices)."""

    def run():
        qm = quantized_models["network2"]
        net = qm.search.network
        rows = []
        for bits in (1, 2, 4, 8):
            bn = qm.search.binarized()
            for index in (3, 7):
                bn.layer_computes[index] = sei_layer_compute(
                    net.layers[index],
                    device=RRAMDevice(bits=bits),
                    max_crossbar_size=8192,
                    rng=np.random.default_rng(0),
                )
            err = bn.error_rate(dataset.test.images, dataset.test.labels)
            rows.append(
                {
                    "cell bits": bits,
                    "cells/weight": 2 * (8 // bits),
                    "test error (%)": 100 * err,
                }
            )
        rows.append(
            {
                "cell bits": "software",
                "cells/weight": "-",
                "test error (%)": 100 * qm.quantized_test_error,
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Ablation — SEI accuracy vs RRAM cell precision (network2)")
    print(format_table(rows))

    software = rows[-1]["test error (%)"]
    for row in rows[:-1]:
        # Any cell precision that tiles 8-bit weights reproduces the
        # software decision up to rounding: small accuracy cost.
        assert row["test error (%)"] <= software + 2.0, row


@pytest.mark.benchmark(group="ablation")
def test_ablation_refinement_passes(benchmark, dataset):
    """Single-pass greedy (the paper's Algorithm 1) vs coordinate-descent
    refinement — matters mostly for deeper networks (see
    bench_deep_network.py); on the shallow Table 2 networks it should be
    near-neutral."""

    def run():
        from repro.zoo import get_trained_network

        rows = []
        for passes in (0, 1):
            net = get_trained_network("network2", dataset=dataset)
            result = search_thresholds(
                net,
                dataset.train.images[:2000],
                dataset.train.labels[:2000],
                SearchConfig(refine_passes=passes),
            )
            err = result.binarized().error_rate(
                dataset.test.images, dataset.test.labels
            )
            rows.append(
                {"refine passes": passes, "test error (%)": 100 * err}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Ablation — threshold refinement passes (network2)")
    print(format_table(rows))
    # Refinement never degrades badly on the shallow networks.
    assert rows[1]["test error (%)"] <= rows[0]["test error (%)"] + 0.75


@pytest.mark.benchmark(group="ablation")
def test_ablation_final_layer_merge(benchmark, quantized_models, dataset):
    """Split final classifier: analog WTA merge vs fully digital votes."""

    def run():
        qm = quantized_models["network1"]
        rows = []
        for mode in ("analog", "vote"):
            result = build_split_network(
                qm.search.network,
                qm.search.thresholds,
                dataset.train.images,
                dataset.train.labels,
                SplitConfig(max_crossbar_size=512, final_layer_mode=mode),
            )
            err = result.binarized.error_rate(
                dataset.test.images, dataset.test.labels
            )
            rows.append({"final merge": mode, "test error (%)": 100 * err})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Ablation — final-layer merge mode (network1, crossbar 512)")
    print(format_table(rows))

    analog = next(r for r in rows if r["final merge"] == "analog")
    vote = next(r for r in rows if r["final merge"] == "vote")
    # Analog merging is exact, digital votes cost some accuracy.
    assert analog["test error (%)"] <= vote["test error (%)"] + 1e-9
    assert vote["test error (%)"] < 8.0
