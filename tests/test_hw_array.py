"""Tests for repro.hw.array (device arrays) and repro.hw.retune.

The load-bearing properties:

* **Bit identity** — a :class:`SimDeviceArray` programs and reads
  through exactly the RNG stream the legacy direct ``RRAMDevice`` calls
  consumed, so every engine compiled through the array interface is
  byte-for-byte the pre-refactor engine.
* **Deterministic trajectories** — temporal arrays age as a seeded
  closed form: equal seeds give equal futures, and snapshot/restore
  reproduces the continuation exactly.
* **Closed loop** — drift past the retune threshold triggers a
  program-and-verify pass that restores the programmed state (exactly,
  when programming is noiseless).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.array import (
    DeviceSpec,
    SimDeviceArray,
    TemporalConfig,
    TemporalSimDeviceArray,
    make_array,
)
from repro.hw.device import RRAMDevice
from repro.hw.retune import (
    RetunePolicy,
    array_needs_retune,
    check_and_retune,
    retune_array,
)

DRIFTY = TemporalConfig(drift_nu=0.1, drift_nu_sigma=0.5, seed=7)


class TestSimDeviceArray:
    def test_2d_program_matches_direct_device_call(self, rng):
        device = RRAMDevice(bits=4, program_sigma=0.2)
        targets = rng.random((12, 9))
        array = make_array(device)
        array.program(targets, np.random.default_rng(5))
        expected = device.program(targets, np.random.default_rng(5))
        np.testing.assert_array_equal(array.conductance, expected)

    def test_3d_program_matches_per_slice_loop(self, rng):
        """K slices must be programmed one device.program call per
        leading plane — the stream the legacy SEI loop consumed."""
        device = RRAMDevice(bits=4, program_sigma=0.2)
        targets = rng.random((4, 6, 5))
        array = make_array(device)
        array.program(targets, np.random.default_rng(5))
        legacy = np.random.default_rng(5)
        expected = np.stack(
            [device.program(plane, legacy) for plane in targets]
        )
        np.testing.assert_array_equal(array.conductance, expected)

    def test_read_matches_direct_device_read(self, rng):
        device = RRAMDevice(bits=4, read_sigma=0.05)
        array = make_array(device)
        array.program(rng.random((8, 8)), np.random.default_rng(1))
        got = array.read(np.random.default_rng(2))
        expected = device.read(array.conductance, np.random.default_rng(2))
        np.testing.assert_array_equal(got, expected)

    def test_read_normalized_uses_weight_scale_base(self, rng):
        """The SEI read base is the normalized cells round-tripped to
        conductance — NOT the raw programmed values (they differ in the
        last ulp under programming noise)."""
        device = RRAMDevice(bits=4, program_sigma=0.3, read_sigma=0.05)
        array = make_array(device)
        array.program(rng.random((8, 8)), np.random.default_rng(1))
        span = device.g_max - device.g_min
        base = device.g_min + array.normalized * span
        expected = device.conductance_to_normalized(
            device.read(base, np.random.default_rng(2))
        )
        got = array.read_normalized(np.random.default_rng(2))
        np.testing.assert_array_equal(got, expected)

    def test_targets_recorded_and_generation_bumps(self, rng):
        array = make_array(RRAMDevice())
        assert array.targets is None
        g0 = array.generation
        targets = rng.random((4, 4))
        array.program(targets, rng)
        np.testing.assert_array_equal(array.targets, targets)
        assert array.generation > g0

    def test_static_array_never_ages(self, rng):
        array = make_array(RRAMDevice())
        array.program(rng.random((4, 4)), rng)
        before = array.conductance.copy()
        gen = array.generation
        array.advance(1e6)
        array.note_reads(10_000)
        np.testing.assert_array_equal(array.conductance, before)
        # Static state never moved: compile-time collapses stay valid.
        assert array.generation == gen
        assert not array.temporal

    def test_unprogrammed_read_raises(self):
        array = make_array(RRAMDevice())
        with pytest.raises(ConfigurationError, match="not been programmed"):
            array.read()


class TestTemporalTrajectories:
    def test_inert_config_is_static_and_identical(self, rng):
        """All-off temporal config must give the static backend and the
        static bits — the acceptance gate for 'temporal disabled ==
        seed behaviour'."""
        inert = make_array(RRAMDevice(), temporal=TemporalConfig())
        static = make_array(RRAMDevice())
        assert isinstance(inert, SimDeviceArray)
        assert not isinstance(inert, TemporalSimDeviceArray)
        targets = rng.random((6, 6))
        inert.program(targets, np.random.default_rng(3))
        static.program(targets, np.random.default_rng(3))
        np.testing.assert_array_equal(inert.conductance, static.conductance)

    def test_fresh_temporal_array_matches_static_bit_for_bit(self, rng):
        temporal = make_array(RRAMDevice(program_sigma=0.2), temporal=DRIFTY)
        static = make_array(RRAMDevice(program_sigma=0.2))
        targets = rng.random((4, 6, 5))
        temporal.program(targets, np.random.default_rng(3))
        static.program(targets, np.random.default_rng(3))
        assert isinstance(temporal, TemporalSimDeviceArray)
        np.testing.assert_array_equal(
            temporal.conductance, static.conductance
        )
        np.testing.assert_array_equal(temporal.normalized, static.normalized)

    def test_drift_is_monotone_in_age(self, rng):
        array = make_array(RRAMDevice(), temporal=DRIFTY)
        array.program(rng.random((16, 16)), rng)
        drifts = []
        for _ in range(4):
            array.advance(32.0)
            drifts.append(array.health().drift_level_steps)
        assert drifts[0] > 0
        assert all(b > a for a, b in zip(drifts, drifts[1:]))

    def test_retention_and_read_disturb_decay_toward_g_min(self, rng):
        device = RRAMDevice()
        retention = make_array(
            device, temporal=TemporalConfig(retention_tau=50.0)
        )
        retention.program(rng.random((8, 8)) * 0.5 + 0.25, rng)
        fresh = retention.conductance.copy()
        retention.advance(100.0)
        assert np.all(retention.conductance <= fresh)
        assert retention.conductance.min() >= device.g_min

        disturb = make_array(
            device, temporal=TemporalConfig(read_disturb_rate=1e-3)
        )
        disturb.program(rng.random((8, 8)) * 0.5 + 0.25, rng)
        fresh = disturb.conductance.copy()
        disturb.note_reads(500)
        assert np.all(disturb.conductance <= fresh)

    def test_trajectory_is_seed_deterministic(self, rng):
        targets = rng.random((10, 10))
        states = []
        for _ in range(2):
            array = make_array(RRAMDevice(program_sigma=0.2), temporal=DRIFTY)
            array.program(targets, np.random.default_rng(9))
            array.note_reads(64)
            array.advance(77.0)
            states.append(array.conductance.copy())
        np.testing.assert_array_equal(states[0], states[1])

    def test_reprogram_redraws_drift_exponents(self, rng):
        """Each program epoch gets its own per-cell exponent draw —
        aging after a re-program must not replay the first epoch."""
        targets = rng.random((12, 12))
        array = make_array(RRAMDevice(), temporal=DRIFTY)
        array.program(targets, np.random.default_rng(1))
        array.advance(64.0)
        first_epoch = array.conductance.copy()
        array.program(targets, np.random.default_rng(1))
        array.advance(64.0)
        assert not np.array_equal(array.conductance, first_epoch)


class TestSnapshotRestore:
    def _aged_array(self, rng, age=40.0, reads=32):
        array = make_array(
            RRAMDevice(program_sigma=0.1),
            temporal=TemporalConfig(
                drift_nu=0.08,
                drift_nu_sigma=0.4,
                retention_tau=500.0,
                read_disturb_rate=1e-4,
                seed=11,
            ),
        )
        array.program(rng.random((9, 7)), np.random.default_rng(2))
        array.note_reads(reads)
        array.advance(age)
        return array

    def test_restore_reproduces_future_trajectory_exactly(self, rng):
        array = self._aged_array(rng)
        snap = array.snapshot()
        array.advance(60.0)
        array.note_reads(100)
        future = array.conductance.copy()

        clone = make_array(array.device, temporal=array.config)
        clone.restore(snap)
        np.testing.assert_array_equal(clone.targets, array.targets)
        clone.advance(60.0)
        clone.note_reads(100)
        np.testing.assert_array_equal(clone.conductance, future)

    def test_digest_stable_and_state_sensitive(self, rng):
        array = self._aged_array(rng)
        digest = array.snapshot().digest()
        assert len(digest) == 16
        assert array.snapshot().digest() == digest  # repeatable
        array.advance(1.0)
        assert array.snapshot().digest() != digest  # age moved

    def test_digest_distinguishes_aging_configs(self, rng):
        """Two arrays with equal programmed state but different aging
        behaviour must not collide: the digest covers the temporal
        config governing the future trajectory."""
        targets = rng.random((6, 6))
        digests = set()
        for nu in (0.02, 0.05, 0.1):
            array = make_array(
                RRAMDevice(), temporal=TemporalConfig(drift_nu=nu, seed=1)
            )
            array.program(targets, np.random.default_rng(4))
            array.advance(16.0)
            digests.add(array.snapshot().digest())
        assert len(digests) == 3

    def test_restore_bumps_generation(self, rng):
        array = self._aged_array(rng)
        snap = array.snapshot()
        gen = array.generation
        array.restore(snap)
        assert array.generation > gen


class TestHealth:
    def test_fresh_array_reports_zero(self, rng):
        array = make_array(RRAMDevice(), temporal=DRIFTY)
        array.program(rng.random((5, 5)), rng)
        health = array.health()
        assert health.drift_level_steps == 0.0
        assert health.age == 0.0
        assert health.reads_since_program == 0
        payload = health.as_dict()
        assert payload["program_epoch"] == 1

    def test_drift_measured_in_level_steps(self, rng):
        device = RRAMDevice(bits=4)
        array = make_array(
            device, temporal=TemporalConfig(retention_tau=100.0)
        )
        array.program(np.full((4, 4), 1.0), rng)
        array.advance(100.0)  # decay factor exp(-1)
        health = array.health()
        # A full-scale cell decayed by 1-1/e spans many 4-bit steps.
        assert health.drift_level_steps > 5.0
        assert health.max_drift_level_steps >= health.drift_level_steps


class TestDeviceSpec:
    def test_device_round_trip(self):
        spec = DeviceSpec(bits=6, program_sigma=0.1, read_sigma=0.02)
        device = spec.device()
        assert device.bits == 6
        assert device.program_sigma == 0.1
        assert device.read_sigma == 0.02

    def test_make_array_backend_selection(self):
        assert isinstance(DeviceSpec().make_array(), SimDeviceArray)
        aged = DeviceSpec(temporal=TemporalConfig(drift_nu=0.05))
        assert isinstance(aged.make_array(), TemporalSimDeviceArray)

    def test_make_array_accepts_int_seed(self, rng):
        targets = rng.random((4, 4))
        spec = DeviceSpec(program_sigma=0.2)
        a = spec.make_array(rng=7)
        b = spec.make_array(rng=np.random.default_rng(7))
        a.program(targets)
        b.program(targets)
        np.testing.assert_array_equal(a.conductance, b.conductance)


class TestRetune:
    def _drifted(self, rng, age=200.0):
        array = make_array(
            RRAMDevice(), temporal=TemporalConfig(drift_nu=0.1, seed=3)
        )
        array.program(rng.random((10, 8)), np.random.default_rng(6))
        array.advance(age)
        return array

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetunePolicy(check_every=0)
        with pytest.raises(ConfigurationError):
            RetunePolicy(drift_threshold=0.0)
        with pytest.raises(ConfigurationError):
            RetunePolicy(mode="anneal")

    def test_needs_retune_threshold(self, rng):
        array = self._drifted(rng)
        assert array_needs_retune(array, RetunePolicy(drift_threshold=0.25))
        assert not array_needs_retune(
            array, RetunePolicy(drift_threshold=1e9)
        )

    def test_tune_mode_restores_programmed_state_exactly(self, rng):
        """Noiseless programming: program-and-verify converges to the
        ideal level conductances, so a retune reproduces the fresh
        state bit-for-bit."""
        array = self._drifted(rng)
        fresh = make_array(RRAMDevice())
        fresh.program(array.targets, np.random.default_rng(6))
        event = retune_array(array, RetunePolicy(), name="l0")
        np.testing.assert_array_equal(array.conductance, fresh.conductance)
        assert array.health().drift_level_steps == 0.0
        assert array.health().age == 0.0
        assert event.drift_level_steps > 0.25
        assert event.yield_fraction == 1.0

    def test_program_mode_also_resets(self, rng):
        array = self._drifted(rng)
        event = retune_array(
            array,
            RetunePolicy(mode="program"),
            rng=np.random.default_rng(0),
            name="l0",
        )
        assert event.iterations == 1.0
        assert array.health().age == 0.0

    def test_unprogrammed_array_rejected(self):
        array = make_array(RRAMDevice(), temporal=DRIFTY)
        with pytest.raises(ConfigurationError, match="no recorded targets"):
            retune_array(array, RetunePolicy())

    def test_check_and_retune_only_fires_past_threshold(self, rng):
        drifted = self._drifted(rng)
        calm = make_array(RRAMDevice(), temporal=DRIFTY)
        calm.program(rng.random((4, 4)), rng)
        report = check_and_retune(
            {"hot": drifted, "cold": calm}, RetunePolicy()
        )
        assert set(report.checked) == {"hot", "cold"}
        assert [e.name for e in report.events] == ["hot"]
        assert report.retuned
        assert report.worst_drift > 0.25
        payload = report.as_dict()
        assert payload["events"][0]["name"] == "hot"
