"""Seeded trace-driven open-loop load generator for the serving plane.

Serving benchmarks lie when the load is closed-loop: a blocked client
stops offering load exactly when the system is slowest, hiding the
latency the paper's power/latency trade-offs live or die on.  This
module generates **open-loop** arrival schedules — requests fire at
their scheduled instants whether or not earlier ones answered — from
three analytic profiles plus deterministic trace replay:

``poisson``
    Homogeneous Poisson arrivals at ``rate`` req/s (exponential gaps).
``bursty``
    A 2-state Markov-modulated Poisson process (MMPP-2): a *calm*
    state at ``rate`` and a *burst* state at ``burst_rate``, with
    exponentially-distributed dwell times.  The analytic stationary
    rate (:func:`stationary_rate`) is what long schedules converge to,
    and what the unit tests assert.
``diurnal``
    An inhomogeneous Poisson process whose intensity follows a
    sinusoidal day-cycle, ``rate * (1 + amplitude*sin(2*pi*t/period))``,
    sampled exactly by Lewis–Shedler thinning.
``replay``
    Verbatim arrival offsets from a recorded trace file.

Everything is seeded through one :func:`numpy.random.default_rng`
stream: the same ``(profile, seed)`` always yields the byte-identical
schedule, and a schedule saved with :func:`save_trace` replays
identically anywhere.  The runner (:func:`run_load`) measures on an
injectable :class:`~repro.serve.clock.Clock` and the reporter
(:func:`summarize`) is a pure function of the collected records, so
report JSON is reproducible under a fake clock and honest under the
real one.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ShardDeadError,
)
from repro.serve.clock import SYSTEM_CLOCK, Clock

__all__ = [
    "LoadProfile",
    "stationary_rate",
    "generate_schedule",
    "save_trace",
    "load_trace",
    "run_load",
    "run_profile",
    "summarize",
    "measure_saturation",
]

logger = obs.get_logger("serve")

_KINDS = ("poisson", "bursty", "diurnal", "replay")

#: Reported latency quantiles (label, percentile).
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50_ms", 50.0),
    ("p95_ms", 95.0),
    ("p99_ms", 99.0),
    ("p999_ms", 99.9),
)


@dataclass(frozen=True)
class LoadProfile:
    """One arrival-process description (JSON-safe, hashable)."""

    kind: str = "poisson"
    #: Mean rate of the base/calm state, requests per second.
    rate: float = 200.0
    #: Schedule horizon in seconds.
    duration_s: float = 1.0
    # --- bursty (MMPP-2) ---
    #: Arrival rate while in the burst state.
    burst_rate: float = 1000.0
    #: Mean dwell time of the burst state, seconds.
    burst_dwell_s: float = 0.05
    #: Mean dwell time of the calm state, seconds.
    calm_dwell_s: float = 0.2
    # --- diurnal ---
    #: Period of the sinusoidal intensity, seconds.
    period_s: float = 1.0
    #: Relative modulation depth in [0, 1).
    amplitude: float = 0.5
    # --- replay ---
    #: Explicit arrival offsets (seconds from start), for ``replay``.
    trace: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.kind != "replay":
            if self.rate <= 0:
                raise ConfigurationError(
                    f"rate must be > 0, got {self.rate}"
                )
            if self.duration_s <= 0:
                raise ConfigurationError(
                    f"duration_s must be > 0, got {self.duration_s}"
                )
        if self.kind == "bursty":
            if self.burst_rate <= 0:
                raise ConfigurationError(
                    f"burst_rate must be > 0, got {self.burst_rate}"
                )
            if self.burst_dwell_s <= 0 or self.calm_dwell_s <= 0:
                raise ConfigurationError(
                    "burst_dwell_s and calm_dwell_s must be > 0"
                )
        if self.kind == "diurnal":
            if not 0 <= self.amplitude < 1:
                raise ConfigurationError(
                    f"amplitude must be in [0, 1), got {self.amplitude}"
                )
            if self.period_s <= 0:
                raise ConfigurationError(
                    f"period_s must be > 0, got {self.period_s}"
                )
        if self.kind == "replay" and self.trace is None:
            raise ConfigurationError("replay profile needs a trace")


def stationary_rate(profile: LoadProfile) -> float:
    """The long-run mean arrival rate of ``profile`` (analytic).

    For the MMPP-2 this is the dwell-time-weighted mixture
    ``(d_c*r_c + d_b*r_b) / (d_c + d_b)``; a long generated schedule's
    empirical rate converges to it (asserted in the unit tests).  The
    diurnal sinusoid integrates to its mean; Poisson/replay are flat.
    """
    if profile.kind == "bursty":
        total = profile.calm_dwell_s + profile.burst_dwell_s
        return (
            profile.calm_dwell_s * profile.rate
            + profile.burst_dwell_s * profile.burst_rate
        ) / total
    if profile.kind == "replay":
        trace = np.asarray(profile.trace, dtype=float)
        if trace.size == 0:
            return 0.0
        span = float(trace.max()) or 1.0
        return trace.size / span
    return profile.rate  # poisson and diurnal (sin integrates to 0)


def _poisson_arrivals(
    rng: np.random.Generator, rate: float, duration_s: float
) -> List[float]:
    arrivals: List[float] = []
    t = float(rng.exponential(1.0 / rate))
    while t < duration_s:
        arrivals.append(t)
        t += float(rng.exponential(1.0 / rate))
    return arrivals


def generate_schedule(
    profile: LoadProfile, seed: int = 0
) -> np.ndarray:
    """Sorted arrival offsets (seconds) for ``profile``; deterministic
    in ``(profile, seed)``."""
    rng = np.random.default_rng(seed)
    if profile.kind == "replay":
        schedule = np.asarray(profile.trace, dtype=float)
        if np.any(schedule < 0):
            raise ConfigurationError("trace offsets must be >= 0")
        return np.sort(schedule)
    if profile.kind == "poisson":
        arrivals = _poisson_arrivals(rng, profile.rate, profile.duration_s)
    elif profile.kind == "bursty":
        arrivals = []
        t = 0.0
        calm = True  # the chain starts calm
        while t < profile.duration_s:
            dwell = float(
                rng.exponential(
                    profile.calm_dwell_s if calm else profile.burst_dwell_s
                )
            )
            state_rate = profile.rate if calm else profile.burst_rate
            end = min(t + dwell, profile.duration_s)
            gap_t = t + float(rng.exponential(1.0 / state_rate))
            while gap_t < end:
                arrivals.append(gap_t)
                gap_t += float(rng.exponential(1.0 / state_rate))
            t = end
            calm = not calm
    else:  # diurnal: Lewis-Shedler thinning against the peak rate
        peak = profile.rate * (1.0 + profile.amplitude)
        arrivals = []
        t = float(rng.exponential(1.0 / peak))
        while t < profile.duration_s:
            intensity = profile.rate * (
                1.0
                + profile.amplitude
                * np.sin(2.0 * np.pi * t / profile.period_s)
            )
            if rng.uniform() <= intensity / peak:
                arrivals.append(t)
            t += float(rng.exponential(1.0 / peak))
    return np.asarray(arrivals, dtype=float)


# -- trace files ---------------------------------------------------------
def save_trace(path, schedule: np.ndarray, profile=None, seed=None) -> None:
    """Write a replayable trace file (JSON: provenance + offsets)."""
    payload = {
        "version": 1,
        "arrivals": [round(float(t), 9) for t in np.asarray(schedule)],
    }
    if profile is not None:
        payload["profile"] = asdict(profile)
    if seed is not None:
        payload["seed"] = seed
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")


def load_trace(path) -> LoadProfile:
    """A ``replay`` profile reproducing a saved trace byte-for-byte."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    arrivals = tuple(float(t) for t in payload["arrivals"])
    return LoadProfile(
        kind="replay",
        trace=arrivals,
        duration_s=max(arrivals) if arrivals else 1.0,
    )


# -- the open-loop runner ------------------------------------------------
class _Record:
    __slots__ = ("scheduled_s", "status", "latency_ms")

    def __init__(self, scheduled_s, status, latency_ms):
        self.scheduled_s = scheduled_s
        self.status = status
        self.latency_ms = latency_ms


def run_load(
    submit: Callable[[np.ndarray], object],
    schedule: Union[np.ndarray, Sequence[float]],
    payload: Union[np.ndarray, Callable[[int], np.ndarray]],
    clock: Optional[Clock] = None,
    result_timeout_s: float = 30.0,
) -> dict:
    """Fire ``schedule`` open-loop at ``submit``; a summary report.

    ``submit`` is the gateway facade (returns a Future) or any callable
    returning an object with ``result()``; synchronous raises of
    :class:`~repro.errors.BackpressureError` also count as rejections.
    ``payload`` is one array reused for every request or a
    ``payload(i)`` factory.  The runner *sleeps on the injected clock*
    between arrivals and timestamps sends/completions on it, so under a
    :class:`~repro.serve.clock.FakeClock` (with a synchronous
    ``submit``) the entire report is deterministic.
    """
    clock = clock if clock is not None else SYSTEM_CLOCK
    offsets = np.asarray(schedule, dtype=float)
    make = payload if callable(payload) else (lambda i: payload)
    start = clock.monotonic()
    pending: List[Tuple[int, float, float, object]] = []
    records: List[_Record] = []
    #: Completion timestamps, written by done-callbacks the moment a
    #: future resolves (on the worker that resolved it) — so latency
    #: measures completion, not the runner's later resolution sweep.
    done_at = {}
    for i, offset in enumerate(offsets):
        delay = (start + float(offset)) - clock.monotonic()
        if delay > 0:
            clock.sleep(delay)
        sent = clock.monotonic()
        try:
            future = submit(np.asarray(make(i)))
        except BackpressureError:
            records.append(_Record(float(offset), "rejected", None))
            continue
        except ShardDeadError:
            records.append(_Record(float(offset), "dead", None))
            continue
        callback = getattr(future, "add_done_callback", None)
        if callback is not None:
            callback(
                lambda fut, idx=i: done_at.__setitem__(
                    idx, clock.monotonic()
                )
            )
        pending.append((i, float(offset), sent, future))
    for i, offset, sent, future in pending:
        try:
            future.result(timeout=result_timeout_s)
        except BackpressureError:
            records.append(_Record(offset, "rejected", None))
            continue
        except ShardDeadError:
            records.append(_Record(offset, "dead", None))
            continue
        except Exception:
            records.append(_Record(offset, "error", None))
            continue
        done = done_at.get(i, clock.monotonic())
        records.append(_Record(offset, "ok", (done - sent) * 1e3))
    elapsed = max(clock.monotonic() - start, 1e-12)
    return summarize(records, elapsed_s=elapsed)


def summarize(records: Sequence[_Record], elapsed_s: float) -> dict:
    """Pure reporter: counts, rates and latency quantiles as JSON-safe
    (and, given identical records, byte-identical) structures."""
    total = len(records)
    by_status = {"ok": 0, "rejected": 0, "dead": 0, "error": 0}
    latencies = []
    for record in records:
        by_status[record.status] = by_status.get(record.status, 0) + 1
        if record.latency_ms is not None:
            latencies.append(record.latency_ms)
    ok = by_status["ok"]
    report = {
        "requests": total,
        "ok": ok,
        "rejected": by_status["rejected"],
        "dead": by_status["dead"],
        "errors": by_status["error"],
        "elapsed_s": round(float(elapsed_s), 6),
        "offered_rate_rps": round(total / elapsed_s, 3),
        "throughput_rps": round(ok / elapsed_s, 3),
        "rejection_rate": round(by_status["rejected"] / total, 6)
        if total
        else 0.0,
        "error_rate": round(
            (by_status["error"] + by_status["dead"]) / total, 6
        )
        if total
        else 0.0,
    }
    if latencies:
        arr = np.asarray(latencies, dtype=float)
        for label, pct in QUANTILES:
            report[label] = round(float(np.percentile(arr, pct)), 6)
        report["mean_ms"] = round(float(arr.mean()), 6)
        report["max_ms"] = round(float(arr.max()), 6)
    else:
        for label, _ in QUANTILES:
            report[label] = None
        report["mean_ms"] = None
        report["max_ms"] = None
    return report


def measure_saturation(
    submit: Callable[[np.ndarray], object],
    payload: np.ndarray,
    duration_s: float = 1.0,
    concurrency: int = 64,
    clock: Optional[Clock] = None,
) -> dict:
    """Closed-loop saturation probe: the sustainable completion rate.

    Keeps ``concurrency`` requests outstanding in waves until
    ``duration_s`` elapses; the completion count over the measured wall
    time is the saturation throughput (requests the plane actually
    answers per second when offered more than it can take).
    Rejections are shed load, counted but not throughput.
    """
    clock = clock if clock is not None else SYSTEM_CLOCK
    completed = 0
    rejected = 0
    errors = 0
    start = clock.monotonic()
    while clock.monotonic() - start < duration_s:
        futures = []
        for _ in range(concurrency):
            try:
                futures.append(submit(payload))
            except BackpressureError:
                rejected += 1
        for future in futures:
            try:
                future.result(timeout=30.0)
            except BackpressureError:
                rejected += 1
            except Exception:
                errors += 1
            else:
                completed += 1
    elapsed = max(clock.monotonic() - start, 1e-12)
    return {
        "throughput_rps": round(completed / elapsed, 3),
        "completed": completed,
        "rejected": rejected,
        "errors": errors,
        "elapsed_s": round(float(elapsed), 6),
        "concurrency": concurrency,
    }


def run_profile(
    submit: Callable[[np.ndarray], object],
    profile: LoadProfile,
    payload: Union[np.ndarray, Callable[[int], np.ndarray]],
    seed: int = 0,
    clock: Optional[Clock] = None,
) -> dict:
    """Generate the seeded schedule for ``profile`` and run it.

    The report carries full provenance (profile, seed, analytic
    stationary rate) so a saved report identifies its workload.
    """
    schedule = generate_schedule(profile, seed=seed)
    report = run_load(submit, schedule, payload, clock=clock)
    prof = asdict(profile)
    if profile.kind == "replay":  # traces can be huge; keep reports light
        prof["trace"] = None
        prof["trace_len"] = len(profile.trace or ())
    report["profile"] = prof
    report["seed"] = seed
    report["stationary_rate_rps"] = round(stationary_rate(profile), 3)
    return report
