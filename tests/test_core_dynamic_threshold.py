"""Tests for repro.core.dynamic_threshold (§4.2)."""

import numpy as np
import pytest

from repro.core import (
    DynamicThresholdMatrix,
    LinearTransform,
    binarize,
    dynamic_threshold_layer_compute,
)
from repro.errors import MappingError, ShapeError
from repro.hw import RRAMDevice


def random_bits(rng, shape, density=0.2):
    return (rng.random(shape) < density).astype(np.float64)


class TestLinearTransform:
    def test_round_trip(self, rng):
        weights = rng.normal(size=(10, 4))
        transform = LinearTransform.for_weights(weights)
        stored = transform.store(weights)
        np.testing.assert_allclose(transform.recover(stored), weights)

    def test_stored_in_unit_interval(self, rng):
        weights = rng.normal(size=(30, 5))
        transform = LinearTransform.for_weights(weights)
        stored = transform.store(weights)
        assert stored.min() >= -1e-12 and stored.max() <= 1.0 + 1e-12

    def test_extremes_map_to_bounds(self):
        weights = np.array([[-2.0, 3.0]])
        transform = LinearTransform.for_weights(weights)
        stored = transform.store(weights)
        assert stored[0, 0] == pytest.approx(0.0)
        assert stored[0, 1] == pytest.approx(1.0)

    def test_constant_matrix(self):
        transform = LinearTransform.for_weights(np.zeros((2, 2)))
        assert transform.k > 0  # degenerate span guarded


class TestDynamicThresholdMatrix:
    def test_geometry_includes_reference_column_and_bias_row(self, rng):
        matrix = DynamicThresholdMatrix(
            rng.normal(size=(20, 6)), threshold=0.1, max_crossbar_size=512
        )
        assert matrix.cells_per_weight == 2  # unsigned 8-bit on 4-bit cells
        assert matrix.physical_rows == 20 * 2 + 1
        assert matrix.physical_cols == 7
        assert matrix.num_cells == 41 * 7

    def test_size_limit(self, rng):
        with pytest.raises(MappingError):
            DynamicThresholdMatrix(
                rng.normal(size=(300, 6)), threshold=0.1, max_crossbar_size=512
            )

    def test_fire_matches_software_binarize(self, rng):
        """Equ. 9: hardware fire == software (sum > threshold), up to
        8-bit quantization on rare marginal cases."""
        weights = rng.normal(size=(60, 8)) * 0.05
        threshold = 0.08
        matrix = DynamicThresholdMatrix(
            weights, threshold=threshold, max_crossbar_size=1024
        )
        bits = random_bits(rng, (300, 60))
        hw = matrix.fire(bits)
        sw = binarize(bits @ weights, threshold)
        assert (hw == sw).mean() > 0.98

    def test_compute_close_to_exact(self, rng):
        weights = rng.normal(size=(40, 5))
        matrix = DynamicThresholdMatrix(
            weights, threshold=0.1, max_crossbar_size=1024
        )
        bits = random_bits(rng, (50, 40))
        exact = bits @ weights
        out = matrix.compute(bits)
        # Error sources: 8-bit storage plus the quantized w0 cell times the
        # ones count; bounded by a few weight-LSBs per active row.
        tol = np.abs(weights).max() / 255 * (bits.sum(axis=1).max() + 2)
        assert np.abs(out - exact).max() <= tol

    def test_stored_sum_non_negative(self, rng):
        """Unipolar devices: everything stored and summed is >= 0."""
        weights = rng.normal(size=(30, 4))
        matrix = DynamicThresholdMatrix(
            weights, threshold=0.0, max_crossbar_size=1024
        )
        bits = random_bits(rng, (20, 30))
        assert matrix.stored_sum(bits).min() >= -1e-12

    def test_reference_grows_with_ones_count(self, rng):
        weights = -np.abs(rng.normal(size=(20, 3)))  # all-negative: w0 > 0
        matrix = DynamicThresholdMatrix(
            weights, threshold=0.05, max_crossbar_size=1024
        )
        few = np.zeros(20)
        few[:2] = 1.0
        many = np.ones(20)
        assert matrix.reference(many[None])[0, 0] > matrix.reference(few[None])[0, 0]

    def test_bias_vector_shifts_decision(self, rng):
        weights = rng.normal(size=(10, 2)) * 0.1
        bits = random_bits(rng, (50, 10), density=0.5)
        base = DynamicThresholdMatrix(
            weights, threshold=0.0, max_crossbar_size=512
        )
        biased = DynamicThresholdMatrix(
            weights,
            threshold=0.0,
            bias=np.array([10.0, 10.0]),
            max_crossbar_size=512,
        )
        assert biased.fire(bits).mean() >= base.fire(bits).mean()

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ShapeError):
            DynamicThresholdMatrix(
                rng.normal(size=(10, 2)),
                threshold=0.0,
                bias=np.zeros(3),
                max_crossbar_size=512,
            ).fire(random_bits(rng, (1, 10)))

    def test_rejects_non_binary(self, rng):
        matrix = DynamicThresholdMatrix(
            rng.normal(size=(10, 2)), threshold=0.0, max_crossbar_size=512
        )
        with pytest.raises(ShapeError):
            matrix.fire(np.full(10, 0.3))

    def test_device_bits_affect_cells_per_weight(self, rng):
        matrix = DynamicThresholdMatrix(
            rng.normal(size=(10, 2)),
            threshold=0.0,
            device=RRAMDevice(bits=2),
            max_crossbar_size=512,
        )
        assert matrix.cells_per_weight == 4


class TestDynamicThresholdLayerCompute:
    def test_predictions_match_software(self, tiny_quantized, tiny_dataset):
        bn_sw = tiny_quantized.binarized(input_bits=None)
        bn_hw = tiny_quantized.binarized(input_bits=None)
        net = tiny_quantized.network
        bn_hw.layer_computes[3] = dynamic_threshold_layer_compute(
            net.layers[3],
            threshold=tiny_quantized.thresholds[3],
            max_crossbar_size=4096,
        )
        x = tiny_dataset["test_x"][:40]
        agreement = (
            bn_sw.predict(x).argmax(1) == bn_hw.predict(x).argmax(1)
        ).mean()
        assert agreement > 0.85
