"""Spike encodings: pictures -> 1-bit spike trains.

The SEI structure processes 1-bit inputs natively, which is exactly what
a spike train is — the paper's stated future-work direction ("use the
proposed structure to support other applications using 1-bit data like
RRAM-based Spiking Neural Networks", §6, citing Tang et al. [22]).

Two standard rate codes are provided:

* **Bernoulli (Poisson-like)** — at each timestep a pixel emits a spike
  with probability equal to its intensity; unbiased but noisy;
* **deterministic rate** — a pixel of intensity p spikes on the
  ``round(p * T)`` evenly spread timesteps; zero-variance rate coding,
  useful to isolate quantization effects from sampling noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["bernoulli_spikes", "deterministic_spikes", "spike_rate"]


def _check_images(images: np.ndarray, timesteps: int) -> np.ndarray:
    images = np.asarray(images, dtype=np.float64)
    if timesteps <= 0:
        raise ConfigurationError(f"timesteps must be positive, got {timesteps}")
    if images.size == 0:
        raise ShapeError("cannot encode an empty image batch")
    if images.min() < -1e-9 or images.max() > 1 + 1e-9:
        raise ShapeError(
            "pixel intensities must lie in [0, 1] for rate coding; got "
            f"range [{images.min():.3g}, {images.max():.3g}]"
        )
    return np.clip(images, 0.0, 1.0)


def bernoulli_spikes(
    images: np.ndarray,
    timesteps: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Bernoulli rate code: ``spikes[t] ~ Bernoulli(pixel)`` per timestep.

    Returns an array of shape ``(timesteps, *images.shape)`` with 0/1
    entries; the time-average converges to the pixel intensity.
    """
    images = _check_images(images, timesteps)
    rng = rng if rng is not None else np.random.default_rng()
    draws = rng.random((timesteps,) + images.shape)
    return (draws < images[None]).astype(np.float64)


def deterministic_spikes(images: np.ndarray, timesteps: int) -> np.ndarray:
    """Deterministic rate code with evenly spread spikes.

    A pixel of intensity p produces exactly ``round(p * timesteps)``
    spikes, placed by the classic accumulate-and-fire (error-diffusion)
    rule: spike at step t iff ``floor((t+1) * p) > floor(t * p)``.
    """
    images = _check_images(images, timesteps)
    steps = np.arange(1, timesteps + 1, dtype=np.float64)
    # (T, ...) via broadcasting; tiny epsilon guards float edge cases
    # like p = 0.5 at even steps.
    eps = 1e-12
    cum_now = np.floor(steps.reshape((-1,) + (1,) * images.ndim) * (images[None] + eps))
    cum_prev = np.floor(
        (steps - 1).reshape((-1,) + (1,) * images.ndim) * (images[None] + eps)
    )
    return (cum_now > cum_prev).astype(np.float64)


def spike_rate(spikes: np.ndarray) -> np.ndarray:
    """Time-averaged firing rate of a spike train (axis 0 = time)."""
    spikes = np.asarray(spikes)
    if spikes.ndim < 2:
        raise ShapeError("spike train must have a leading time axis")
    return spikes.mean(axis=0)
