"""SNN on SEI: the paper's future-work direction (§6), end to end.

Converts the quantized CNN into a rate-coded spiking network — every
inter-layer signal is a 1-bit spike that the SEI structure processes
natively — and shows the accuracy/timestep tradeoff plus an event-driven
energy estimate.

Run:  python examples/spiking_inference.py
"""

import numpy as np

from repro.arch import format_table
from repro.snn import SpikingNetwork, estimate_sei_spike_energy
from repro.zoo import get_dataset, get_quantized

SAMPLES = 400


def main() -> None:
    dataset = get_dataset()
    model = get_quantized("network2", dataset=dataset)
    images = dataset.test.images[:SAMPLES]
    labels = dataset.test.labels[:SAMPLES]
    print(f"1-bit CNN (clocked) error: {model.quantized_test_error:.2%}\n")

    snn = SpikingNetwork(
        model.search.network,
        model.search.thresholds,
        threshold_scale=1.5,
    )

    rows = []
    for timesteps in (1, 2, 4, 8, 16, 32):
        err_det = snn.error_rate(
            images, labels, timesteps, encoder="deterministic"
        )
        err_ber = snn.error_rate(
            images,
            labels,
            timesteps,
            encoder="bernoulli",
            rng=np.random.default_rng(0),
        )
        rows.append(
            {
                "timesteps": timesteps,
                "deterministic code": f"{err_det:.2%}",
                "Bernoulli code": f"{err_ber:.2%}",
            }
        )
    print("== SNN error vs simulation timesteps (network2) ==")
    print(format_table(rows))
    print(
        "\nThe deterministic rate code approaches the 1-bit CNN's accuracy "
        "within a few tens of timesteps; Bernoulli sampling needs more."
    )

    # The same SNN on actual SEI crossbar models — spikes are 1-bit, so
    # even the input layer becomes selection-driven: no DACs at all.
    from repro.core import sei_layer_compute

    net = model.search.network
    hooks = {
        i: sei_layer_compute(net.layers[i], max_crossbar_size=8192)
        for i, layer in enumerate(net.layers)
        if hasattr(layer, "weight_matrix")
    }
    snn_hw = SpikingNetwork(
        net, model.search.thresholds, threshold_scale=1.5, layer_computes=hooks
    )
    err_hw = snn_hw.error_rate(images, labels, 32, encoder="deterministic")
    print(
        f"\nSNN on real SEI crossbars (T=32, fully converter-free): "
        f"{err_hw:.2%}"
    )

    result = snn.simulate(images[:64], 16, encoder="deterministic")
    print("\n== Spiking activity (T=16) ==")
    print(
        "hidden-layer firing rates: "
        + ", ".join(
            f"layer {k}: {v:.1%}" for k, v in result.firing_rates.items()
        )
    )
    energy = estimate_sei_spike_energy(model.search.network, result)
    print("\n== Event-driven SEI energy estimate, per picture ==")
    print(
        format_table(
            [
                {
                    "component": name,
                    "energy (nJ)": value / 1000.0,
                }
                for name, value in energy.items()
            ]
        )
    )


if __name__ == "__main__":
    main()
