"""Tests for repro.configs (Table 2 definitions)."""

import numpy as np
import pytest

from repro.configs import (
    NETWORK_SPECS,
    build_network,
    count_operations,
    get_network_spec,
    network_weight_matrix_shapes,
)
from repro.errors import ConfigurationError


class TestSpecs:
    def test_three_networks_defined(self):
        assert set(NETWORK_SPECS) == {"network1", "network2", "network3"}

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_network_spec("network9")

    def test_table2_weight_matrix_shapes(self):
        """The exact Table 2 'Weight Matrix' rows."""
        assert network_weight_matrix_shapes(get_network_spec("network1")) == [
            (25, 12),
            (300, 64),
            (1024, 10),
        ]
        assert network_weight_matrix_shapes(get_network_spec("network2")) == [
            (9, 4),
            (36, 8),
            (200, 10),
        ]
        assert network_weight_matrix_shapes(get_network_spec("network3")) == [
            (9, 6),
            (54, 12),
            (300, 10),
        ]

    def test_describe_matches_table2(self):
        desc = get_network_spec("network1").describe()
        assert desc["Conv Layer 1"] == "12 kernels sized of 5 x 5"
        assert desc["Weight Matrix 2"] == "300 x 64"
        assert desc["FC Layer"] == "1024 x 10"
        assert desc["Complexity (GOPs)"] == "0.006"


class TestBuildNetwork:
    @pytest.mark.parametrize("name", ["network1", "network2", "network3"])
    def test_builds_and_runs(self, name, rng):
        net = build_network(name, seed=0)
        out = net.forward(rng.random((2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_layer_matrices_match_spec(self):
        net = build_network("network1")
        spec = get_network_spec("network1")
        shapes = network_weight_matrix_shapes(spec)
        assert net.layers[0].weight_matrix.shape == shapes[0]
        assert net.layers[3].weight_matrix.shape == shapes[1]
        assert net.layers[7].weight_matrix.shape == shapes[2]

    def test_deterministic_by_seed(self, rng):
        a = build_network("network2", seed=5)
        b = build_network("network2", seed=5)
        x = rng.random((1, 1, 28, 28))
        np.testing.assert_allclose(a.forward(x), b.forward(x))


class TestCountOperations:
    def test_network1_macs(self):
        ops = count_operations("network1")
        assert ops["conv1_macs"] == 576 * 25 * 12
        assert ops["conv2_macs"] == 64 * 300 * 64
        assert ops["fc_macs"] == 1024 * 10
        assert ops["total_ops"] == 2 * ops["total_macs"]

    def test_paper_gops_same_order_of_magnitude(self):
        """Our 2*MACs count is within ~3x of the paper's GOPs figure."""
        for name in NETWORK_SPECS:
            spec = get_network_spec(name)
            ours = count_operations(spec)["total_ops"] / 1e9
            ratio = spec.paper_gops / ours
            assert 0.3 < ratio < 3.5, (name, ratio)
