"""Parameter-space definition: grid, random and conditional axes.

A :class:`ParameterSpace` is a declarative description of the candidate
configurations a study explores.  It is built from axes:

* :class:`GridAxis` — an explicit value list, enumerated exhaustively;
* :class:`RandomAxis` — a (optionally log-scaled / integer) interval,
  sampled ``samples_per_point`` times per grid assignment from a seeded
  stream, so the candidate list is a pure function of the study seed.

Both axis kinds take an optional ``when`` condition — a declarative
expression over the axes evaluated so far (axis order matters) — that
gates the axis on earlier choices: ``RandomAxis("read_sigma", 0, 0.05,
when="engine != 'adc'")`` only varies read noise for the SEI engines and
pins the axis to its ``default`` elsewhere.  Space-level ``constraints``
reject whole assignments (e.g. ``"weight_bits % cell_bits == 0"``).

Everything is plain data (strings, numbers, tuples), so a space digests
deterministically into the study digest that keys the resumable run
store — which is why conditions are expression strings, not lambdas
(see :mod:`repro.dse.expr`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

from repro.dse.expr import safe_eval

__all__ = ["GridAxis", "RandomAxis", "ParameterSpace"]


@dataclass(frozen=True)
class GridAxis:
    """An axis enumerated over an explicit value tuple."""

    name: str
    values: Tuple[Any, ...]
    #: Condition over earlier axes; when false the axis is pinned to
    #: ``default`` instead of enumerating its values.
    when: Optional[str] = None
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis name must be non-empty")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} has no values")

    def arity(self) -> int:
        return len(self.values)

    def value(self, index: int, rng_key: Sequence[int]) -> Any:
        return self.values[index]


@dataclass(frozen=True)
class RandomAxis:
    """An axis drawn uniformly (optionally log-uniform) from an interval."""

    name: str
    low: float
    high: float
    log: bool = False
    integer: bool = False
    when: Optional[str] = None
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis name must be non-empty")
        if self.high < self.low:
            raise ConfigurationError(
                f"axis {self.name!r}: need low <= high, got "
                f"[{self.low}, {self.high}]"
            )
        if self.log and self.low <= 0:
            raise ConfigurationError(
                f"axis {self.name!r}: log sampling needs low > 0"
            )

    def arity(self) -> int:
        return 1  # random axes do not multiply the grid

    def value(self, index: int, rng_key: Sequence[int]) -> Any:
        rng = np.random.default_rng(np.random.SeedSequence(list(rng_key)))
        if self.log:
            drawn = float(
                np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
            )
        else:
            drawn = float(rng.uniform(self.low, self.high))
        if self.integer:
            return int(round(drawn))
        return drawn


Axis = Union[GridAxis, RandomAxis]


@dataclass(frozen=True)
class ParameterSpace:
    """An ordered set of axes plus assignment-level constraints."""

    axes: Tuple[Axis, ...] = ()
    #: Declarative predicates over a full assignment; candidates that
    #: violate any constraint are skipped (not failed).
    constraints: Tuple[str, ...] = ()
    #: Random-axis draws per grid assignment (ignored without random axes).
    samples_per_point: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        if not self.axes:
            raise ConfigurationError("a parameter space needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        if self.samples_per_point < 1:
            raise ConfigurationError(
                f"samples_per_point must be >= 1, got {self.samples_per_point}"
            )

    # -- enumeration -----------------------------------------------------
    @property
    def has_random_axes(self) -> bool:
        return any(isinstance(a, RandomAxis) for a in self.axes)

    def grid_size(self) -> int:
        """Upper bound on grid assignments (before conditions/constraints)."""
        size = 1
        for axis in self.axes:
            size *= axis.arity()
        return size

    def configs(self, seed: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield candidate configurations in deterministic order.

        Grid axes form the lattice (itertools product order); each grid
        assignment is repeated ``samples_per_point`` times when random
        axes exist, with every random value drawn from a stream derived
        from ``(seed, grid_index, sample_index, axis_position)`` — so the
        k-th candidate is identical across runs, platforms and worker
        counts.
        """
        draws = self.samples_per_point if self.has_random_axes else 1
        ranges = [range(axis.arity()) for axis in self.axes]
        for grid_index, choice in enumerate(itertools.product(*ranges)):
            for sample in range(draws):
                config: Dict[str, Any] = {}
                valid = True
                for position, (axis, index) in enumerate(
                    zip(self.axes, choice)
                ):
                    if axis.when is not None and not safe_eval(
                        axis.when, config
                    ):
                        # Inactive axis: only its first branch survives
                        # (other branches would duplicate the config).
                        if isinstance(axis, GridAxis) and index != 0:
                            valid = False
                            break
                        config[axis.name] = axis.default
                        continue
                    config[axis.name] = axis.value(
                        index, (seed, grid_index, sample, position)
                    )
                if not valid:
                    continue
                if any(
                    not safe_eval(c, config) for c in self.constraints
                ):
                    continue
                yield config

    def enumerate(self, seed: int = 0) -> List[Dict[str, Any]]:
        """The full candidate-configuration list (deduplicated, ordered)."""
        seen = set()
        configs = []
        for config in self.configs(seed):
            key = tuple(sorted(config.items()))
            if key in seen:
                continue
            seen.add(key)
            configs.append(config)
        return configs
