"""Micro-batched inference serving over compiled SEI pipelines.

``repro.serve`` turns the one-shot experiment pipeline into a warm,
reusable service:

* :func:`compile_session` compiles the full ``zoo -> quantize -> split ->
  assemble`` chain once into an :class:`InferenceSession` and caches the
  result by configuration digest;
* :class:`MicroBatcher` coalesces concurrent ``submit`` calls into
  size/deadline-bounded batches over a bounded (backpressured) queue and
  fans the per-request results back out as futures;
* fixed-tile execution keeps outputs bit-identical no matter how
  requests were coalesced (see :mod:`repro.serve.session`).

Most callers want the facade instead::

    from repro import api
    with api.serve("network2") as batcher:
        future = batcher.submit(image)
"""

from repro.serve.batcher import (
    LATENCY_EDGES_MS,
    BatcherConfig,
    BatcherStats,
    MicroBatcher,
)
from repro.serve.session import (
    InferenceSession,
    SessionConfig,
    clear_sessions,
    compile_session,
)

__all__ = [
    "LATENCY_EDGES_MS",
    "BatcherConfig",
    "BatcherStats",
    "MicroBatcher",
    "InferenceSession",
    "SessionConfig",
    "clear_sessions",
    "compile_session",
]
