"""Unit tests for repro.nn.losses and repro.nn.optim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.nn import SGD, Adam
from repro.nn.losses import accuracy, error_rate, softmax, softmax_cross_entropy


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_values_stable(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = np.zeros((4, 10))
        loss, _ = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10), rel=1e-6)

    def test_gradient_numeric(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for index in [(0, 0), (1, 2), (2, 3)]:
            bumped = logits.copy()
            bumped[index] += eps
            loss_plus, _ = softmax_cross_entropy(bumped, labels)
            loss_base, _ = softmax_cross_entropy(logits.copy(), labels)
            numeric = (loss_plus - loss_base) / eps
            assert grad[index] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_label_out_of_range(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 1, 2]))

    def test_logits_must_be_2d(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))


class TestAccuracy:
    def test_basic(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)
        assert error_rate(logits, labels) == pytest.approx(1 / 3)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))


def _quadratic_descent(optimizer, steps=200):
    """Minimise ||x - 3||^2 with the given optimiser; returns final x."""
    params = {"weight": np.array([0.0])}
    grads = {"weight": np.array([0.0])}
    for _ in range(steps):
        grads["weight"][:] = 2 * (params["weight"] - 3.0)
        optimizer.step([(params, grads)])
    return params["weight"][0]


class TestSGD:
    def test_converges(self):
        assert _quadratic_descent(SGD(lr=0.1)) == pytest.approx(3.0, abs=1e-4)

    def test_momentum_converges(self):
        assert _quadratic_descent(SGD(lr=0.05, momentum=0.9)) == pytest.approx(
            3.0, abs=1e-3
        )

    def test_weight_decay_shrinks(self):
        opt = SGD(lr=0.1, weight_decay=0.5)
        params = {"weight": np.array([1.0])}
        grads = {"weight": np.array([0.0])}
        opt.step([(params, grads)])
        assert params["weight"][0] < 1.0

    def test_weight_decay_skips_bias(self):
        opt = SGD(lr=0.1, weight_decay=0.5)
        params = {"bias": np.array([1.0])}
        grads = {"bias": np.array([0.0])}
        opt.step([(params, grads)])
        assert params["bias"][0] == 1.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.0)
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, weight_decay=-1.0)


class TestAdam:
    def test_converges(self):
        assert _quadratic_descent(Adam(lr=0.2), steps=300) == pytest.approx(
            3.0, abs=1e-2
        )

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta2=-0.1)

    def test_first_step_magnitude_is_lr(self):
        """Adam's bias correction makes the first step ~lr."""
        opt = Adam(lr=0.1)
        params = {"weight": np.array([0.0])}
        grads = {"weight": np.array([5.0])}
        opt.step([(params, grads)])
        assert params["weight"][0] == pytest.approx(-0.1, rel=1e-3)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-50, 50), min_size=2, max_size=8))
def test_softmax_probabilities_property(values):
    probs = softmax(np.array([values]))
    assert probs.min() >= 0.0
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
