"""Metrics registry: counters, gauges and histograms with named scopes.

Names are free-form strings; the repo's convention is ``/``-separated
scopes (``hw/layer3/mvms``, ``zoo/cache/hits``), and
:meth:`MetricsRegistry.scope` returns a view that prefixes every name so
subsystems can hand out namespaced handles.

All instruments are get-or-create: ``registry.counter("x")`` returns the
existing counter or makes one, so instrumented code never needs a
registration phase.  :meth:`MetricsRegistry.as_dict` exports plain
Python types only, so the result round-trips through JSON unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "DEFAULT_FRACTION_EDGES",
]

#: Default histogram edges for fraction-valued observations (activity
#: ratios, hit rates): 20 equal bins over [0, 1].
DEFAULT_FRACTION_EDGES = np.linspace(0.0, 1.0, 21)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: Union[int, float]) -> None:
        self.value = value


class Histogram:
    """Fixed-bin histogram with running count/sum/min/max.

    Values outside the bin range still update the scalar statistics but
    fall into no bin (``numpy.histogram`` semantics; the right-most edge
    is inclusive).
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges: Optional[Sequence[float]] = None) -> None:
        self.edges = np.asarray(
            DEFAULT_FRACTION_EDGES if edges is None else edges,
            dtype=np.float64,
        )
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise ValueError("histogram needs at least two bin edges")
        if not np.all(np.diff(self.edges) > 0):
            raise ValueError("histogram edges must be strictly increasing")
        self.counts = np.zeros(self.edges.size - 1, dtype=np.int64)
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, values: Union[float, np.ndarray]) -> None:
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if arr.size == 0:
            return
        binned, _ = np.histogram(arr, self.edges)
        self.counts += binned
        self.count += arr.size
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> dict:
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "count": int(self.count),
            "sum": float(self.total),
            "min": float(self.min) if self.count else None,
            "max": float(self.max) if self.count else None,
            "mean": self.mean,
        }


def _plain_number(value: Union[int, float, None]):
    """Export values as native ints where exact, floats otherwise."""
    if value is None:
        return None
    value = float(value)
    if value.is_integer():
        return int(value)
    return value


class MetricsRegistry:
    """Process-local store of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(edges)
        return instrument

    # -- shorthands ---------------------------------------------------------
    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        values: Union[float, np.ndarray],
        edges: Optional[Sequence[float]] = None,
    ) -> None:
        self.histogram(name, edges).observe(values)

    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prefixes every metric name with ``prefix/``."""
        return MetricsScope(self, prefix)

    # -- export -------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serialisable snapshot of every instrument."""
        return {
            "counters": {
                name: _plain_number(c.value)
                for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: _plain_number(g.value)
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self._histograms.items())
            },
        }


class MetricsScope:
    """A prefixing view over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip("/")

    def _name(self, name: str) -> str:
        return f"{self._prefix}/{name}"

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._registry.histogram(self._name(name), edges)

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        self._registry.inc(self._name(name), n)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self._registry.set_gauge(self._name(name), value)

    def observe(
        self,
        name: str,
        values: Union[float, np.ndarray],
        edges: Optional[Sequence[float]] = None,
    ) -> None:
        self._registry.observe(self._name(name), values, edges)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, self._name(prefix))
