"""Figure 1: power and area breakdown of the 8-bit DAC+ADC baseline.

Paper claim: for the 4-layer MNIST CNN (Network 1) with 8-bit data, ADCs
and DACs consume more than 98% of total power and area, per layer and in
total — the motivation for the whole paper.
"""

import pytest

from repro.arch import breakdown_rows, evaluate_design, format_table

from benchmarks.conftest import heading


def run_fig1():
    evaluation = evaluate_design("network1", "dac_adc")
    return evaluation, breakdown_rows(evaluation.cost)


@pytest.mark.benchmark(group="fig1")
def test_fig1_power_area_breakdown(benchmark):
    evaluation, rows = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    heading("Fig. 1 — power/area breakdown, Network 1, 8-bit DAC+ADC design")
    print(format_table(rows, floatfmt="{:.3f}"))
    print(
        f"\nTotal: ADC+DAC power share = "
        f"{evaluation.cost.energy_share('adc', 'dac'):.3f}, "
        f"area share = {evaluation.cost.area_share('adc', 'dac'):.3f} "
        "(paper: >0.98 for both)"
    )

    total = rows[-1]
    assert total["DAC power"] + total["ADC power"] > 0.98
    assert total["DAC area"] + total["ADC area"] > 0.98
    # Per-layer: converters dominate every layer.
    for row in rows:
        assert row["DAC power"] + row["ADC power"] > 0.9, row["layer"]
