"""Extension bench: the pipeline on a deeper (5-weighted-layer) network.

§2.3 motivates the interface problem with deep networks (VGG-19) and
§2.4 argues the ReLU-based quantization should "promote ... to networks
with deeper layers".  This bench measures exactly that, plus the two
remedies this library adds for the depth-compounding loss:

* coordinate-descent refinement of the thresholds
  (``SearchConfig(refine_passes=...)``);
* quantization-aware fine-tuning with a straight-through estimator
  (:func:`repro.core.quantization_aware_finetune`).
"""

import pytest

from repro.arch import evaluate_network_design, format_table
from repro.core import (
    BinarizedNetwork,
    FinetuneConfig,
    SearchConfig,
    quantization_aware_finetune,
    search_thresholds,
)
from repro.nn import evaluate_accuracy
from repro.zoo import get_deep_network

from benchmarks.conftest import heading


def run_deep(dataset):
    network = get_deep_network(dataset)
    float_error = 1 - evaluate_accuracy(
        network, dataset.test.images, dataset.test.labels
    )

    search = search_thresholds(
        network,
        dataset.train.images[:2000],
        dataset.train.labels[:2000],
        SearchConfig(),
    )
    greedy_error = search.binarized().error_rate(
        dataset.test.images, dataset.test.labels
    )

    quantization_aware_finetune(
        search.network,
        search.thresholds,
        dataset.train.images,
        dataset.train.labels,
        FinetuneConfig(epochs=3),
    )
    finetuned_error = BinarizedNetwork(
        search.network, search.thresholds
    ).error_rate(dataset.test.images, dataset.test.labels)

    costs = {
        structure: evaluate_network_design(search.network, structure)
        for structure in ("dac_adc", "sei")
    }
    return float_error, greedy_error, finetuned_error, costs


@pytest.mark.benchmark(group="deep")
def test_deep_network_pipeline(benchmark, dataset):
    float_err, greedy_err, finetuned_err, costs = benchmark.pedantic(
        run_deep, args=(dataset,), rounds=1, iterations=1
    )

    heading("Extension — 5-weighted-layer network through the full flow")
    print(
        format_table(
            [
                {"stage": "float", "test error (%)": 100 * float_err},
                {
                    "stage": "greedy 1-bit (Algorithm 1)",
                    "test error (%)": 100 * greedy_err,
                },
                {
                    "stage": "+ STE fine-tuning",
                    "test error (%)": 100 * finetuned_err,
                },
            ]
        )
    )
    saving = costs["sei"].cost.energy_saving_vs(costs["dac_adc"].cost)
    print(
        f"\nSEI vs baseline on the deep network: "
        f"{costs['dac_adc'].energy_uj_per_picture:.2f} -> "
        f"{costs['sei'].energy_uj_per_picture:.2f} uJ/pic "
        f"({saving:.1%} saving)"
    )

    # Depth makes greedy quantization lossy; fine-tuning recovers most.
    assert greedy_err >= float_err
    assert finetuned_err <= greedy_err
    assert finetuned_err < 0.05
    # The SEI advantage persists on deeper stacks.
    assert saving > 0.9
