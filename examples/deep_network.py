"""Beyond the 4-layer case study: a deeper CNN through the same pipeline.

The paper argues its ReLU-based quantization "might be easier to promote
... to networks with deeper layers and more complex structure" (§2.4)
and motivates the interface problem with VGG-19 (§2.3).  This example
runs a 5-weighted-layer CNN (3 conv + 2 FC) through the complete flow —
training, Algorithm 1, and generic architecture costing — exercising the
code paths that do not assume the Table 2 shape.

Run:  python examples/deep_network.py
"""

from repro.arch import evaluate_network_design, format_table
from repro.core import SearchConfig, search_thresholds
from repro.nn import evaluate_accuracy
from repro.zoo import get_dataset, get_deep_network


def main() -> None:
    dataset = get_dataset()
    print("loading/training the 5-weighted-layer network...")
    network = get_deep_network(dataset)

    float_error = 1 - evaluate_accuracy(
        network, dataset.test.images, dataset.test.labels
    )
    print(f"float test error: {float_error:.2%}")

    # Algorithm 1 over FOUR intermediate layers (3 conv + hidden FC).
    print("\nrunning Algorithm 1 over 4 intermediate layers...")
    result = search_thresholds(
        network,
        dataset.train.images[:2500],
        dataset.train.labels[:2500],
        SearchConfig(),
    )
    print(
        "thresholds: "
        + ", ".join(
            f"layer {k}: {v:.3f}" for k, v in result.thresholds.items()
        )
    )
    quant_error = result.binarized().error_rate(
        dataset.test.images, dataset.test.labels
    )
    print(f"1-bit quantized test error: {quant_error:.2%}")
    print(
        "(the greedy post-training loss compounds over depth — the "
        "failure mode §2.4 worries about)"
    )

    # Quantization-aware fine-tuning (STE) recovers the deep network.
    from repro.core import BinarizedNetwork, FinetuneConfig
    from repro.core import quantization_aware_finetune

    print("\nfine-tuning the weights under hard 1-bit activations (STE)...")
    quantization_aware_finetune(
        result.network,
        result.thresholds,
        dataset.train.images,
        dataset.train.labels,
        FinetuneConfig(epochs=3),
    )
    finetuned = BinarizedNetwork(result.network, result.thresholds)
    finetuned_error = finetuned.error_rate(
        dataset.test.images, dataset.test.labels
    )
    print(f"after fine-tuning: {finetuned_error:.2%}")

    # Generic architecture costing (no Table 2 assumptions).
    rows = []
    for structure in ("dac_adc", "onebit_adc", "sei"):
        ev = evaluate_network_design(result.network, structure)
        rows.append(
            {
                "structure": structure,
                "energy (uJ/pic)": ev.energy_uj_per_picture,
                "area (mm^2)": ev.area_mm2,
                "GOPs/J": ev.gops_per_joule(),
            }
        )
    print("\n== Hardware cost of the deep network ==")
    print(format_table(rows))


if __name__ == "__main__":
    main()
