"""Runtime output-activity estimation: predict-and-skip MVM work.

The paper's "switched by input" structure already drives only the word
lines whose input bit is 1; the row-activity histograms (3-10% mean
activity in the upper layers, BENCH_perf_engine.json) say most of the
*remaining* work still computes column currents whose sense-amp output
bit is a foregone conclusion.  CompRRAE (Chen et al., arXiv 1906.03180)
cuts RRAM CNN computation by estimating output activity at runtime and
stopping early; this module is that idea adapted to both of our engines:

* **fused engine** — a two-stage schedule.  The *head* (the
  ``chunk_rows * group_check`` hottest rows — largest-magnitude first,
  then re-ordered by measured input activity once calibrated) is
  accumulated for the whole batch in float32; at the head boundary each
  column carries a padded interval ``[acc + lo, acc + hi]`` that
  provably contains the final analog sum under every rounding of the
  single-precision stage.  ``lo``/``hi`` come from *k-conditioned*
  suffix tables: the least/greatest possible contribution of the tail
  rows given how many of them are actually active (known cheaply from
  the selection bits; a position whose active rows are exhausted gets
  the degenerate ``[0, 0]`` interval — its accumulator is already
  final).  Positions whose every column clears its threshold retire
  there, and their tail rows are never multiplied; only the survivors
  recompute their full row sum in exact float64, so the emitted bits
  never depend on the float32 arithmetic.
* **packed engine** — the same suffix tables in the integer domain of
  :mod:`repro.core.packed`: min/max partial-sum companion tables per
  8-row byte group, gathered on the same per-group path as the partial
  sums themselves, conditioned on the remaining popcount.

Safety argument for ``mode='exact'`` (the bit-identity guarantee):

* On the packed engine the accumulator, the bounds and the §4.3 firing
  thresholds are all exact integers, so ``acc + lo >= F`` /
  ``acc + hi < F`` are theorems about the final accumulator — an early
  decision *is* the final decision.  (The unsplit packed layer, whose
  off-mode comparison happens in float64, uses a widened integer band
  and replays the off-mode float arithmetic for the handful of
  accumulators that land inside it.)
* On the fused engine the sums are float64 and chunked accumulation
  re-associates them, so every comparison carries a rigorous rounding
  margin: any floating-point evaluation order of an n-term sum is within
  ``~n * eps * sum|terms|`` of the exact value, and the margin used here
  is :data:`_MARGIN_SLACK` times that envelope (plus the threshold /
  bias magnitudes, covering the comparison's own roundings).  A column
  is decided only when *every* rounding realisation of the off-mode
  arithmetic would agree; positions still ambiguous after the last chunk
  (exact-representable near-threshold collisions — measure-zero in
  practice) are recomputed by the caller through the unmodified off-mode
  path, so the emitted bits are identical to ``mode='off'`` by
  construction.

``mode='threshold'`` is the CompRRAE-style probabilistic variant: the
bounds are scaled by a ``confidence`` knob in ``(0, 1]`` (margins
dropped), trading bounded, statistically monotone output disagreement
for earlier retirement.  See ``docs/engines.md`` for the bound
derivations and `repro.testing.faults.estimator_confidence_sweep` for
the degradation campaign.

This module is deliberately dependency-light (numpy + errors only): the
engines import it, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "EstimatorPolicy",
    "SkipStats",
    "ColumnEstimator",
    "PackedSuffixBounds",
    "packed_fire_band",
]

_EPS = float(np.finfo(np.float64).eps)

#: Safety factor on the exact mode's rounding envelope.  The rigorous
#: bound on |any-order float64 sum - exact sum| is ~n*eps*sum|terms|;
#: 64x that is still ~1e-10 for the paper's layers — far below the
#: typical distance of an activation to its threshold — and absorbs the
#: threshold subtraction, the bias fold and the comparison roundings.
_MARGIN_SLACK = 64.0

_EPS32 = float(np.finfo(np.float32).eps)

#: Safety factor on the checkpoint's single-precision rounding pad.
#: The checkpoint comparison chain runs in float32 (half the memory
#: traffic of the batch-wide interval check); every quantity in it is
#: bounded by the compiled magnitude bound, so ~6 roundings are
#: enveloped with a 16x factor.  The pad only makes the early decision
#: more conservative — anything inside it falls through to the exact
#: float64 finish.
_F32_SLACK = 16.0

_MODES = ("off", "exact", "threshold")


@dataclass(frozen=True)
class EstimatorPolicy:
    """How aggressively the engines may decide output bits early.

    Parameters
    ----------
    mode:
        ``'off'`` (default; engines run their unmodified paths),
        ``'exact'`` (guaranteed-safe interval bounds: emitted bits are
        bit-identical to ``'off'``) or ``'threshold'`` (CompRRAE-style
        probabilistic early decision).
    confidence:
        Bound scaling for ``'threshold'`` mode, in ``(0, 1]``.  1.0
        keeps the full interval (no margin, so near-threshold positions
        may still flip); smaller values shrink the interval and decide
        earlier at the cost of more output disagreement.  Ignored by
        ``'exact'``.
    chunk_rows:
        Fused engine: rows per head chunk.  The head —
        ``chunk_rows * group_check`` hottest rows — is accumulated
        before the early-decision checkpoint; everything beyond it is
        the skippable tail.
    group_check:
        Decision-check cadence.  The fused engine places its interval
        checkpoint after ``group_check`` head chunks; the packed engine
        checks every ``group_check`` 8-row byte groups.
    max_k:
        Depth of the k-conditioned suffix tables; remaining-active
        counts above it fall back to the unconditioned suffix bound.
    calibrate_positions:
        Fused engine, ``'exact'`` mode only: after this many observed
        positions the estimator re-orders its rows by *measured* input
        activity (hottest word lines first) and rebuilds its bound
        tables, so sparse positions exhaust their active rows — and
        retire — as early as possible.  Sound for any ordering, so the
        emitted bits stay bit-identical; ``'threshold'`` mode never
        recalibrates (its output depends on the ordering, and a
        data-dependent permutation would break batch invariance).
        0 disables calibration.
    """

    mode: str = "off"
    confidence: float = 1.0
    chunk_rows: int = 32
    group_check: int = 2
    max_k: int = 32
    calibrate_positions: int = 64

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"estimator mode must be one of {', '.join(_MODES)}; "
                f"got {self.mode!r}"
            )
        if not (0.0 < float(self.confidence) <= 1.0):
            raise ConfigurationError(
                f"estimator confidence must lie in (0, 1], got "
                f"{self.confidence}"
            )
        if self.chunk_rows < 1 or self.group_check < 1 or self.max_k < 1:
            raise ConfigurationError(
                "chunk_rows, group_check and max_k must all be >= 1"
            )
        if self.calibrate_positions < 0:
            raise ConfigurationError(
                f"calibrate_positions must be >= 0 (0 disables), got "
                f"{self.calibrate_positions}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def exact(self) -> bool:
        return self.mode == "exact"


@dataclass
class SkipStats:
    """Work the estimator avoided (or certified) in one crossbar call.

    ``skipped_rows`` counts *active* rows (input bit 1) whose word-line
    drive / cell reads were skipped — the energy-relevant quantity the
    power model prices.  ``skipped_slots`` counts raw row positions
    regardless of activity.  ``est_positions`` is the number of
    (position, column[, block]) decisions the estimator owned and
    ``est_decided`` how many it closed early (while skippable rows
    remained) — their ratio is the estimator hit rate surfaced on the
    dashboard.
    """

    skipped_rows: int = 0
    skipped_slots: int = 0
    est_positions: int = 0
    est_decided: int = 0

    def merge(self, other: "SkipStats") -> None:
        self.skipped_rows += other.skipped_rows
        self.skipped_slots += other.skipped_slots
        self.est_positions += other.est_positions
        self.est_decided += other.est_decided


def _suffix_bound_table(parts: np.ndarray, cap: int) -> np.ndarray:
    """Cumulative extreme-first sums: row ``k`` bounds any k-row subset.

    ``parts`` is ``(S, cols)`` of same-sign values (the negative or
    positive part of the remaining weight rows).  Row ``k`` of the
    returned ``(cap+1, cols)`` table is the sum of the ``k`` largest-
    magnitude entries per column — the extreme possible contribution of
    exactly ``k`` active remaining rows; rows beyond the table depth
    hold the full column sum, a sound (unconditioned) bound for any
    larger count.  Dtype follows ``parts`` (float64 fused, int64 packed).
    """
    cols = parts.shape[1]
    table = np.zeros((cap + 1, cols), dtype=parts.dtype)
    size = parts.shape[0]
    if size == 0:
        return table
    # Ascending sort puts the most negative first; flip for positives.
    ordered = np.sort(parts, axis=0)
    if parts.max(initial=0) > 0:
        ordered = ordered[::-1]
    csum = np.cumsum(ordered, axis=0)
    depth = min(cap - 1, size)
    if depth > 0:
        table[1 : depth + 1] = csum[:depth]
    table[depth + 1 :] = csum[size - 1]
    return table


class ColumnEstimator:
    """Two-stage interval-bound early decision for one fused matrix.

    Compiled once per (static) crossbar: rows are permuted so the
    hottest ones accumulate first (largest-magnitude before calibration,
    measured-activity after), and the head boundary — after
    ``policy.chunk_rows * policy.group_check`` rows — gets k-conditioned
    suffix bound tables plus a rigorous per-column rounding margin
    (exact mode).

    :meth:`decide` accumulates the head for the whole batch, runs one
    interval checkpoint there (retiring every position whose columns
    are all certified — their tail rows are never multiplied), then
    finishes only the survivors through the tail and reports the
    skipped work.
    """

    def __init__(
        self,
        weights: np.ndarray,
        policy: EstimatorPolicy,
        bias: Optional[np.ndarray] = None,
        row_index: Optional[np.ndarray] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ConfigurationError(
                f"estimator weights must be 2D, got {weights.shape}"
            )
        self.rows, self.cols = weights.shape
        self.policy = policy
        self._weights = weights
        # Per-column constant folded into the accumulator before every
        # comparison (the engines' bias): keeping it inside the
        # estimator lets callers pass cheap low-rank thresholds instead
        # of materialising a full (n, cols) threshold plane.
        self._bias = (
            None if bias is None else np.asarray(bias, dtype=np.float64)
        )
        # Scatter-partitioned split blocks: ``row_index`` maps this
        # crossbar's local rows to columns of the caller's *full* bit
        # matrix, so :meth:`decide` gathers straight from it — the
        # caller never materialises a per-block sub-matrix.
        if row_index is not None:
            row_index = np.asarray(row_index, dtype=np.intp)
            if row_index.shape != (self.rows,):
                raise ConfigurationError(
                    f"row_index must have one entry per weight row "
                    f"({self.rows}), got {row_index.shape}"
                )
        self._row_index = row_index
        # Until calibration: largest rows first, so the k-conditioned
        # suffix intervals tighten fast even on dense inputs.
        self._build(np.argsort(-np.abs(weights).max(axis=1), kind="stable"))
        # Exact mode self-calibrates: once enough positions have been
        # observed, re-order so the empirically hottest word lines come
        # first — sparse positions then run out of active rows (and
        # retire, bounds [0, 0]) after the first chunks.  Any ordering
        # is sound, so the emitted bits are unchanged; threshold mode
        # keeps the static order (its decisions depend on it).
        calibrating = policy.exact and policy.calibrate_positions > 0
        self._calibrated = not calibrating
        self._freq = np.zeros(self.rows) if calibrating else None
        self._seen = 0

    def _build(self, order: np.ndarray) -> None:
        """(Re)compile the head selection and bound tables.

        The batch bit matrix is never permuted wholesale: the head rows
        are gathered for the full batch (a thin float32 ``(n, head)``
        copy) and the full row set only for the surviving positions.
        """
        policy = self.policy
        head = min(self.rows, policy.chunk_rows * policy.group_check)
        self._head = head
        head_rows = order[:head]
        tail_rows = order[head:]
        # Head weights live in float32: the whole checkpoint stage —
        # gather, head matmul, interval compare — runs in single
        # precision, halving its memory traffic.  Its rounding is
        # enveloped by the pad below, and a surviving position
        # recomputes its *full* row sum in float64 afterwards, so the
        # emitted bits never depend on the float32 arithmetic.
        self._w_head32 = np.ascontiguousarray(
            self._weights[head_rows], dtype=np.float32
        )
        # Gather indices into the caller's bit matrix (global columns
        # when this estimator covers a scattered split block).
        if self._row_index is not None:
            self._ghead = self._row_index[head_rows]
            self._gall = self._row_index
        else:
            self._ghead = head_rows
            self._gall = np.arange(self.rows)
        self._cap = policy.max_k
        conf = policy.confidence if policy.mode == "threshold" else 1.0
        # Magnitude bound on every checkpoint quantity (accumulator,
        # bound table entry, bias) — the float32 pad scales with it.
        mags = np.abs(self._weights).sum(axis=0) + 1.0
        if self._bias is not None:
            mags = mags + np.abs(self._bias)
        self._bound = float(mags.max())
        bias_row = 0.0 if self._bias is None else self._bias
        if head < self.rows:
            suffix = self._weights[tail_rows]
            lo = _suffix_bound_table(np.minimum(suffix, 0.0), self._cap)
            hi = _suffix_bound_table(np.maximum(suffix, 0.0), self._cap)
            # Bias folds into the tables: the checkpoint then compares
            # gathered values directly, with no per-position bias pass.
            self._lo32 = (lo * conf + bias_row).astype(np.float32)
            self._hi32 = (hi * conf + bias_row).astype(np.float32)
        else:
            self._lo32 = None
            self._hi32 = None
        if policy.exact:
            unit = _MARGIN_SLACK * _EPS * (self.rows + 8.0)
            self._margin_unit = unit
            self._margin_base = unit * mags
        else:
            self._margin_unit = 0.0
            self._margin_base = np.zeros(self.cols)
        # Checkpoint pad: covers the float32 head accumulation (error
        # <= ~head * eps32 * bound for 0/1 inputs), the float64->float32
        # weight/table/threshold conversions and the comparison chain's
        # own roundings.
        self._pad_unit = _F32_SLACK * _EPS32
        self._pad_base = self._pad_unit * ((head + 8.0) * self._bound + 1.0)

    @property
    def has_checkpoint(self) -> bool:
        """True when a skippable tail (and its float32 stage) exists.

        A head spanning every row degenerates to plain exact compute —
        callers can then skip building the shared float32 bit plane.
        """
        return self._head < self.rows

    def _observe(self, bits: np.ndarray) -> None:
        """Accumulate row-activity statistics; recalibrate when due.

        Runs before the batch is processed, so a recalibration applies
        from the *current* call onward — decisions stay bit-identical
        either way (exact mode only ever reaches here).
        """
        if self._row_index is not None:
            self._freq += bits[:, self._row_index].sum(axis=0)
        else:
            self._freq += bits.sum(axis=0)
        self._seen += bits.shape[0]
        if self._seen >= self.policy.calibrate_positions:
            order = np.argsort(-self._freq, kind="stable")
            self._build(order)
            self._calibrated = True
            self._freq = None

    def decide(
        self,
        bits: np.ndarray,
        thresholds: np.ndarray,
        care: Optional[np.ndarray] = None,
        ones: Optional[np.ndarray] = None,
        bits32: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, SkipStats]:
        """Columnwise strict comparisons ``row_sum + bias > threshold``.

        ``bits`` is ``(n, rows)`` 0/1 selection signals; ``thresholds``
        broadcasts to ``(n, cols)`` — scalar, per-column ``(cols,)``,
        per-position ``(n, 1)`` (the §4.3 dynamic block thresholds) or
        fully general ``(n, cols)``; ``care`` optionally masks out
        columns whose outcome no longer matters (their output stays 0
        and they never hold a position back); ``ones`` optionally passes
        the per-position active-row counts ``bits.sum(axis=1)`` when the
        caller already has them; ``bits32`` optionally passes a float32
        copy of ``bits`` (the checkpoint's working dtype) so a caller
        sharing one bit matrix across several block estimators converts
        it once instead of per call.

        Returns ``(out, ambiguous, stats)``: ``out`` is the ``(n, cols)``
        float64 0/1 decision plane, ``ambiguous`` a ``(n,)`` bool mask of
        positions the exact mode could not certify (the caller must
        recompute those through the unmodified engine path; always
        all-False in threshold mode).
        """
        bits = np.asarray(bits, dtype=np.float64)
        if bits.ndim == 1:
            bits = bits[None, :]
        n = bits.shape[0]
        cols = self.cols
        out = np.zeros((n, cols))
        ambiguous = np.zeros(n, dtype=bool)
        stats = SkipStats()
        if n == 0 or self.rows == 0:
            return out, ambiguous, stats
        if not self._calibrated:
            self._observe(bits)

        # Row-constant thresholds stay low-rank and broadcast; the
        # exact margin stays (1, cols) by bounding a per-position
        # threshold magnitude with its batch maximum (a larger margin
        # is always sound — at worst one more replay).
        thr = np.asarray(thresholds, dtype=np.float64)
        thr_a = thr if thr.ndim == 2 else np.broadcast_to(thr, (1, cols))
        thr_max = float(np.abs(thr).max())
        if self.policy.exact:
            margin_a = (
                self._margin_base + self._margin_unit * thr_max
            )[None, :]
        else:
            margin_a = np.zeros((1, cols))

        und = (
            np.array(care, dtype=bool, copy=True)
            if care is not None
            else np.ones((n, cols), dtype=bool)
        )
        # Per-position undecided-column count: retirement detection is
        # an O(n) vector compare instead of an (n, cols) reduction.
        und_cnt = und.sum(axis=1)
        stats.est_positions = int(und_cnt.sum())

        head = self._head
        if head < self.rows:
            # Head accumulation + checkpoint, entirely in float32: one
            # k-conditioned interval check over the whole batch, padded
            # so it is conservative under every single-precision
            # rounding (the bias rides inside the bound tables).
            # tail_k is each position's remaining active rows; an
            # exhausted position (tail_k == 0) gets the degenerate
            # [bias, bias] interval — a padded margin check on its
            # already-final accumulator.
            if bits32 is None:
                bits32 = bits.astype(np.float32)
            pb_head = bits32[:, self._ghead]
            acc32 = pb_head @ self._w_head32
            if ones is None:
                local = (
                    bits
                    if self._row_index is None
                    else bits[:, self._row_index]
                )
                ones = local.sum(axis=1)
            # 0/1 sums stay exact in float32 far beyond any layer size,
            # so tail_k is the exact remaining-active count.
            tail_k = np.asarray(ones, dtype=np.float64) - np.asarray(
                pb_head.sum(axis=1), dtype=np.float64
            )
            kk = np.minimum(tail_k, self._cap).astype(np.intp)
            thr32 = thr_a.astype(np.float32)
            m32 = (
                margin_a + self._pad_base + self._pad_unit * thr_max
            ).astype(np.float32)
            fire = acc32 + self._lo32[kk] - m32 > thr32
            newly = (fire | (acc32 + self._hi32[kk] + m32 <= thr32)) & und
            dec = newly.sum(axis=1)
            if dec.any():
                out[newly & fire] = 1.0
                und &= ~newly
                und_cnt -= dec
                stats.est_decided += int(dec.sum())
            done = und_cnt == 0
            rest = np.flatnonzero(~done)
            stats.skipped_rows += int(tail_k[done].sum())
            stats.skipped_slots += int(done.sum()) * (self.rows - head)
            if rest.size == 0:
                return out, ambiguous, stats
            # Survivors recompute their full row sum exactly: a thin
            # two-axis float64 gather plus one contiguous matmul.  The
            # float32 stage never feeds the emitted bits.
            acc = bits[np.ix_(rest, self._gall)] @ self._weights
            und = und[rest]
            if thr_a.shape[0] != 1:
                thr_a = thr_a[rest]
        else:
            # Degenerate head (tiny matrix): no checkpoint, plain exact
            # compute.
            rest = np.arange(n)
            local = bits if self._row_index is None else bits[:, self._gall]
            acc = local @ self._weights
        if self._bias is not None:
            acc = acc + self._bias

        # Final margin check on the (now complete) accumulators.
        fire = acc - margin_a > thr_a
        newly = (fire | (acc + margin_a <= thr_a)) & und
        sub = out[rest]
        sub[newly & fire] = 1.0
        leftover = und & ~newly
        if leftover.any():
            if self.policy.exact:
                ambiguous[rest[leftover.any(axis=1)]] = True
            else:
                sub[leftover & (acc > thr_a)] = 1.0
        out[rest] = sub
        return out, ambiguous, stats


class PackedSuffixBounds:
    """Integer min/max remaining-sum tables for one packed block.

    The companion tables to :func:`repro.core.packed.build_group_tables`:
    at every decision boundary (a multiple of ``policy.group_check`` byte
    groups into the block) and for every remaining popcount ``k`` (capped
    at ``policy.max_k``), the least / greatest possible contribution of
    the not-yet-gathered groups to the integer accumulator.  All values
    are exact integers, so on the split path an early decision against
    the §4.3 firing tables is identical to the final one; threshold mode
    scales the tables by ``confidence`` (rounded toward zero, i.e. toward
    earlier decisions).
    """

    def __init__(self, int_rows: np.ndarray, policy: EstimatorPolicy) -> None:
        rows = np.asarray(int_rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[0] % 8 != 0:
            raise ConfigurationError(
                f"packed bounds need (8*groups, cols) integer rows, got "
                f"{rows.shape}"
            )
        self.groups = rows.shape[0] // 8
        self.cols = rows.shape[1]
        self.check = policy.group_check
        self.cap = policy.max_k
        conf = policy.confidence if policy.mode == "threshold" else 1.0
        self.boundaries: List[int] = list(
            range(self.check, self.groups, self.check)
        )
        self._lo = {}
        self._hi = {}
        for g in self.boundaries:
            suffix = rows[8 * g :]
            lo = _suffix_bound_table(np.minimum(suffix, 0), self.cap)
            hi = _suffix_bound_table(np.maximum(suffix, 0), self.cap)
            if conf < 1.0:
                lo = np.ceil(conf * lo.astype(np.float64)).astype(np.int64)
                hi = np.floor(conf * hi.astype(np.float64)).astype(np.int64)
            self._lo[g] = lo
            self._hi[g] = hi

    def bounds_at(
        self, boundary: int, remaining_popcount: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` int64 ``(n, cols)`` bounds before group ``boundary``."""
        kk = np.minimum(remaining_popcount, self.cap).astype(np.intp)
        return self._lo[boundary][kk], self._hi[boundary][kk]


def packed_fire_band(
    threshold: float,
    bias: np.ndarray,
    unit: float,
    acc_bound: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Safe integer band for the packed *unsplit* firing comparison.

    The off-mode unsplit layer compares ``unit * acc + bias_c > T`` in
    float64.  ``acc >= fire_hi`` certainly fires it and
    ``acc <= kill_lo`` certainly does not, under any float64 rounding of
    the off-mode expression (the band is 5 integer steps wide, dwarfing
    the ~eps-scale roundings of ``q`` and of ``unit*acc + bias``);
    accumulators inside the band must replay the off-mode float
    arithmetic.  Returns int64 ``(fire_hi, kill_lo)`` per column.
    """
    bias_vec = np.asarray(bias, dtype=np.float64)
    q = np.floor((float(threshold) - bias_vec) / float(unit))
    lim = float(acc_bound) + 8.0
    fire_hi = np.clip(q + 3.0, -lim, lim).astype(np.int64)
    kill_lo = np.clip(q - 2.0, -lim, lim).astype(np.int64)
    return fire_hi, kill_lo
