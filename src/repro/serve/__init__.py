"""Micro-batched inference serving over compiled SEI pipelines.

``repro.serve`` turns the one-shot experiment pipeline into a warm,
reusable service:

* :func:`compile_session` compiles the full ``zoo -> quantize -> split ->
  assemble`` chain once into an :class:`InferenceSession` and caches the
  result by configuration digest;
* :class:`MicroBatcher` coalesces concurrent ``submit`` calls into
  size/deadline-bounded batches over a bounded (backpressured) queue and
  fans the per-request results back out as futures;
* fixed-tile execution keeps outputs bit-identical no matter how
  requests were coalesced (see :mod:`repro.serve.session`).

At scale, the **gateway** stacks admission control, consistent
digest-keyed routing and N warm multi-tenant shards on top of the same
batcher (see :mod:`repro.serve.gateway`), and
:mod:`repro.serve.loadgen` drives it with seeded open-loop traffic.

Most callers want the facade instead::

    from repro import api
    with api.serve("network2") as batcher:
        future = batcher.submit(image)
    with api.gateway("network2", shards=4) as gw:
        logits = gw.infer(image)
"""

from repro.serve.batcher import (
    LATENCY_EDGES_MS,
    BatcherConfig,
    BatcherStats,
    MicroBatcher,
)
from repro.serve.clock import SYSTEM_CLOCK, Clock, FakeClock, SystemClock
from repro.serve.gateway import AsyncGateway, GatewayConfig, TokenBucket
from repro.serve.loadgen import (
    LoadProfile,
    generate_schedule,
    load_trace,
    measure_saturation,
    run_load,
    run_profile,
    save_trace,
    stationary_rate,
    summarize,
)
from repro.serve.registry import WarmRegistry
from repro.serve.router import ConsistentRouter
from repro.serve.session import (
    InferenceSession,
    SessionConfig,
    clear_sessions,
    compile_session,
)
from repro.serve.shard import SessionShard

__all__ = [
    "LATENCY_EDGES_MS",
    "BatcherConfig",
    "BatcherStats",
    "MicroBatcher",
    "InferenceSession",
    "SessionConfig",
    "clear_sessions",
    "compile_session",
    "Clock",
    "SystemClock",
    "FakeClock",
    "SYSTEM_CLOCK",
    "ConsistentRouter",
    "WarmRegistry",
    "SessionShard",
    "AsyncGateway",
    "GatewayConfig",
    "TokenBucket",
    "LoadProfile",
    "generate_schedule",
    "stationary_rate",
    "save_trace",
    "load_trace",
    "run_load",
    "run_profile",
    "summarize",
    "measure_saturation",
]
