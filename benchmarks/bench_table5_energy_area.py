"""Table 5: energy and area of the three structures on 4-bit RRAM devices.

Paper (per-picture energy, savings vs the 8-bit DAC+ADC baseline):

    Network 1 @512: 74.25 uJ | 62.31 uJ (16.08%) | 2.58 uJ (96.52%)
    Network 1 @256: 93.75 uJ | 81.80 uJ          | 2.68 uJ (97.15%)
    Network 2 @512: 12.15 uJ | 10.45 uJ (13.97%) | 0.68 uJ (94.37%)
    Network 3 @512: 17.77 uJ | [292.01 uJ]*      | 0.73 uJ (95.89%)

    Area savings: 1-bit+ADC 36.8-56.3%, SEI 74.4-86.6%.
    SEI efficiency: >2000 GOPs/J, ~2 orders above FPGA [2] / GPU.

(*) The paper lists 292.01 uJ for Network 3's 1-bit-Input+ADC design while
simultaneously reporting a 15.22% saving — mutually inconsistent; we treat
it as a typo for ~15 uJ and reproduce the consistent trend instead (see
EXPERIMENTS.md).
"""

import pytest

from repro.arch import (
    evaluate_design,
    format_table,
    reference_efficiency_rows,
    table5_rows,
)

from benchmarks.conftest import heading


def run_table5():
    return table5_rows()


@pytest.mark.benchmark(group="table5")
def test_table5_energy_and_area(benchmark):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)

    heading("Table 5 — energy/area of the three structures (4-bit devices)")
    print(format_table(rows))
    print()
    print("reference platforms (§5.3):")
    print(format_table(reference_efficiency_rows()))

    by_key = {
        (r["network"], r["crossbar"], r["structure"]): r for r in rows
    }

    # Energy orderings and savings bands per configuration.
    for name, size in [
        ("network1", 512),
        ("network1", 256),
        ("network2", 512),
        ("network3", 512),
    ]:
        base = by_key[(name, size, "DAC+ADC")]
        onebit = by_key[(name, size, "1-bit-Input+ADC")]
        sei = by_key[(name, size, "SEI")]
        assert sei["energy_uj"] < onebit["energy_uj"] < base["energy_uj"]
        assert sei["energy_saving_pct"] > 95.0
        assert 8.0 < onebit["energy_saving_pct"] < 30.0
        assert sei["area_saving_pct"] > 74.0
        assert 25.0 < onebit["area_saving_pct"] < 60.0

    # Network 1 baseline in the paper's decade; SEI in the paper's decade.
    n1 = by_key[("network1", 512, "DAC+ADC")]
    assert 30 < n1["energy_uj"] < 150
    n1_sei = by_key[("network1", 512, "SEI")]
    assert 0.5 < n1_sei["energy_uj"] < 10

    # >2000 GOPs/J and ~2 orders of magnitude over FPGA/GPU.
    assert n1_sei["gops_per_j"] > 2000
    for ref in reference_efficiency_rows():
        assert n1_sei["gops_per_j"] > 50 * ref["gops_per_j"]


@pytest.mark.benchmark(group="table5")
def test_table5_smaller_crossbars_increase_gains(benchmark):
    """§5.3: gains grow when smaller crossbars force more merging."""

    def run():
        savings = {}
        for size in (512, 256, 128):
            base = evaluate_design(
                "network1",
                "dac_adc",
                _tech_with_size(size),
            )
            sei = evaluate_design("network1", "sei", _tech_with_size(size))
            savings[size] = sei.cost.energy_saving_vs(base.cost)
        return savings

    savings = benchmark.pedantic(run, rounds=1, iterations=1)
    heading("Table 5 follow-up — SEI energy saving vs crossbar size limit")
    print({k: f"{v:.2%}" for k, v in savings.items()})
    assert savings[128] >= savings[256] >= savings[512]


def _tech_with_size(size):
    from repro.hw import TechnologyModel

    return TechnologyModel().with_crossbar_size(size)
