"""Unit and property tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import functional as F


def naive_conv2d(images, weights, bias=None, stride=1, padding=0):
    """Reference convolution with explicit loops."""
    n, c, h, w = images.shape
    c_out, c_in, kh, kw = weights.shape
    if padding:
        images = np.pad(
            images, ((0, 0), (0, 0), (padding,) * 2, (padding,) * 2)
        )
        h += 2 * padding
        w += 2 * padding
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for b in range(n):
        for o in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = images[
                        b, :, i * stride : i * stride + kh, j * stride : j * stride + kw
                    ]
                    out[b, o, i, j] = (patch * weights[o]).sum()
            if bias is not None:
                out[b, o] += bias[o]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(28, 5, 1, 0) == 24

    def test_with_padding(self):
        assert F.conv_output_size(28, 3, 1, 1) == 28

    def test_with_stride(self):
        assert F.conv_output_size(28, 4, 2, 0) == 13

    def test_partial_window_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(11, 2, 2, 0)

    def test_partial_window_allowed_floors(self):
        assert F.conv_output_size(11, 2, 2, 0, allow_partial=True) == 5

    def test_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(3, 5, 1, 0)


class TestIm2col:
    def test_shape(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(images, 3, 3)
        assert cols.shape == (2 * 6 * 6, 3 * 9)

    def test_values_single_window(self, rng):
        images = rng.normal(size=(1, 2, 3, 3))
        cols = F.im2col(images, 3, 3)
        assert cols.shape == (1, 18)
        np.testing.assert_allclose(cols[0], images[0].ravel())

    def test_channel_major_ordering(self):
        images = np.zeros((1, 2, 2, 2))
        images[0, 0] = [[1, 2], [3, 4]]
        images[0, 1] = [[5, 6], [7, 8]]
        cols = F.im2col(images, 2, 2)
        np.testing.assert_allclose(cols[0], [1, 2, 3, 4, 5, 6, 7, 8])

    def test_rejects_3d(self, rng):
        with pytest.raises(ShapeError):
            F.im2col(rng.normal(size=(3, 8, 8)), 3, 3)

    def test_stride(self, rng):
        images = rng.normal(size=(1, 1, 6, 6))
        cols = F.im2col(images, 2, 2, stride=2)
        assert cols.shape == (9, 4)
        np.testing.assert_allclose(cols[0], images[0, 0, :2, :2].ravel())

    def test_padding_zeros_border(self, rng):
        images = rng.normal(size=(1, 1, 4, 4))
        cols = F.im2col(images, 3, 3, padding=1)
        # First window is the top-left corner: 5 zeros from padding.
        first = cols[0].reshape(3, 3)
        assert first[0, 0] == 0.0 and first[0, 2] == 0.0


class TestCol2im:
    def test_adjoint_property(self, rng):
        """<W, im2col(x)> == <col2im(W), x> — col2im is the exact adjoint."""
        x = rng.normal(size=(2, 3, 7, 7))
        cols = F.im2col(x, 3, 3, stride=2)
        w = rng.normal(size=cols.shape)
        lhs = float((w * cols).sum())
        back = F.col2im(w, x.shape, 3, 3, stride=2)
        rhs = float((back * x).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_adjoint_with_padding(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        cols = F.im2col(x, 3, 3, padding=1)
        w = rng.normal(size=cols.shape)
        lhs = float((w * cols).sum())
        back = F.col2im(w, x.shape, 3, 3, padding=1)
        assert lhs == pytest.approx(float((back * x).sum()), rel=1e-10)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            F.col2im(rng.normal(size=(5, 9)), (1, 1, 6, 6), 3, 3)

    def test_accumulates_overlaps(self):
        cols = np.ones((4, 4))  # 2x2 windows over a 3x3 image
        image = F.col2im(cols, (1, 1, 3, 3), 2, 2)
        # The centre pixel is covered by all four windows.
        assert image[0, 0, 1, 1] == 4.0
        assert image[0, 0, 0, 0] == 1.0


class TestConv2d:
    def test_matches_naive(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        weights = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=4)
        out, _ = F.conv2d(images, weights, bias)
        np.testing.assert_allclose(out, naive_conv2d(images, weights, bias), atol=1e-10)

    def test_matches_naive_strided_padded(self, rng):
        images = rng.normal(size=(2, 2, 9, 9))
        weights = rng.normal(size=(3, 2, 3, 3))
        out, _ = F.conv2d(images, weights, stride=2, padding=1)
        np.testing.assert_allclose(
            out, naive_conv2d(images, weights, stride=2, padding=1), atol=1e-10
        )

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(rng.normal(size=(1, 2, 8, 8)), rng.normal(size=(4, 3, 3, 3)))

    def test_weights_must_be_4d(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(rng.normal(size=(1, 2, 8, 8)), rng.normal(size=(4, 18)))

    def test_gradients_numerically(self, rng):
        images = rng.normal(size=(1, 2, 5, 5))
        weights = rng.normal(size=(2, 2, 3, 3))
        out, cols = F.conv2d(images, weights)
        grad_out = rng.normal(size=out.shape)
        grad_images, grad_weights, grad_bias = F.conv2d_backward(
            grad_out, cols, weights, images.shape
        )

        def loss(imgs, wts):
            o, _ = F.conv2d(imgs, wts)
            return float((o * grad_out).sum())

        eps = 1e-6
        for index in [(0, 0, 2, 2), (0, 1, 4, 0)]:
            bumped = images.copy()
            bumped[index] += eps
            numeric = (loss(bumped, weights) - loss(images, weights)) / eps
            assert grad_images[index] == pytest.approx(numeric, rel=1e-4)
        for index in [(0, 0, 0, 0), (1, 1, 2, 1)]:
            bumped = weights.copy()
            bumped[index] += eps
            numeric = (loss(images, bumped) - loss(images, weights)) / eps
            assert grad_weights[index] == pytest.approx(numeric, rel=1e-4)
        np.testing.assert_allclose(
            grad_bias, grad_out.sum(axis=(0, 2, 3)), atol=1e-10
        )


class TestMaxPool:
    def test_basic(self):
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, argmax = F.maxpool2d(image, 2)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_partial_window_dropped(self, rng):
        images = rng.normal(size=(1, 2, 5, 5))
        out, _ = F.maxpool2d(images, 2)
        assert out.shape == (1, 2, 2, 2)

    def test_backward_routes_to_argmax(self):
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, argmax = F.maxpool2d(image, 2)
        grad = np.ones_like(out)
        back = F.maxpool2d_backward(grad, argmax, image.shape, 2)
        expected = np.zeros((4, 4))
        for i, j in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[i, j] = 1.0
        np.testing.assert_allclose(back[0, 0], expected)

    def test_backward_numerically(self, rng):
        images = rng.normal(size=(1, 1, 6, 6))
        out, argmax = F.maxpool2d(images, 2)
        grad_out = rng.normal(size=out.shape)
        back = F.maxpool2d_backward(grad_out, argmax, images.shape, 2)

        def loss(x):
            o, _ = F.maxpool2d(x, 2)
            return float((o * grad_out).sum())

        eps = 1e-7
        for index in [(0, 0, 0, 0), (0, 0, 3, 3), (0, 0, 5, 5)]:
            bumped = images.copy()
            bumped[index] += eps
            numeric = (loss(bumped) - loss(images)) / eps
            assert back[index] == pytest.approx(numeric, abs=1e-4)


class TestReLU:
    def test_forward(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(F.relu(x), [0.0, 0.0, 3.0])

    def test_backward_masks_negatives(self):
        x = np.array([-1.0, 2.0])
        grad = np.array([5.0, 7.0])
        np.testing.assert_allclose(F.relu_backward(grad, x), [0.0, 7.0])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(4, 9),
    kernel=st.integers(1, 3),
)
def test_im2col_col2im_adjoint_property(n, c, size, kernel):
    """Property: col2im is the adjoint of im2col for any geometry."""
    gen = np.random.default_rng(n * 100 + c * 10 + size + kernel)
    x = gen.normal(size=(n, c, size, size))
    cols = F.im2col(x, kernel, kernel)
    w = gen.normal(size=cols.shape)
    lhs = float((w * cols).sum())
    rhs = float((F.col2im(w, x.shape, kernel, kernel) * x).sum())
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(2, 10),
    pool=st.integers(1, 3),
)
def test_maxpool_output_bounded_by_input(size, pool):
    """Property: pooled maxima are elements of the input."""
    if size < pool:
        return
    gen = np.random.default_rng(size * 13 + pool)
    x = gen.normal(size=(1, 1, size, size))
    out, _ = F.maxpool2d(x, pool)
    assert np.all(np.isin(out.ravel(), x.ravel()))
