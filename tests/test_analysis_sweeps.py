"""Tests for repro.analysis.sweeps (now a shim over repro.dse).

The behavioural tests below run through the deprecated aliases on
purpose: the shim must stay functionally identical to the originals
until it is removed.
"""

import warnings

import pytest

from repro.analysis import design_space_sweep, pareto_front
from repro.errors import ConfigurationError


class TestDeprecationShim:
    def test_design_space_sweep_warns_and_delegates(self):
        import repro.dse

        with pytest.warns(DeprecationWarning, match="repro.dse"):
            rows = design_space_sweep(
                "network2", crossbar_sizes=(512,), cell_bits=(4,)
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the new home must not warn
            direct = repro.dse.design_space_sweep(
                "network2", crossbar_sizes=(512,), cell_bits=(4,)
            )
        assert rows == direct

    def test_pareto_front_warns_and_delegates(self):
        rows = [
            {"energy_uj": 1.0, "area_mm2": 2.0},
            {"energy_uj": 2.0, "area_mm2": 3.0},
        ]
        with pytest.warns(DeprecationWarning, match="repro.dse"):
            front = pareto_front(rows)
        assert front == rows[:1]

    def test_names_still_importable_from_analysis_package(self):
        from repro.analysis import sweeps

        assert sweeps.design_space_sweep is design_space_sweep
        assert sweeps.pareto_front is pareto_front


class TestDesignSpaceSweep:
    def test_grid_coverage(self):
        rows = design_space_sweep(
            "network2", crossbar_sizes=(512, 256), cell_bits=(4,)
        )
        assert len(rows) == 2 * 1 * 2  # sizes x bits x structures
        keys = {(r["crossbar"], r["structure"]) for r in rows}
        assert (512, "sei") in keys and (256, "dac_adc") in keys

    def test_baseline_saving_is_zero(self):
        rows = design_space_sweep(
            "network2", crossbar_sizes=(512,), cell_bits=(4,)
        )
        base = next(r for r in rows if r["structure"] == "dac_adc")
        assert base["energy_saving_vs_baseline"] == pytest.approx(0.0)

    def test_sei_always_saves(self):
        rows = design_space_sweep(
            "network1", crossbar_sizes=(512, 128), cell_bits=(2, 4, 8)
        )
        for row in rows:
            if row["structure"] == "sei":
                assert row["energy_saving_vs_baseline"] > 0.9

    def test_higher_precision_cells_reduce_sei_cost(self):
        rows = design_space_sweep(
            "network1", crossbar_sizes=(512,), cell_bits=(2, 4, 8)
        )
        sei = sorted(
            (r for r in rows if r["structure"] == "sei"),
            key=lambda r: r["cell_bits"],
        )
        energies = [r["energy_uj"] for r in sei]
        assert energies == sorted(energies, reverse=True)

    def test_invalid_cell_bits(self):
        with pytest.raises(ConfigurationError):
            design_space_sweep("network1", cell_bits=(3,))


class TestParetoFront:
    def test_removes_dominated(self):
        rows = [
            {"energy_uj": 1.0, "area_mm2": 1.0, "tag": "good"},
            {"energy_uj": 2.0, "area_mm2": 2.0, "tag": "dominated"},
            {"energy_uj": 0.5, "area_mm2": 3.0, "tag": "tradeoff"},
        ]
        front = pareto_front(rows)
        tags = {r["tag"] for r in front}
        assert tags == {"good", "tradeoff"}

    def test_all_identical_rows_kept(self):
        rows = [{"energy_uj": 1.0}] * 3
        front = pareto_front(rows, minimise=("energy_uj",))
        assert len(front) == 3

    def test_missing_objective_raises(self):
        with pytest.raises(ConfigurationError):
            pareto_front([{"x": 1}], minimise=("energy_uj",))

    def test_empty_objectives_raise(self):
        with pytest.raises(ConfigurationError):
            pareto_front([{"energy_uj": 1.0}], minimise=())

    def test_front_of_real_sweep_nonempty(self):
        rows = design_space_sweep(
            "network2", crossbar_sizes=(512, 256), cell_bits=(4, 8)
        )
        front = pareto_front([r for r in rows if r["structure"] == "sei"])
        assert front
        assert all(r["structure"] == "sei" for r in front)
