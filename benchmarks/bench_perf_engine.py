"""Performance-engine benchmark: fused kernels vs the retained references.

Measures the two hot paths this repo optimises and records the speedups
in ``BENCH_perf_engine.json`` at the repo root:

* **Algorithm 1 wall-clock** — the full greedy threshold search on
  network2 (two refinement passes, the paper's iterate-until-stable
  loop) with the fused candidate scan: all thresholds are binarized and
  scored in batched matmul passes, prefix activations are cached across
  scans, and converged refinement passes are memoized.  The reference
  engine keeps the per-candidate loop and recollects activations each
  pass.  Both engines produce identical thresholds and search curves
  (asserted here and in ``tests/test_perf_engine.py``).  Target: >= 5x.
* **Noisy SEI inference throughput** — samples/s of the full-hardware
  network2 (:func:`repro.core.hardware_network.assemble_sei_network`)
  with read noise enabled: the fused engine draws the read noise for all
  K bit-slices of a crossbar in one vectorized call and collapses the
  slice/block loops into stacked matmuls; the reference engine keeps the
  per-slice loops.  The two engines are timed interleaved so slow
  machine drift cannot land on one side of the ratio.  Target: >= 3x.
* **Packed popcount inference throughput** — samples/s of network1 on
  the ``packed`` bit-plane engine under the paper's §5 fault regime
  (stuck-at cells, no programming variation): activations pack into
  byte/uint64 bit planes, column currents come from precomputed
  per-group partial-sum tables, firing decisions from integer threshold
  tables, and the DAC layer runs exact-integer float32 with its
  binarize folded into the kernel.  Logits are asserted ``allclose``
  against both the fused and reference engines before timing.
  Targets: >= 10x vs reference, >= 2.5x vs fused.

The report also embeds the :mod:`repro.obs` run manifest and, from one
traced inference pass executed *after* the timings, the hardware
activity counters and SEI dynamic-power estimate for the benchmark
workload.

Run as a script (the CI smoke check uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.analysis.perf import speedup, time_call, time_interleaved
from repro.core.engines import EngineSpec, compile_network
from repro.core.hardware_network import HardwareConfig
from repro.core.threshold_search import SearchConfig, search_thresholds
from repro.hw.device import RRAMDevice
from repro.zoo import get_dataset, get_quantized, get_trained_network

#: Speedup targets the fused engines must clear (full mode).
ALGORITHM1_TARGET = 5.0
SEI_INFERENCE_TARGET = 3.0
#: The packed engine's targets on the stuck-at-fault workload.
PACKED_REFERENCE_TARGET = 10.0
PACKED_FUSED_TARGET = 2.5

BENCH_NETWORK = "network2"
#: The packed-engine workload (Table 2's MNIST entry network).
PACKED_NETWORK = "network1"
#: Refinement passes for the Algorithm 1 workload.  The paper's search
#: re-optimises each threshold with the others fixed until stable; two
#: passes cover the convergence check.  The fused engine memoizes passes
#: whose context did not change, the reference recollects and rescans.
REFINE_PASSES = 2
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_perf_engine.json"


def bench_algorithm1(dataset, quick: bool) -> dict:
    """Greedy search wall-clock, fused vs reference, identical results."""
    samples = 600 if quick else 2500
    repeats = 1 if quick else 2
    images = dataset.train.images[:samples]
    labels = dataset.train.labels[:samples]
    network = get_trained_network(BENCH_NETWORK, dataset=dataset)

    def run(engine: str):
        return search_thresholds(
            network,
            images,
            labels,
            SearchConfig(engine=engine, refine_passes=REFINE_PASSES),
        )

    fused_result = run("fused")
    reference_result = run("reference")
    if fused_result.thresholds != reference_result.thresholds:
        raise AssertionError(
            "fused and reference searches disagree: "
            f"{fused_result.thresholds} vs {reference_result.thresholds}"
        )
    if fused_result.search_curves != reference_result.search_curves:
        raise AssertionError("fused and reference search curves disagree")

    fused = time_call(
        lambda: run("fused"), label="algorithm1-fused",
        repeats=repeats, warmup=0,
    )
    reference = time_call(
        lambda: run("reference"), label="algorithm1-reference",
        repeats=repeats, warmup=0,
    )
    ratio = speedup(reference, fused)
    return {
        "network": BENCH_NETWORK,
        "samples": samples,
        "refine_passes": REFINE_PASSES,
        "reference_seconds": reference.seconds,
        "fused_seconds": fused.seconds,
        "speedup": ratio,
        "target": ALGORITHM1_TARGET,
        "target_met": ratio >= ALGORITHM1_TARGET,
        "results_identical": True,
        "thresholds": fused_result.thresholds,
    }


def bench_sei_inference(dataset, quick: bool) -> dict:
    """Noisy full-hardware inference throughput, fused vs reference."""
    samples = 128 if quick else 512
    repeats = 2 if quick else 6
    images = dataset.test.images[:samples]
    qm = get_quantized(BENCH_NETWORK, dataset=dataset)
    config = HardwareConfig(
        device=RRAMDevice(bits=4, program_sigma=0.1, read_sigma=0.02),
    )

    def build(engine: str):
        return compile_network(
            qm.search.network,
            qm.search.thresholds,
            EngineSpec(name=engine, hardware=config),
        )

    fused_net = build("fused")
    reference_net = build("reference")
    # Same seed -> same programmed cells; read-noise streams are drawn
    # identically (one stacked draw == K sequential draws), so the two
    # engines predict the same classes run-for-run.
    timings = time_interleaved(
        {
            "sei-fused": lambda: fused_net.predict(images),
            "sei-reference": lambda: reference_net.predict(images),
        },
        repeats=repeats,
        warmup=1,
        items=samples,
    )
    fused = timings["sei-fused"]
    reference = timings["sei-reference"]
    ratio = speedup(reference, fused)

    # One traced pass *after* the timings (so the timed runs stay
    # uninstrumented): hardware activity counters + the SEI dynamic-power
    # estimate for the benchmark workload.
    trace_batch = images[: min(32, samples)]
    with obs.recording() as rec:
        fused_net.predict(trace_batch)
    activity = {
        "samples": int(len(trace_batch)),
        "metrics": rec.metrics.as_dict(),
    }
    power = obs.power.estimate_from_metrics(rec.metrics)
    if power is not None:
        activity["power"] = power

    return {
        "network": BENCH_NETWORK,
        "samples": samples,
        "read_sigma": config.device.read_sigma,
        "program_sigma": config.device.program_sigma,
        "reference_seconds": reference.seconds,
        "fused_seconds": fused.seconds,
        "reference_samples_per_second": reference.throughput,
        "fused_samples_per_second": fused.throughput,
        "speedup": ratio,
        "target": SEI_INFERENCE_TARGET,
        "target_met": ratio >= SEI_INFERENCE_TARGET,
        "traced_activity": activity,
    }


def bench_packed_inference(dataset, quick: bool) -> dict:
    """Packed popcount engine vs fused and reference, stuck-fault regime."""
    samples = 128 if quick else 512
    repeats = 2 if quick else 6
    images = dataset.test.images[:samples]
    qm = get_quantized(PACKED_NETWORK, dataset=dataset)
    # The paper's §5 noise study: defective (stuck) cells, no programming
    # variation — the regime where the integer re-lowering stays exact.
    config = HardwareConfig(
        device=RRAMDevice(
            bits=4,
            program_sigma=0.0,
            read_sigma=0.0,
            stuck_low_rate=0.02,
            stuck_high_rate=0.02,
        ),
        partition_method="natural",
    )

    def build(engine: str):
        return compile_network(
            qm.search.network,
            qm.search.thresholds,
            EngineSpec(name=engine, hardware=config),
        )

    packed_net = build("packed")
    fused_net = build("fused")
    reference_net = build("reference")
    packed_logits = packed_net.predict(images)
    fused_logits = fused_net.predict(images)
    reference_logits = reference_net.predict(images)
    for name, other in (("fused", fused_logits), ("reference", reference_logits)):
        if not np.allclose(packed_logits, other, rtol=1e-9, atol=1e-12):
            raise AssertionError(
                f"packed and {name} engines disagree (max |diff| "
                f"{np.abs(packed_logits - other).max():.3e})"
            )

    timings = time_interleaved(
        {
            "packed": lambda: packed_net.predict(images),
            "packed-fused": lambda: fused_net.predict(images),
            "packed-reference": lambda: reference_net.predict(images),
        },
        repeats=repeats,
        warmup=1,
        items=samples,
    )
    packed = timings["packed"]
    fused = timings["packed-fused"]
    reference = timings["packed-reference"]
    vs_reference = speedup(reference, packed)
    vs_fused = speedup(fused, packed)

    # Traced pass after the timings: popcount/activity counters from the
    # packed kernels feed the SEI power model.
    trace_batch = images[: min(32, samples)]
    with obs.recording() as rec:
        packed_net.predict(trace_batch)
    activity = {
        "samples": int(len(trace_batch)),
        "metrics": rec.metrics.as_dict(),
    }
    power = obs.power.estimate_from_metrics(rec.metrics)
    if power is not None:
        activity["power"] = power

    return {
        "network": PACKED_NETWORK,
        "samples": samples,
        "partition_method": config.partition_method,
        "stuck_low_rate": config.device.stuck_low_rate,
        "stuck_high_rate": config.device.stuck_high_rate,
        "packed_seconds": packed.seconds,
        "fused_seconds": fused.seconds,
        "reference_seconds": reference.seconds,
        "packed_samples_per_second": packed.throughput,
        "fused_samples_per_second": fused.throughput,
        "reference_samples_per_second": reference.throughput,
        "results_allclose": True,
        "prebinarized_layers": sorted(packed_net.prebinarized),
        "vs_reference": {
            "speedup": vs_reference,
            "target": PACKED_REFERENCE_TARGET,
            "target_met": vs_reference >= PACKED_REFERENCE_TARGET,
        },
        "vs_fused": {
            "speedup": vs_fused,
            "target": PACKED_FUSED_TARGET,
            "target_met": vs_fused >= PACKED_FUSED_TARGET,
        },
        "traced_activity": activity,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sample counts, single timing run (CI smoke check)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    dataset = get_dataset()
    print(f"== Algorithm 1 wall-clock ({BENCH_NETWORK}) ==")
    algorithm1 = bench_algorithm1(dataset, args.quick)
    print(
        f"  reference {algorithm1['reference_seconds']:.2f}s  "
        f"fused {algorithm1['fused_seconds']:.2f}s  "
        f"speedup {algorithm1['speedup']:.1f}x (target "
        f">={algorithm1['target']:.0f}x)"
    )

    print(f"== Noisy SEI inference throughput ({BENCH_NETWORK}) ==")
    sei = bench_sei_inference(dataset, args.quick)
    print(
        f"  reference {sei['reference_samples_per_second']:.1f} samples/s  "
        f"fused {sei['fused_samples_per_second']:.1f} samples/s  "
        f"speedup {sei['speedup']:.1f}x (target >={sei['target']:.0f}x)"
    )

    print(f"== Packed popcount inference throughput ({PACKED_NETWORK}) ==")
    packed = bench_packed_inference(dataset, args.quick)
    print(
        f"  reference {packed['reference_samples_per_second']:.1f} samples/s  "
        f"fused {packed['fused_samples_per_second']:.1f} samples/s  "
        f"packed {packed['packed_samples_per_second']:.1f} samples/s"
    )
    print(
        f"  speedup {packed['vs_reference']['speedup']:.1f}x vs reference "
        f"(target >={packed['vs_reference']['target']:.0f}x), "
        f"{packed['vs_fused']['speedup']:.1f}x vs fused "
        f"(target >={packed['vs_fused']['target']:.1f}x)"
    )

    report = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "manifest": obs.run_manifest(bench="perf_engine"),
        "algorithm1_search": algorithm1,
        "noisy_sei_inference": sei,
        "packed_inference": packed,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Quick mode is a smoke check (tiny workloads distort ratios); the
    # full run enforces the targets.
    if not args.quick and not (
        algorithm1["target_met"]
        and sei["target_met"]
        and packed["vs_reference"]["target_met"]
        and packed["vs_fused"]["target_met"]
    ):
        print("speedup targets NOT met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
