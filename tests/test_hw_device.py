"""Unit and property tests for repro.hw.device."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.hw import RRAMDevice


class TestConstruction:
    def test_defaults_are_paper_values(self):
        device = RRAMDevice()
        assert device.bits == 4
        assert device.num_levels == 16

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            RRAMDevice(bits=0)

    def test_invalid_conductance_range(self):
        with pytest.raises(ConfigurationError):
            RRAMDevice(g_min=1e-4, g_max=1e-6)
        with pytest.raises(ConfigurationError):
            RRAMDevice(g_min=-1.0)

    def test_invalid_sigmas(self):
        with pytest.raises(ConfigurationError):
            RRAMDevice(program_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            RRAMDevice(read_sigma=-0.1)


class TestLevels:
    def test_level_step(self):
        device = RRAMDevice(bits=2, g_min=0.0, g_max=3.0)
        assert device.level_step == pytest.approx(1.0)

    def test_level_conductance(self):
        device = RRAMDevice(bits=2, g_min=0.0, g_max=3.0)
        np.testing.assert_allclose(
            device.level_conductance(np.array([0, 1, 2, 3])), [0, 1, 2, 3]
        )

    def test_level_out_of_range(self):
        device = RRAMDevice(bits=2)
        with pytest.raises(ShapeError):
            device.level_conductance(np.array([4]))

    def test_quantize_levels_endpoints(self):
        device = RRAMDevice(bits=4)
        levels = device.quantize_levels(np.array([0.0, 1.0]))
        np.testing.assert_array_equal(levels, [0, 15])

    def test_quantize_levels_rounding(self):
        device = RRAMDevice(bits=4)
        assert device.quantize_levels(np.array([0.5]))[0] in (7, 8)

    def test_quantize_rejects_out_of_range(self):
        device = RRAMDevice()
        with pytest.raises(ShapeError):
            device.quantize_levels(np.array([1.5]))
        with pytest.raises(ShapeError):
            device.quantize_levels(np.array([-0.2]))

    def test_quantize_normalized_idempotent(self, rng):
        device = RRAMDevice(bits=4)
        values = rng.random(100)
        once = device.quantize_normalized(values)
        twice = device.quantize_normalized(once)
        np.testing.assert_allclose(once, twice)

    def test_quantization_error_bounded(self, rng):
        device = RRAMDevice(bits=4)
        values = rng.random(200)
        err = np.abs(device.quantize_normalized(values) - values)
        assert err.max() <= 0.5 / (device.num_levels - 1) + 1e-12


class TestProgramRead:
    def test_noiseless_program_is_exact_levels(self, rng):
        device = RRAMDevice(bits=4)
        values = rng.random(50)
        conductance = device.program(values)
        recovered = device.conductance_to_normalized(conductance)
        np.testing.assert_allclose(
            recovered, device.quantize_normalized(values), atol=1e-12
        )

    def test_program_noise_statistics(self):
        device = RRAMDevice(bits=4, program_sigma=0.2)
        rng = np.random.default_rng(0)
        target = np.full(20000, 0.5)
        conductance = device.program(target, rng)
        ideal = device.level_conductance(device.quantize_levels(target))
        errors = conductance - ideal
        assert abs(errors.mean()) < 0.05 * device.level_step
        assert errors.std() == pytest.approx(0.2 * device.level_step, rel=0.1)

    def test_program_clips_to_range(self):
        device = RRAMDevice(bits=2, program_sigma=5.0)
        rng = np.random.default_rng(0)
        conductance = device.program(np.full(1000, 1.0), rng)
        assert conductance.max() <= device.g_max + 1e-15
        assert conductance.min() >= device.g_min - 1e-15

    def test_read_noiseless_identity(self, rng):
        device = RRAMDevice(read_sigma=0.0)
        conductance = device.program(rng.random(10))
        np.testing.assert_array_equal(device.read(conductance), conductance)

    def test_read_noise_perturbs(self):
        device = RRAMDevice(read_sigma=0.05)
        rng = np.random.default_rng(1)
        conductance = device.program(np.full(100, 0.7), rng)
        noisy = device.read(conductance, rng)
        assert not np.allclose(noisy, conductance)
        assert noisy.min() >= 0.0


@settings(max_examples=30, deadline=None)
@given(
    bits=st.integers(1, 6),
    value=st.floats(0.0, 1.0),
)
def test_quantize_round_trip_property(bits, value):
    """Property: quantization maps into the representable grid exactly."""
    device = RRAMDevice(bits=bits)
    q = device.quantize_normalized(np.array([value]))[0]
    grid = np.arange(device.num_levels) / (device.num_levels - 1)
    assert np.any(np.isclose(q, grid, atol=1e-12))
