"""The live telemetry plane: continuously-queryable serving observability.

``repro.obs`` so far produced *post-mortem* artifacts — JSON exports
written when a run finishes.  :class:`TelemetryPlane` layers an
operational surface on the same recorder, for long-lived serving
processes:

* **snapshots** — :meth:`sample` takes a sequence-numbered copy-on-read
  :class:`~repro.obs.metrics.MetricsSnapshot` of the registry and feeds
  the sliding-window :class:`~repro.obs.slo.SloTracker`;
* **SLO windows** — windowed p50/p95/p99/p999 latency, error and
  rejection rates, and SEI dynamic power per request (joules), checked
  against configurable targets with breach counters;
* **flight recorder** — a bounded ring of per-request/per-batch events
  from the :class:`~repro.serve.MicroBatcher`, dumped automatically on
  SLO breach or batch failure and on demand via ``/flight``;
* **exposition** — :meth:`serve` starts the stdlib HTTP thread from
  :mod:`repro.obs.exposition` publishing ``/metrics`` (Prometheus
  text), ``/metrics.json``, ``/healthz`` and ``/flight``.

Typical wiring (what ``repro-cli serve --listen`` does)::

    plane = TelemetryPlane(slo=SloConfig(window_s=30, p99_ms=50))
    plane.install()                      # recorder becomes process-global
    batcher = plane.attach(session.serve())
    server = plane.serve(port=9100)      # http://127.0.0.1:9100/metrics

Sampling is scrape-driven: every ``/metrics`` hit (or ``top`` frame)
advances the SLO window.  A plane with no scrapers accumulates metrics
but evaluates no windows.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro.obs import recorder as _recorder
from repro.obs.flight import FlightRecorder
from repro.obs.recorder import Recorder
from repro.obs.slo import QUANTILES, SloConfig, SloTracker

__all__ = ["TelemetryPlane", "render_dashboard"]


class TelemetryPlane:
    """Snapshot + SLO + flight-recorder plane over one recorder.

    ``recorder`` defaults to the currently-active process recorder, or
    a fresh one when instrumentation is off (call :meth:`install` to
    make it global so hot paths feed it).
    """

    def __init__(
        self,
        recorder: Optional[Recorder] = None,
        slo: Optional[SloConfig] = None,
        flight_capacity: int = 2048,
        max_kept_dumps: int = 8,
    ) -> None:
        if recorder is None:
            recorder = _recorder.active()
        if recorder is None:
            recorder = Recorder()
        self.recorder = recorder
        self.flight = FlightRecorder(
            capacity=flight_capacity,
            auto_dump_kinds={"batch_failed"},
            on_auto_dump=self._auto_dump,
        )
        self.tracker = SloTracker(slo, on_breach=self._on_breach)
        self.dumps: "deque[dict]" = deque(maxlen=max_kept_dumps)
        self._lock = threading.Lock()
        self._started_mono = time.monotonic()
        self._started_wall = time.time()
        self._last_sample: Optional[dict] = None
        self._installed = False

    # -- wiring ----------------------------------------------------------
    def install(self) -> "TelemetryPlane":
        """Make this plane's recorder the process-global recorder.

        No-op when it already is; when a *different* recorder is
        active, the plane adopts it instead of fighting over the global
        slot (the CLI's ``--trace``/``--metrics-out`` recorder wins).
        """
        active = _recorder.active()
        if active is None:
            _recorder.enable(self.recorder)
            self._installed = True
        elif active is not self.recorder:
            self.recorder = active
        return self

    def uninstall(self) -> None:
        """Undo :meth:`install`: disable the global recorder iff this
        plane enabled it (an adopted recorder is left in place)."""
        if self._installed and _recorder.active() is self.recorder:
            _recorder.disable()
        self._installed = False

    def attach(self, batcher):
        """Point a :class:`~repro.serve.MicroBatcher` at the flight ring."""
        batcher.flight = self.flight
        return batcher

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        """A started :class:`~repro.obs.exposition.ExpositionServer`."""
        from repro.obs.exposition import ExpositionServer

        return ExpositionServer(self, host=host, port=port).start()

    # -- breach / failure hooks ------------------------------------------
    def _keep_dump(self, reason: str) -> dict:
        dump = self.flight.dump(reason=reason)
        with self._lock:
            self.dumps.append(dump)
        self.recorder.metrics.inc("obs/flight/auto_dumps")
        return dump

    def _on_breach(self, name, observed, limit, stats) -> None:
        self._keep_dump(
            f"slo-breach:{name} observed={observed:.6g} limit={limit:.6g}"
        )

    def _auto_dump(self, kind: str, event: dict) -> None:
        self._keep_dump(f"event:{kind}")

    # -- query surface ---------------------------------------------------
    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_mono

    def sample(self) -> dict:
        """Take a snapshot, advance the SLO window, return live status.

        The payload is JSON-safe and self-contained: sequence number,
        uptime, the windowed stats (latency quantiles, rates, power per
        request), configured targets, breach counters and flight-ring
        occupancy.
        """
        snapshot = self.recorder.metrics.snapshot()
        window = self.tracker.observe(snapshot)
        sample = {
            "seq": snapshot.seq,
            "wall_time_s": snapshot.wall_time_s,
            "uptime_s": time.monotonic() - self._started_mono,
            "window": window,
            "slo": {
                "window_s": self.tracker.config.window_s,
                "targets": self.tracker.config.targets(),
                "breach_counts": dict(self.tracker.breach_counts),
                "total_breaches": self.tracker.total_breaches,
            },
            "flight": {
                "buffered": len(self.flight),
                "capacity": self.flight.capacity,
                "recorded": self.flight.seq,
                "dropped": self.flight.dropped,
                "dumps": self.flight.dumps,
            },
        }
        with self._lock:
            self._last_sample = sample
        return sample

    def health(self) -> dict:
        """Liveness payload for ``/healthz`` (always ``ok`` when up)."""
        return {
            "ok": True,
            "uptime_s": self.uptime_s,
            "seq": self.recorder.metrics.seq,
            "recording": _recorder.active() is self.recorder,
            "total_breaches": self.tracker.total_breaches,
        }

    def metrics_json(self) -> dict:
        """Full JSON exposition: live status + the raw metrics payload."""
        from repro.obs.power import estimate_from_metrics

        status = self.sample()
        metrics = self.recorder.metrics.as_dict()
        payload = {"status": status, "metrics": metrics}
        power = estimate_from_metrics(metrics)
        if power is not None:
            payload["power"] = power
        return payload

    def flight_dump(self, reason: str = "on-demand") -> dict:
        """Dump the flight ring now (also kept in ``self.dumps``)."""
        return self._keep_dump(reason)

    def prometheus_text(self) -> str:
        """The whole registry + live window in Prometheus text format."""
        from repro.obs.exposition import render_prometheus

        status = self.sample()
        window = status["window"]
        extra_gauges = {
            "obs/uptime_seconds": status["uptime_s"],
            "obs/metrics_seq": status["seq"],
            "slo/window_seconds": status["slo"]["window_s"],
            "slo/window_observed_seconds": window["window_s"],
            "obs/flight_buffered": status["flight"]["buffered"],
        }
        for label, _ in QUANTILES:
            extra_gauges[f"slo/latency_{label[:-3]}_ms"] = window[label]
        for name in (
            "requests_per_second",
            "error_rate",
            "rejection_rate",
            "joules_per_request",
            "power_saving_vs_static",
            "skipped_rows_pct",
            "estimator_hit_rate",
        ):
            extra_gauges[f"slo/{name}"] = window[name]
        extra_counters = {
            f"slo/breaches/{name}": count
            for name, count in self.tracker.breach_counts.items()
        }
        extra_counters["obs/flight_events"] = self.flight.seq
        return render_prometheus(
            self.recorder.metrics.as_dict(),
            extra_gauges=extra_gauges,
            extra_counters=extra_counters,
        )


def _fmt(value, unit: str = "", digits: int = 2) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}{unit}"


def render_dashboard(sample: dict) -> str:
    """One ``repro-cli top`` frame from a :meth:`TelemetryPlane.sample`.

    Pure function of the sample payload (also works on a payload fetched
    from ``/metrics.json`` — the dashboard and the endpoint share one
    schema), so tests can render without a terminal or a server.
    """
    window = sample["window"]
    slo = sample["slo"]
    flight = sample["flight"]
    lines = [
        "repro-top  uptime {:>8}  seq {}  window {}".format(
            _fmt(sample.get("uptime_s"), "s", 1),
            sample.get("seq"),
            _fmt(window.get("window_s"), "s", 1),
        ),
        "  throughput {:>10}   requests {:>6}   batches {:>5}   "
        "mean batch {}".format(
            _fmt(window.get("requests_per_second"), " req/s", 1),
            window.get("requests"),
            window.get("batches"),
            _fmt(window.get("mean_batch_size"), "", 1),
        ),
        "  latency    p50 {:>9}  p95 {:>9}  p99 {:>9}  p999 {:>9}".format(
            _fmt(window.get("p50_ms"), "ms"),
            _fmt(window.get("p95_ms"), "ms"),
            _fmt(window.get("p99_ms"), "ms"),
            _fmt(window.get("p999_ms"), "ms"),
        ),
        "  queue      depth {:>5}   high-watermark {:>5}   rejected {:>5}  "
        "failed {:>5}".format(
            window.get("queue_depth") if window.get("queue_depth") is not None else "-",
            window.get("queue_depth_high_watermark")
            if window.get("queue_depth_high_watermark") is not None
            else "-",
            window.get("rejected"),
            window.get("failed_requests"),
        ),
        "  power      {:>12} J/req   saving vs static {}".format(
            "{:.3e}".format(window["joules_per_request"])
            if window.get("joules_per_request") is not None
            else "-",
            _fmt(window.get("power_saving_vs_static"), "", 3),
        ),
        "  skip       rows skipped {:>8}   estimator hits {:>8}".format(
            "{:.1%}".format(window["skipped_rows_pct"])
            if window.get("skipped_rows_pct") is not None
            else "-",
            "{:.1%}".format(window["estimator_hit_rate"])
            if window.get("estimator_hit_rate") is not None
            else "-",
        ),
        "  slo        breaches {:>4}   {}".format(
            slo.get("total_breaches"),
            " ".join(
                f"{name}={count}"
                for name, count in sorted(
                    slo.get("breach_counts", {}).items()
                )
            )
            or "(no targets configured)",
        ),
        "  flight     {}/{} events buffered   {} dropped   {} dumps".format(
            flight.get("buffered"),
            flight.get("capacity"),
            flight.get("dropped"),
            flight.get("dumps"),
        ),
    ]
    return "\n".join(lines)
