"""Cross-cutting property-based tests on the core invariants.

Each property here encodes a statement from the paper's derivations:
if one fails, the reproduction's maths is wrong somewhere.

All random streams derive from the suite-wide base seed via the
session-scoped ``derived_rng`` factory fixture (see ``conftest.py``);
the hypothesis-drawn ``seed`` is a stream *key*, not a raw RNG seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DynamicThresholdMatrix,
    LinearTransform,
    Partition,
    SEIMatrix,
    SplitDecision,
    SplitMatrix,
    binarize,
    block_mean_distance,
    decompose_weights,
    natural_partition,
    or_pool,
)
from repro.nn.functional import maxpool2d

pytestmark = pytest.mark.property


def _matrix(make_rng, seed, rows, cols, scale=1.0):
    return make_rng(seed).normal(size=(rows, cols)) * scale


def _bits(make_rng, seed, n, rows, density):
    return (make_rng(seed, 1).random((n, rows)) < density).astype(float)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(2, 30),
    cols=st.integers(1, 6),
)
def test_sei_reconstruction_bounded_by_lsb(derived_rng, seed, rows, cols):
    """Property: SEI's effective weights differ from the target by at
    most half an 8-bit LSB of the matrix's own range."""
    weights = _matrix(derived_rng, seed, rows, cols)
    sei = SEIMatrix(weights, max_crossbar_size=1 << 16)
    lsb = np.abs(weights).max() / 255
    assert np.abs(sei.effective_weights - weights).max() <= lsb / 2 + 1e-12


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(2, 25),
    density=st.floats(0.0, 1.0),
)
def test_sei_compute_is_linear_in_input_rows(derived_rng, seed, rows, density):
    """Property: Equ. 6 is a sum over selected rows, so computing with
    the union of two disjoint selections equals the sum of the parts."""
    weights = _matrix(derived_rng, seed, rows, 3)
    sei = SEIMatrix(weights, max_crossbar_size=1 << 16)
    rng = derived_rng(seed)
    a = (rng.random(rows) < density).astype(float)
    b = ((rng.random(rows) < density) * (1 - a)).astype(float)  # disjoint
    combined = np.clip(a + b, 0, 1)
    np.testing.assert_allclose(
        sei.compute(combined),
        sei.compute(a) + sei.compute(b),
        atol=1e-10,
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(4, 40),
    blocks=st.integers(2, 4),
    density=st.floats(0.05, 0.9),
)
def test_split_block_sums_partition_the_total(
    derived_rng, seed, rows, blocks, density
):
    """Property: block partial sums add up to the unsplit MVM exactly."""
    if blocks > rows:
        return
    weights = _matrix(derived_rng, seed, rows, 4)
    split = SplitMatrix(
        weights, natural_partition(rows, blocks), SplitDecision(0.0)
    )
    bits = _bits(derived_rng, seed, 8, rows, density)
    np.testing.assert_allclose(
        split.block_sums(bits).sum(axis=1), bits @ weights, atol=1e-10
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(4, 40),
    blocks=st.integers(2, 4),
)
def test_vote_monotone_in_threshold(derived_rng, seed, rows, blocks):
    """Property: raising the vote requirement can only clear bits."""
    if blocks > rows:
        return
    weights = np.abs(_matrix(derived_rng, seed, rows, 3))
    partition = natural_partition(rows, blocks)
    bits = _bits(derived_rng, seed, 20, rows, 0.4)
    previous = None
    for vote in range(1, blocks + 1):
        split = SplitMatrix(
            weights,
            partition,
            SplitDecision(block_threshold=0.5, vote_threshold=vote),
        )
        fired = split.fire(bits)
        if previous is not None:
            assert np.all(fired <= previous)
        previous = fired


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(2, 30),
    threshold=st.floats(0.0, 0.5),
)
def test_dynamic_threshold_equivalence(derived_rng, seed, rows, threshold):
    """Property: Equ. 9 == Equ. 4 — the unipolar structure makes the
    same decisions as direct signed thresholding, bar quantization on
    marginal cases."""
    weights = _matrix(derived_rng, seed, rows, 4, scale=0.1)
    matrix = DynamicThresholdMatrix(
        weights, threshold=threshold, max_crossbar_size=1 << 16
    )
    bits = _bits(derived_rng, seed, 60, rows, 0.3)
    hw = matrix.fire(bits)
    sw = binarize(bits @ weights, threshold)
    assert (hw == sw).mean() > 0.95


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500), rows=st.integers(2, 40))
def test_linear_transform_inverse_property(derived_rng, seed, rows):
    weights = _matrix(derived_rng, seed, rows, 3)
    transform = LinearTransform.for_weights(weights)
    np.testing.assert_allclose(
        transform.recover(transform.store(weights)), weights, atol=1e-12
    )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    h=st.integers(2, 10),
    threshold=st.floats(0.05, 0.95),
)
def test_quantize_pool_commutation_property(derived_rng, seed, h, threshold):
    """Property (§3.1): binarize-then-OR == pool-then-binarize."""
    values = derived_rng(seed).random((2, 3, 2 * h, 2 * h))
    quantize_first = or_pool(binarize(values, threshold), 2)
    pooled, _ = maxpool2d(values, 2)
    pool_first = binarize(pooled, threshold)
    np.testing.assert_array_equal(quantize_first, pool_first)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(2, 20),
    weight_bits=st.sampled_from([4, 8]),
    cell_bits=st.sampled_from([1, 2, 4]),
)
def test_decompose_weights_reconstruction_property(
    derived_rng, seed, rows, weight_bits, cell_bits
):
    """Property: the slice decomposition reconstructs within half an LSB
    for every (weight_bits, cell_bits) tiling."""
    if weight_bits % cell_bits != 0:
        return
    weights = _matrix(derived_rng, seed, rows, 3)
    slices, coefficients, scale = decompose_weights(
        weights, weight_bits, cell_bits
    )
    cell_max = 2**cell_bits - 1
    recon = sum(
        c * s * cell_max for c, s in zip(coefficients, slices)
    ) * scale
    lsb = np.abs(weights).max() / (2**weight_bits - 1)
    assert np.abs(recon - weights).max() <= lsb / 2 + 1e-12


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 300),
    rows=st.integers(4, 24),
    blocks=st.integers(2, 3),
)
def test_block_distance_zero_iff_equal_means(derived_rng, seed, rows, blocks):
    """Property: Equ. 10 is zero exactly when the block means agree."""
    if blocks > rows:
        return
    rng = derived_rng(seed)
    # Construct a matrix of identical rows: any partition has distance 0.
    row = rng.normal(size=(1, 4))
    matrix = np.tile(row, (rows, 1))
    p = natural_partition(rows, blocks)
    assert block_mean_distance(matrix, p) == pytest.approx(0.0, abs=1e-12)
    # Perturb one row: distance becomes positive.
    matrix[0] += 1.0
    assert block_mean_distance(matrix, p) > 0.0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 300),
    rows=st.integers(4, 16),
    blocks=st.integers(2, 4),
)
def test_partition_blocks_are_a_partition(derived_rng, seed, rows, blocks):
    """Property: blocks are disjoint and cover every row once."""
    if blocks > rows:
        return
    rng = derived_rng(seed)
    p = Partition(rng.permutation(rows), blocks)
    concatenated = np.concatenate(p.blocks())
    assert sorted(concatenated.tolist()) == list(range(rows))
    sizes = [len(b) for b in p.blocks()]
    assert max(sizes) - min(sizes) <= 1
