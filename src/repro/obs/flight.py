"""Flight recorder: a bounded ring buffer of structured serving events.

Post-mortem JSON exports answer "what happened over the whole run"; the
flight recorder answers "what happened *just now*" — the last few
thousand per-request/per-batch events (enqueue -> batch -> infer ->
reply timestamps, batch sizes, engine, session digest) kept in a fixed
amount of memory, dumpable on demand or automatically when something
goes wrong (an SLO breach, a failed batch).

Event schema — every event is a flat JSON-safe dict:

==============  ==========================================================
``seq``         monotonic event number (gaps mean the ring wrapped)
``kind``        event type: ``enqueue`` | ``rejected`` | ``batch`` |
                ``batch_failed`` | anything a caller records
``t_wall_s``    ``time.time()`` at record time
``t_mono_s``    ``time.monotonic()`` at record time (duration maths)
*fields*        kind-specific: the :class:`repro.serve.MicroBatcher`
                records ``rid``/``rids`` request ids, ``size``,
                ``engine``, ``session`` digest, ``queue_ms`` waits,
                ``infer_ms``, ``error`` strings
==============  ==========================================================

Recording is a lock-protected deque append — cheap enough for the
serving hot path, and the buffer never grows past ``capacity``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bounded ring buffer of structured events.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events fall off first.
    auto_dump_kinds:
        Event kinds that trigger ``on_auto_dump(kind, event)`` right
        after being recorded (e.g. ``{"batch_failed"}`` so a crash dump
        exists the moment a batch blows up).
    on_auto_dump:
        Callback for the above; exceptions it raises are swallowed — a
        broken dump hook must never take the serving path down.
    """

    def __init__(
        self,
        capacity: int = 2048,
        auto_dump_kinds: Iterable[str] = (),
        on_auto_dump: Optional[Callable[[str, dict], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.auto_dump_kinds = frozenset(auto_dump_kinds)
        self.on_auto_dump = on_auto_dump
        self._events: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dumps = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def seq(self) -> int:
        """Total events ever recorded (survivors + fallen-off)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events that have already fallen off the ring."""
        with self._lock:
            return self._seq - len(self._events)

    @property
    def dumps(self) -> int:
        """How many times :meth:`dump` has run (auto or on demand)."""
        return self._dumps

    def record(self, kind: str, **fields: Any) -> dict:
        """Append one event; returns the recorded dict."""
        event: Dict[str, Any] = {
            "kind": kind,
            "t_wall_s": time.time(),
            "t_mono_s": time.monotonic(),
        }
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
        if kind in self.auto_dump_kinds and self.on_auto_dump is not None:
            try:
                self.on_auto_dump(kind, event)
            except Exception:  # noqa: BLE001 - never break the hot path
                pass
        return event

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """Copy of the buffered events, oldest first (optionally by kind)."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        return events

    def dump(self, reason: str = "on-demand") -> dict:
        """The whole ring as one JSON-safe payload, newest last."""
        with self._lock:
            events = list(self._events)
            recorded = self._seq
            self._dumps += 1
        return {
            "reason": reason,
            "dumped_at_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "capacity": self.capacity,
            "recorded": recorded,
            "dropped": recorded - len(events),
            "events": events,
        }

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
