"""Apply matrix-level hardware models to Conv2D / Dense layers.

The paper treats every weighted layer as a matrix-vector multiplication:
FC layers natively, Conv layers through the im2col view (each output
position is one MVM against the ``(S*S*I, kernels)`` weight matrix).  The
hardware structures (SEI, splitting) are therefore defined on matrices;
this module adapts them to the two layer types so they can be plugged into
:class:`repro.core.binarized.BinarizedNetwork` as layer computes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.layers import Conv2D, Dense, Layer

__all__ = [
    "MatrixFn",
    "apply_matrix_fn",
    "ensure_binary",
    "layer_weight_matrix",
    "layer_bias",
]

#: A function mapping a batch of input rows ``(N, rows)`` to output values
#: ``(N, cols)`` — the hardware model of one weight matrix.
MatrixFn = Callable[[np.ndarray], np.ndarray]


def ensure_binary(bits: np.ndarray, what: str = "inputs") -> None:
    """Reject arrays containing anything but 0/1 selection signals.

    A single vectorized comparison pass — unlike ``np.unique`` this never
    sorts, so validating a whole inference batch stays O(n) with a tiny
    constant and does not dominate the fused crossbar matmuls.
    """
    if bits.size and bool(((bits != 0.0) & (bits != 1.0)).any()):
        raise ShapeError(f"{what} must be 0/1 selection signals")


def layer_weight_matrix(layer: Layer) -> np.ndarray:
    """The ``(rows, cols)`` crossbar image of a weighted layer."""
    if isinstance(layer, (Conv2D, Dense)):
        return layer.weight_matrix
    raise ShapeError(
        f"layer {type(layer).__name__} has no weight matrix"
    )


def layer_bias(layer: Layer) -> np.ndarray:
    """Bias vector of a weighted layer (zeros when the layer has none)."""
    if not isinstance(layer, (Conv2D, Dense)):
        raise ShapeError(f"layer {type(layer).__name__} has no bias")
    bias = layer.params.get("bias")
    if bias is None:
        cols = layer.weight_matrix.shape[1]
        return np.zeros(cols)
    return bias


def apply_matrix_fn(
    layer: Layer,
    x: np.ndarray,
    fn: MatrixFn,
    add_bias: bool = True,
    contiguous: bool = True,
) -> np.ndarray:
    """Run a layer's forward pass with ``fn`` replacing the matrix product.

    For Dense the input is used directly; for Conv2D the input feature
    maps are unfolded with im2col (the same receptive fields the crossbar
    sees position by position), ``fn`` is applied to all positions at
    once, and the result is folded back into output feature maps.  The
    layer's bias is added afterwards (the paper keeps biases only in FC
    layers; Equ. 6 folds them into the threshold, which is numerically
    identical) unless the hardware model already accounts for it
    (``add_bias=False``).

    ``contiguous=False`` returns the folded Conv2D output as a
    transposed view instead of materialising it — callers whose next
    step writes a fresh buffer anyway (e.g. binarization) skip one full
    copy of the feature maps.
    """
    if isinstance(layer, Dense):
        if x.ndim != 2 or x.shape[1] != layer.in_features:
            raise ShapeError(
                f"Dense hardware compute expects (n, {layer.in_features}), "
                f"got {x.shape}"
            )
        out = fn(x)
        return out + layer_bias(layer) if add_bias else out

    if isinstance(layer, Conv2D):
        n, c, h, w = x.shape
        kernel = layer.kernel_size
        out_h = F.conv_output_size(h, kernel, layer.stride, layer.padding)
        out_w = F.conv_output_size(w, kernel, layer.stride, layer.padding)
        cols = F.im2col(x, kernel, kernel, layer.stride, layer.padding)
        out = fn(cols)
        if add_bias:
            out = out + layer_bias(layer)
        folded = out.reshape(n, out_h, out_w, layer.out_channels).transpose(
            0, 3, 1, 2
        )
        return np.ascontiguousarray(folded) if contiguous else folded

    raise ShapeError(
        f"cannot apply a matrix compute to {type(layer).__name__}"
    )
