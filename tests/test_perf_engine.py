"""Equivalence tests: fused compute engines vs the retained references.

The fused kernels (SEI slice collapse, split-block stacking, analog
merge concatenation, batched Algorithm 1 candidate scan) must agree with
the pre-fusion implementations that are kept as oracles:

* bitwise-identical results where the arithmetic is unchanged (the
  threshold search executes the exact same BLAS calls in a different
  batching), and
* tight ``allclose`` agreement plus identical RNG streams where partial
  sums are re-associated (merging K slice matmuls into one matmul
  changes only the floating-point summation order).
"""

import numpy as np
import pytest

from repro.core.dynamic_threshold import DynamicThresholdMatrix
from repro.core.hardware_network import (
    HardwareConfig,
    HardwareSplitMatrix,
    assemble_sei_network,
)
from repro.core.homogenize import natural_partition
from repro.core.matrix_compute import ensure_binary
from repro.core.sei import SEIMatrix
from repro.core.splitting import SplitDecision
from repro.core.threshold_search import SearchConfig, search_thresholds
from repro.errors import ShapeError
from repro.hw.device import RRAMDevice

TIGHT = dict(rtol=1e-9, atol=1e-12)


def _random_bits(rng, n, rows):
    return (rng.random((n, rows)) > 0.6).astype(np.float64)


class TestSEIMatrixEquivalence:
    def _pair(self, device, seed=0, rows=40, cols=12, ir=0.0):
        """Two identically-programmed crossbars with twin RNG streams."""
        weights = np.random.default_rng(99).normal(size=(rows, cols))
        make = lambda: SEIMatrix(
            weights,
            device=device,
            ir_drop_lambda=ir,
            rng=np.random.default_rng(seed),
        )
        return make(), make()

    def test_noiseless_fused_matches_reference(self, rng):
        fused, reference = self._pair(RRAMDevice(bits=4), ir=0.3)
        assert fused.fused_matrix is not None
        bits = _random_bits(rng, 16, 40)
        np.testing.assert_allclose(
            fused.compute(bits), reference.compute_reference(bits), **TIGHT
        )

    def test_programming_noise_seeded_agreement(self, rng):
        device = RRAMDevice(bits=4, program_sigma=0.4)
        fused, reference = self._pair(device, seed=5)
        bits = _random_bits(rng, 16, 40)
        np.testing.assert_allclose(
            fused.compute(bits), reference.compute_reference(bits), **TIGHT
        )

    def test_read_noise_identical_rng_streams(self, rng):
        device = RRAMDevice(bits=4, program_sigma=0.2, read_sigma=0.05)
        fused, reference = self._pair(device, seed=7)
        assert fused.fused_matrix is None
        bits = _random_bits(rng, 16, 40)
        for _ in range(3):  # repeated reads keep consuming the same stream
            np.testing.assert_allclose(
                fused.compute(bits),
                reference.compute_reference(bits),
                **TIGHT,
            )
        # The stacked single draw consumed exactly what the per-slice
        # loop consumed: the generators are in identical states.
        assert (
            fused.rng.bit_generator.state == reference.rng.bit_generator.state
        )


class TestDynamicThresholdEquivalence:
    def test_stored_sum_matches_reference(self, rng):
        weights = np.random.default_rng(3).normal(size=(30, 8))
        matrix = DynamicThresholdMatrix(
            weights,
            threshold=0.1,
            device=RRAMDevice(bits=4, program_sigma=0.3),
            rng=np.random.default_rng(1),
        )
        bits = _random_bits(rng, 12, 30)
        np.testing.assert_allclose(
            matrix.stored_sum(bits),
            matrix.stored_sum_reference(bits),
            **TIGHT,
        )


class TestSplitEquivalence:
    def _pair(self, device, rows=120, cols=10, blocks=3, seed=0):
        weights = np.random.default_rng(17).normal(size=(rows, cols))
        partition = natural_partition(rows, blocks)
        decision = SplitDecision(block_threshold=0.05, vote_threshold=2)
        config = HardwareConfig(device=device)
        make = lambda: HardwareSplitMatrix(
            weights,
            partition,
            decision,
            config,
            rng=np.random.default_rng(seed),
        )
        return make(), make()

    def test_noiseless_block_sums_match(self, rng):
        fused, reference = self._pair(RRAMDevice(bits=4))
        bits = _random_bits(rng, 8, 120)
        np.testing.assert_allclose(
            fused.block_sums(bits),
            reference.block_sums_reference(bits),
            **TIGHT,
        )
        np.testing.assert_array_equal(fused.fire(bits), reference.fire(bits))

    def test_noisy_block_sums_match(self, rng):
        device = RRAMDevice(bits=4, program_sigma=0.2, read_sigma=0.03)
        fused, reference = self._pair(device, seed=11)
        bits = _random_bits(rng, 8, 120)
        np.testing.assert_allclose(
            fused.block_sums(bits),
            reference.block_sums_reference(bits),
            **TIGHT,
        )

    def test_reference_engine_flag_dispatches(self, rng):
        device = RRAMDevice(bits=4)
        weights = np.random.default_rng(17).normal(size=(120, 10))
        partition = natural_partition(120, 3)
        decision = SplitDecision(block_threshold=0.05, vote_threshold=2)
        split = HardwareSplitMatrix(
            weights, partition, decision, HardwareConfig(device=device),
            rng=np.random.default_rng(0), engine="reference",
        )
        bits = _random_bits(rng, 8, 120)
        np.testing.assert_allclose(
            split.block_sums(bits), split.block_sums_reference(bits), **TIGHT
        )


class TestHardwareNetworkEngines:
    @pytest.mark.parametrize(
        "device",
        [
            RRAMDevice(bits=4),
            RRAMDevice(bits=4, program_sigma=0.2, read_sigma=0.02),
        ],
        ids=["noiseless", "noisy"],
    )
    def test_full_network_engines_agree(
        self, device, tiny_quantized, tiny_dataset
    ):
        from repro.core.engines import EngineSpec

        config = HardwareConfig(device=device, max_crossbar_size=128)
        images = tiny_dataset["test_x"][:24]

        def build(engine):
            return assemble_sei_network(
                tiny_quantized.network,
                tiny_quantized.thresholds,
                rng=np.random.default_rng(config.seed),
                engine=EngineSpec(name=engine, hardware=config),
            )

        fused_logits = build("fused").predict(images)
        reference_logits = build("reference").predict(images)
        np.testing.assert_allclose(fused_logits, reference_logits, **TIGHT)

    def test_engine_validated(self, tiny_quantized):
        from repro.core.engines import EngineSpec
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="engine"):
            assemble_sei_network(
                tiny_quantized.network,
                tiny_quantized.thresholds,
                engine=EngineSpec(name="typo"),
            )


class TestBatchedSearchEquivalence:
    def test_engine_validated(self):
        from repro.errors import QuantizationError

        with pytest.raises(QuantizationError, match="engine"):
            SearchConfig(engine="typo")

    @pytest.mark.parametrize("refine", [0, 1])
    def test_tiny_network_search_identical(
        self, trained_tiny_network, tiny_dataset, refine
    ):
        kwargs = dict(thres_max=0.3, search_step=0.02, refine_passes=refine)
        fused = search_thresholds(
            trained_tiny_network,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SearchConfig(engine="fused", **kwargs),
        )
        reference = search_thresholds(
            trained_tiny_network,
            tiny_dataset["train_x"],
            tiny_dataset["train_y"],
            SearchConfig(engine="reference", **kwargs),
        )
        assert fused.thresholds == reference.thresholds
        assert fused.divisors == reference.divisors
        assert fused.layer_accuracy == reference.layer_accuracy
        assert fused.search_curves == reference.search_curves
        for fl, rl in zip(fused.network.layers, reference.network.layers):
            for key in fl.params:
                np.testing.assert_array_equal(fl.params[key], rl.params[key])

    def test_network3_search_identical(self):
        """The batched scan reproduces the per-candidate loop on network3
        (conv-entry tail: pool/ReLU commutation + im2col + stacked conv
        matmul), threshold-for-threshold and curve-for-curve."""
        from repro.zoo import get_dataset, get_trained_network

        dataset = get_dataset()
        network = get_trained_network("network3", dataset=dataset)
        images = dataset.train.images[:300]
        labels = dataset.train.labels[:300]
        fused = search_thresholds(
            network, images, labels, SearchConfig(engine="fused")
        )
        reference = search_thresholds(
            network, images, labels, SearchConfig(engine="reference")
        )
        assert fused.thresholds == reference.thresholds
        assert fused.search_curves == reference.search_curves
        assert fused.layer_accuracy == reference.layer_accuracy


class TestEnsureBinary:
    def test_accepts_binary_and_empty(self):
        ensure_binary(np.array([0.0, 1.0, 1.0]), "bits")
        ensure_binary(np.zeros((0, 4)), "bits")

    def test_rejects_non_binary(self):
        with pytest.raises(ShapeError, match="0/1"):
            ensure_binary(np.array([0.0, 0.5]), "bits")
        with pytest.raises(ShapeError, match="0/1"):
            ensure_binary(np.array([2.0]), "bits")
