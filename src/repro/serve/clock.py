"""Injectable time sources for the serving plane.

Every latency, deadline and rate computation in :mod:`repro.serve` goes
through a :class:`Clock` rather than calling :func:`time.monotonic`
directly.  Production code uses the process-wide :data:`SYSTEM_CLOCK`;
tests inject a :class:`FakeClock` and *advance time by hand*, which
turns wall-clock-tolerance assertions ("the deadline fired within
~50ms, hopefully") into exact equalities ("the deadline fired at
t=0.002") — the fix for the flaky soak paths in
``tests/test_serve_properties.py``.

The protocol is deliberately tiny: ``monotonic()`` and ``sleep()``.
Blocking primitives (queue timeouts, event waits) stay on real time —
a fake clock cannot wake a thread parked in ``queue.get`` — so fake
clocks are for *accounting* determinism (latency math, token-bucket
refills, arrival schedules), not for faking thread scheduling.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "SystemClock", "FakeClock", "SYSTEM_CLOCK"]


class Clock:
    """Minimal time-source protocol used across the serving plane."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """Real time: :func:`time.monotonic` / :func:`time.sleep`."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A manually-advanced monotonic clock for deterministic tests.

    ``sleep(s)`` advances the clock by exactly ``s`` and returns
    immediately; ``advance(s)`` does the same from a controlling
    thread.  Reads and writes are lock-protected so a fake-clocked
    batcher's worker threads and the test body see one consistent
    timeline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new now."""
        if seconds < 0:
            raise ValueError(f"cannot advance time backwards ({seconds})")
        with self._lock:
            self._now += float(seconds)
            return self._now


#: The default, shared real-time clock.
SYSTEM_CLOCK = SystemClock()
