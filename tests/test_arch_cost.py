"""Tests for repro.arch.cost and repro.arch.designs."""

import pytest

from repro.arch import (
    COMPONENTS,
    evaluate_all_designs,
    evaluate_design,
    layer_area_um2,
    layer_energy_pj,
    map_layer,
    network_layer_geometries,
)
from repro.errors import ConfigurationError
from repro.hw import TechnologyModel

TECH = TechnologyModel()


class TestLayerCosts:
    def test_energy_components_present(self):
        geo = network_layer_geometries("network1")[1]
        mapping = map_layer(geo, "dac_adc", TECH)
        energy = layer_energy_pj(mapping, TECH)
        assert set(energy) == set(COMPONENTS)
        assert energy["adc"] > 0 and energy["dac"] > 0

    def test_energy_scales_with_conversions(self):
        geo = network_layer_geometries("network1")[1]
        mapping = map_layer(geo, "dac_adc", TECH)
        energy = layer_energy_pj(mapping, TECH)
        assert energy["adc"] == mapping.adc_conversions * TECH.adc_energy_pj

    def test_sei_layer_has_no_converter_energy(self):
        geo = network_layer_geometries("network1")[1]
        mapping = map_layer(geo, "sei", TECH)
        energy = layer_energy_pj(mapping, TECH)
        assert energy["adc"] == 0.0 and energy["dac"] == 0.0
        assert energy["sa"] > 0.0

    def test_area_components(self):
        geo = network_layer_geometries("network1")[2]
        mapping = map_layer(geo, "dac_adc", TECH)
        area = layer_area_um2(mapping, TECH)
        assert area["dac"] == 1024 * TECH.dac_area_um2
        assert area["adc"] == 80 * TECH.adc_area_um2


class TestDesignCost:
    def test_totals_sum_layers(self):
        ev = evaluate_design("network1", "dac_adc")
        layer_sum = sum(l.total_energy_pj for l in ev.cost.layers)
        assert sum(ev.cost.energy_pj.values()) == pytest.approx(layer_sum)

    def test_shares_sum_to_one(self):
        ev = evaluate_design("network1", "dac_adc")
        assert ev.cost.energy_share(*COMPONENTS) == pytest.approx(1.0)
        assert ev.cost.area_share(*COMPONENTS) == pytest.approx(1.0)

    def test_savings_antisymmetry(self):
        designs = evaluate_all_designs("network1")
        base = designs["dac_adc"].cost
        sei = designs["sei"].cost
        assert sei.energy_saving_vs(base) > 0
        assert base.energy_saving_vs(sei) < 0

    def test_gops_positive(self):
        ev = evaluate_design("network1", "sei")
        assert ev.gops_per_joule() > 0
        assert ev.gops_per_joule(use_paper_ops=False) > 0
        with pytest.raises(ConfigurationError):
            ev.cost.gops_per_joule(0.0)

    def test_data_bits_column(self):
        designs = evaluate_all_designs("network2")
        assert designs["dac_adc"].data_bits == 8
        assert designs["onebit_adc"].data_bits == 1
        assert designs["sei"].data_bits == 1

    def test_smaller_crossbars_cost_more(self):
        big = evaluate_design("network1", "dac_adc", TECH.with_crossbar_size(512))
        small = evaluate_design(
            "network1", "dac_adc", TECH.with_crossbar_size(256)
        )
        assert small.energy_uj_per_picture > big.energy_uj_per_picture
        assert small.area_mm2 > big.area_mm2


class TestDesignCostEdgeCases:
    """Degenerate inputs: empty designs, unknown components, zero baselines."""

    @staticmethod
    def _empty_cost():
        from repro.arch.cost import DesignCost

        return DesignCost(structure="sei", layers=[])

    def test_unknown_component_rejected(self):
        ev = evaluate_design("network1", "dac_adc")
        with pytest.raises(ConfigurationError, match="unknown component"):
            ev.cost.energy_share("adcs")
        with pytest.raises(ConfigurationError, match="unknown component"):
            ev.cost.area_share("adc", "nonsense")

    def test_no_components_rejected(self):
        ev = evaluate_design("network1", "dac_adc")
        with pytest.raises(ConfigurationError, match="at least one"):
            ev.cost.energy_share()
        with pytest.raises(ConfigurationError, match="at least one"):
            ev.cost.area_share()

    def test_zero_total_shares_raise(self):
        empty = self._empty_cost()
        with pytest.raises(ConfigurationError, match="no energy"):
            empty.energy_share("adc")
        with pytest.raises(ConfigurationError, match="no area"):
            empty.area_share("adc")

    def test_zero_baseline_savings_raise(self):
        ev = evaluate_design("network1", "sei")
        empty = self._empty_cost()
        with pytest.raises(ConfigurationError, match="baseline"):
            ev.cost.energy_saving_vs(empty)
        with pytest.raises(ConfigurationError, match="baseline"):
            ev.cost.area_saving_vs(empty)

    def test_zero_energy_efficiency_raises(self):
        empty = self._empty_cost()
        with pytest.raises(ConfigurationError, match="no energy"):
            empty.gops_per_joule(1.0)


class TestStructureOrdering:
    """The qualitative Table 5 orderings that must always hold."""

    @pytest.mark.parametrize("name", ["network1", "network2", "network3"])
    def test_sei_cheapest_baseline_most_expensive(self, name):
        designs = evaluate_all_designs(name)
        energies = {
            s: d.energy_uj_per_picture for s, d in designs.items()
        }
        assert energies["sei"] < energies["onebit_adc"] < energies["dac_adc"]

    @pytest.mark.parametrize("name", ["network1", "network2", "network3"])
    def test_area_ordering(self, name):
        designs = evaluate_all_designs(name)
        areas = {s: d.area_mm2 for s, d in designs.items()}
        assert areas["sei"] < areas["onebit_adc"] < areas["dac_adc"]

    @pytest.mark.parametrize("name", ["network1", "network2", "network3"])
    def test_sei_beats_onebit_by_a_lot(self, name):
        """§5.3: SEI saves >90% even against the quantized ADC design."""
        designs = evaluate_all_designs(name)
        saving = designs["sei"].cost.energy_saving_vs(
            designs["onebit_adc"].cost
        )
        assert saving > 0.9
