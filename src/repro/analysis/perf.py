"""Wall-clock measurement helpers for the performance-engine benchmarks.

Thin, dependency-free timing utilities used by
``benchmarks/bench_perf_engine.py`` (and usable interactively) to compare
the fused compute engines against their retained reference
implementations.  Measurements take the *best* of ``repeats`` runs — the
standard way to suppress scheduler noise on a shared machine when the
quantity of interest is the code's intrinsic cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["Timing", "time_call", "time_interleaved", "speedup"]


@dataclass(frozen=True)
class Timing:
    """Best-of-N wall-clock measurement of one callable."""

    label: str
    #: Best single-run wall-clock time, in seconds.
    seconds: float
    repeats: int
    #: Work items processed per run (samples, candidates, ...), if any.
    items: Optional[int] = None

    @property
    def throughput(self) -> Optional[float]:
        """Throughput in items per second, when ``items`` is known.

        ``seconds`` is the best single-run wall-clock time, so this is
        the *peak* observed rate.  Returns ``None`` when ``items`` is
        unset or the measurement is degenerate (non-positive ``seconds``
        or ``repeats`` — e.g. a zero-filled placeholder Timing).
        """
        if self.items is None or self.seconds <= 0 or self.repeats <= 0:
            return None
        return self.items / self.seconds

    def as_dict(self) -> dict:
        out = {
            "label": self.label,
            "seconds": self.seconds,
            "repeats": self.repeats,
        }
        if self.items is not None:
            out["items"] = self.items
            out["items_per_second"] = self.throughput
        return out


def _record_timing(metrics, timing: Timing) -> None:
    """Publish a timing as gauges on a metrics registry (duck-typed).

    ``metrics`` only needs a ``set_gauge(name, value)`` method (e.g.
    :class:`repro.obs.MetricsRegistry` or a scope of one); this module
    stays import-free of ``repro.obs``.
    """
    prefix = f"perf/{timing.label or 'call'}"
    metrics.set_gauge(f"{prefix}/seconds", timing.seconds)
    if timing.throughput is not None:
        metrics.set_gauge(f"{prefix}/items_per_second", timing.throughput)


def time_call(
    fn: Callable[[], object],
    label: str = "",
    repeats: int = 3,
    warmup: int = 1,
    items: Optional[int] = None,
    metrics=None,
) -> Timing:
    """Best-of-``repeats`` wall-clock time of ``fn()``.

    ``warmup`` untimed calls run first so one-time costs (lazy imports,
    allocator growth, BLAS thread spin-up) don't pollute the measurement.
    When ``metrics`` is given (anything with ``set_gauge``), the result
    is also published as ``perf/<label>/seconds`` gauges.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    timing = Timing(label=label, seconds=best, repeats=repeats, items=items)
    if metrics is not None:
        _record_timing(metrics, timing)
    return timing


def time_interleaved(
    calls: Dict[str, Callable[[], object]],
    repeats: int = 3,
    warmup: int = 1,
    items: Optional[int] = None,
    metrics=None,
) -> Dict[str, Timing]:
    """Best-of-``repeats`` times of several callables, round-robin.

    Comparing two implementations by timing one after the other lets
    slow drift (thermal throttling, background load) land entirely on
    one side; interleaving the runs spreads it evenly, so the *ratio* of
    the best times is stable even when the absolute times are not.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for fn in calls.values():
        for _ in range(warmup):
            fn()
    best = {label: float("inf") for label in calls}
    for _ in range(repeats):
        for label, fn in calls.items():
            start = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - start)
    timings = {
        label: Timing(label=label, seconds=best[label], repeats=repeats, items=items)
        for label in calls
    }
    if metrics is not None:
        for timing in timings.values():
            _record_timing(metrics, timing)
    return timings


def speedup(reference: Timing, optimized: Timing) -> float:
    """How many times faster ``optimized`` is than ``reference``."""
    if optimized.seconds <= 0:
        return float("inf")
    return reference.seconds / optimized.seconds
