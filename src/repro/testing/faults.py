"""Fault-injection campaigns and deliberate-fault detection.

Two complementary jobs:

* :func:`inject_and_detect` — the harness's *self-check*: compile a
  candidate engine with a deliberately faulty device (stuck-at cells,
  programming variation, read noise) against the clean oracle and
  verify the differential runner actually catches the divergence and
  reports a minimized counterexample.  A conformance harness that
  cannot detect a fault it injected itself proves nothing about the
  faults it did not inject (Kim et al., arXiv:1811.02187, on silent
  sense-amp divergence in binarized crossbars).

* :func:`run_campaign` — degradation sweeps: reuse the
  :mod:`repro.analysis.robustness` Monte-Carlo knobs (programming /
  read / stuck-at via :class:`repro.hw.RRAMDevice`, sense-amp jitter
  and systematic offset) over a case network and assert the error
  curves are *monotone within tolerance* and *bounded* — the shape the
  paper's §6 "non-ideal factors" flow expects.  Campaign metrics are
  recorded through :mod:`repro.obs` so a traced run carries the curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.analysis.robustness import (
    NoiseSweepResult,
    sei_variation_sweep,
    sense_amp_noise_sweep,
    sense_amp_offset_sweep,
)
from repro.errors import ConfigurationError, ConformanceError
from repro.hw.array import TemporalConfig
from repro.hw.tuning import stuck_cell_map
from repro.testing.differential import (
    Counterexample,
    DifferentialRunner,
    case_engine_spec,
)
from repro.testing.generators import (
    BuiltCase,
    ConformanceCase,
    build_case,
    binarized_oracle,
)

__all__ = [
    "FaultSpec",
    "CampaignConfig",
    "CampaignResult",
    "estimator_confidence_sweep",
    "inject_and_detect",
    "run_campaign",
    "temporal_aging_sweep",
]

logger = obs.get_logger("testing")

#: Fault kinds understood by :class:`FaultSpec`.
FAULT_KINDS = (
    "program", "read", "stuck_low", "stuck_high", "sa_noise", "sa_offset",
    "drift", "retention", "read_disturb", "estimator",
)

#: Temporal aging kinds — swept through device-array time evolution
#: (:func:`temporal_aging_sweep`) rather than the device recipe.
AGING_KINDS = ("drift", "retention", "read_disturb")

#: Map from fault kind to the ConformanceCase field it perturbs (device
#: faults only; the sense-amp kinds live in the sweep functions).
_DEVICE_FIELDS = {
    "program": "program_sigma",
    "read": "read_sigma",
    "stuck_low": "stuck_low_rate",
    "stuck_high": "stuck_high_rate",
}


@dataclass(frozen=True)
class FaultSpec:
    """One deliberate fault: which knob, how hard."""

    kind: str = "stuck_low"
    level: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {', '.join(FAULT_KINDS)}, got "
                f"{self.kind!r}"
            )
        if self.level < 0:
            raise ConfigurationError(
                f"fault level must be >= 0, got {self.level}"
            )

    def apply_to_case(self, case: ConformanceCase) -> ConformanceCase:
        """The case re-described with this fault on its device recipe."""
        if self.kind not in _DEVICE_FIELDS:
            raise ConfigurationError(
                f"fault kind {self.kind!r} is not a device-recipe fault; "
                "it sweeps through run_campaign, not through the recipe"
            )
        return replace(case, **{_DEVICE_FIELDS[self.kind]: self.level})


def inject_and_detect(
    case: ConformanceCase,
    fault: Optional[FaultSpec] = None,
    runner: Optional[DifferentialRunner] = None,
    candidate: str = "fused",
) -> Counterexample:
    """Compile ``candidate`` with ``fault`` injected; expect detection.

    The candidate engine is compiled with the faulty device while the
    oracle keeps the clean one, so every output divergence is the
    injected fault propagating through the arithmetic.  Returns the
    minimized counterexample the runner produced; raises
    :class:`ConformanceError` if the fault went *undetected* — the
    harness's own alarm wiring is broken in that situation.
    """
    fault = fault if fault is not None else FaultSpec("stuck_low", 0.08)
    runner = runner if runner is not None else DifferentialRunner()
    faulty_case = fault.apply_to_case(case)
    faulty_spec = case_engine_spec(faulty_case, candidate)
    with obs.span(
        "conformance.inject", case=case.name, kind=fault.kind,
        level=fault.level,
    ):
        result = runner.run_case(
            replace(case, engines=(candidate, runner.oracle)),
            candidate_specs={candidate: faulty_spec},
        )
    obs.count("conformance/faults_injected")
    matching = [
        ce for ce in result.counterexamples if ce.engine == candidate
    ]
    if not matching:
        raise ConformanceError(
            f"injected {fault.kind} fault at level {fault.level} into "
            f"engine {candidate!r} on case {case.name!r} but the "
            "differential runner detected no mismatch — the oracle is "
            "not sensitive enough or the device model dropped the fault"
        )
    obs.count("conformance/faults_detected")
    counterexample = matching[0]
    logger.info("injected fault detected: %s", counterexample.describe())
    return counterexample


def _aging_temporal_config(
    kind: str, level: float, seed: int
) -> Optional[TemporalConfig]:
    """The :class:`TemporalConfig` realising one aging level.

    ``level`` is always oriented so *larger is worse*: the drift
    exponent for ``"drift"``, the retention decay *rate* (``1 / tau``)
    for ``"retention"`` and the per-read disturb rate for
    ``"read_disturb"``.  Level 0 returns None — static arrays, the
    clean baseline.

    Drift carries per-cell exponent dispersion (lognormal ``sigma``):
    without it every cell would decay by the same factor, a uniform
    rescale an argmax readout cannot see.  Retention and read disturb
    are uniform mechanisms by construction — their degradation shows
    through *thresholded* hidden layers, so sweep them on cases with
    at least two conv layers.
    """
    if level <= 0:
        return None
    if kind == "drift":
        return TemporalConfig(drift_nu=level, drift_nu_sigma=0.5, seed=seed)
    if kind == "retention":
        return TemporalConfig(retention_tau=1.0 / level, seed=seed)
    return TemporalConfig(read_disturb_rate=level, seed=seed)


def temporal_aging_sweep(
    network,
    thresholds: Dict[int, float],
    images: np.ndarray,
    labels: np.ndarray,
    levels: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    trials: int = 3,
    kind: str = "drift",
    device_bits: int = 4,
    seed: int = 0,
    age: float = 64.0,
) -> Tuple[NoiseSweepResult, str]:
    """Error vs device *age* for one aging mechanism.

    The temporal sibling of :func:`repro.analysis.robustness.
    sei_variation_sweep`: hidden layers run on aging
    :class:`~repro.hw.array.TemporalSimDeviceArray` cells, a burn-in
    pass accrues the read history, the device clock advances by
    ``age`` time units, and the *aged* hardware is scored.  Returns the
    degradation curve plus the snapshot digest of the worst-level
    hardware's first array — the campaign artifact that pins the exact
    aged cell state a report was produced from.
    """
    if kind not in AGING_KINDS:
        raise ConfigurationError(
            f"kind must be one of {', '.join(AGING_KINDS)}, got {kind!r}"
        )
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    from repro.core.binarized import BinarizedNetwork
    from repro.core.sei import sei_layer_compute
    from repro.hw.device import RRAMDevice
    from repro.nn.layers import Conv2D, Dense

    indices = [
        i
        for i, layer in enumerate(network.layers)
        if isinstance(layer, (Conv2D, Dense))
    ][1:]  # the DAC-driven input layer keeps exact software math (§3.2)
    errors: List[List[float]] = []
    digest = ""
    for level in levels:
        level_errors = []
        for trial in range(trials):
            rng = np.random.default_rng(seed * 1000 + trial)
            device = RRAMDevice(bits=device_bits)
            temporal = _aging_temporal_config(kind, level, seed + trial)
            binarized = BinarizedNetwork(network, dict(thresholds))
            computes = []
            for index in indices:
                compute = sei_layer_compute(
                    network.layers[index],
                    device=device,
                    max_crossbar_size=1 << 20,
                    rng=rng,
                    temporal=temporal,
                )
                binarized.layer_computes[index] = compute
                computes.append(compute)
            # Burn in (accrues the read history read-disturb keys on),
            # then advance the device clock and score the aged hardware.
            binarized.predict(images)
            for compute in computes:
                compute.array.advance(age)
            level_errors.append(binarized.error_rate(images, labels))
            if computes:
                digest = computes[0].array.snapshot().digest()
        errors.append(level_errors)
    arr = np.asarray(errors)
    result = NoiseSweepResult(
        knob=kind,
        levels=list(levels),
        mean_error=arr.mean(axis=1).tolist(),
        std_error=arr.std(axis=1).tolist(),
        worst_error=arr.max(axis=1).tolist(),
        trials=trials,
    )
    return result, digest


def estimator_confidence_sweep(
    case: ConformanceCase,
    levels: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    engine: str = "fused",
    runner: Optional[DifferentialRunner] = None,
) -> NoiseSweepResult:
    """Decision disagreement vs the estimator-off engine as confidence drops.

    Sweeps the ``threshold`` runtime activation estimator
    (:class:`repro.core.estimate.EstimatorPolicy`) on ``engine`` and
    measures the fraction of samples whose *classification decisions*
    depart from the same engine running estimator-free.  ``levels`` are
    oriented larger-is-worse like every campaign knob: a level ``l``
    sweeps ``confidence = 1 - l``, and level ``0.0`` is the clean
    baseline (estimator off, disagreement identically zero).  The
    campaign asserts the resulting curve is monotone within tolerance
    and bounded — the CompRRAE-style deal the ``threshold`` mode offers
    is *graceful* accuracy-for-energy, not a cliff.
    """
    for level in levels:
        if not 0.0 <= level < 1.0:
            raise ConfigurationError(
                "estimator sweep levels are 1 - confidence and must lie "
                f"in [0, 1), got {level}"
            )
    from repro.core.estimate import EstimatorPolicy

    runner = runner if runner is not None else DifferentialRunner(
        minimize=False, check_invariance=False
    )
    built = build_case(case)
    spec_off = case_engine_spec(case, engine)
    base = runner._execute(built, spec_off, built.inputs)
    base_decisions = np.argmax(base, axis=-1)
    disagreement: List[float] = []
    for level in levels:
        if level <= 0.0:
            disagreement.append(0.0)
            continue
        spec = replace(
            spec_off,
            estimator=EstimatorPolicy(
                mode="threshold", confidence=1.0 - level
            ),
        )
        out = runner._execute(built, spec, built.inputs)
        disagreement.append(
            float((np.argmax(out, axis=-1) != base_decisions).mean())
        )
    return NoiseSweepResult(
        knob="estimator",
        levels=list(levels),
        mean_error=list(disagreement),
        std_error=[0.0] * len(disagreement),
        worst_error=list(disagreement),
        trials=1,
    )


@dataclass(frozen=True)
class CampaignConfig:
    """One degradation campaign: which knobs, how far, what is tolerable."""

    #: Sweep levels per fault kind (first level should be the clean 0.0
    #: baseline so boundedness is measured as *loss*, not absolute error).
    sweeps: Mapping[str, Tuple[float, ...]] = field(
        default_factory=lambda: {
            "program": (0.0, 0.1, 0.3, 0.6),
            "read": (0.0, 0.05, 0.15),
            "stuck_low": (0.0, 0.02, 0.08),
            "sa_noise": (0.0, 0.05, 0.15),
            "sa_offset": (0.0, 0.05, 0.15),
            "drift": (0.0, 0.05, 0.2),
            "estimator": (0.0, 0.1, 0.3, 0.5),
        }
    )
    trials: int = 3
    seed: int = 0
    #: Device age (time units) aging sweeps advance the clock by.
    aging_time: float = 64.0
    #: Mean error at any level may exceed the clean baseline by at most
    #: this much (absolute error-rate points).
    max_accuracy_loss: float = 0.75
    #: Monotonicity slack: mean error may dip below a *milder* level's
    #: by at most this much (Monte-Carlo jitter allowance).
    monotone_tolerance: float = 0.08

    def __post_init__(self) -> None:
        for kind in self.sweeps:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown campaign sweep kind {kind!r}; valid kinds: "
                    f"{', '.join(FAULT_KINDS)}"
                )
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}"
            )


@dataclass
class CampaignResult:
    """Degradation curves for one case, plus the assertions over them."""

    case: ConformanceCase
    config: CampaignConfig
    #: One sweep result per fault kind.
    curves: Dict[str, NoiseSweepResult]
    #: Exact-software test error on the campaign's labelled set.
    baseline_error: float
    #: Expected stuck-cell density at each stuck sweep's worst level
    #: (sanity anchor from :func:`repro.hw.tuning.stuck_cell_map`).
    expected_stuck_fraction: float = 0.0
    #: Device-array snapshot digest per aging sweep (worst level) —
    #: pins the exact aged cell state the curve was scored on.
    snapshot_digests: Dict[str, str] = field(default_factory=dict)

    def violations(self) -> List[str]:
        """Every monotonicity / boundedness violation, human-readable."""
        found: List[str] = []
        for kind, curve in self.curves.items():
            errors = curve.mean_error
            clean = errors[0]
            for i in range(1, len(errors)):
                if errors[i] < errors[i - 1] - self.config.monotone_tolerance:
                    found.append(
                        f"{kind}: error NOT monotone — level "
                        f"{curve.levels[i]} mean {errors[i]:.3f} undercuts "
                        f"level {curve.levels[i - 1]} mean "
                        f"{errors[i - 1]:.3f} by more than "
                        f"{self.config.monotone_tolerance}"
                    )
                loss = errors[i] - clean
                if loss > self.config.max_accuracy_loss:
                    found.append(
                        f"{kind}: unbounded degradation — level "
                        f"{curve.levels[i]} loses {loss:.3f} over the "
                        f"clean baseline (cap "
                        f"{self.config.max_accuracy_loss})"
                    )
        return found

    @property
    def ok(self) -> bool:
        return not self.violations()

    def assert_degradation(self) -> None:
        """Raise :class:`ConformanceError` on any curve violation."""
        violations = self.violations()
        if violations:
            raise ConformanceError(
                "fault campaign failed:\n  " + "\n  ".join(violations)
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "case": self.case.as_dict(),
            "baseline_error": self.baseline_error,
            "expected_stuck_fraction": self.expected_stuck_fraction,
            "curves": {
                kind: {
                    "levels": curve.levels,
                    "mean_error": curve.mean_error,
                    "std_error": curve.std_error,
                    "worst_error": curve.worst_error,
                    "trials": curve.trials,
                }
                for kind, curve in self.curves.items()
            },
            "snapshot_digests": dict(self.snapshot_digests),
            "violations": self.violations(),
            "ok": self.ok,
        }


def _campaign_labels(built: BuiltCase) -> np.ndarray:
    """Labels for a case's inputs: the exact-software network's answers.

    Case networks are untrained, so ground truth is *self-consistency*:
    the clean binarized network's predictions.  Degradation curves then
    measure exactly how far faults push the hardware from the clean
    function — the quantity the campaign bounds.
    """
    oracle = binarized_oracle(built)
    return np.argmax(oracle.predict(built.inputs), axis=-1)


def run_campaign(
    case: ConformanceCase,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Sweep every configured fault knob over one case's network."""
    config = config if config is not None else CampaignConfig()
    built = build_case(case)
    labels = _campaign_labels(built)
    oracle = binarized_oracle(built)
    baseline = oracle.error_rate(built.inputs, labels)

    curves: Dict[str, NoiseSweepResult] = {}
    snapshot_digests: Dict[str, str] = {}
    with obs.span("conformance.campaign", case=case.name):
        for kind, levels in sorted(config.sweeps.items()):
            with obs.span("conformance.sweep", kind=kind):
                if kind in AGING_KINDS:
                    curve, digest = temporal_aging_sweep(
                        built.network, built.thresholds,
                        built.inputs, labels,
                        levels=levels, trials=config.trials, kind=kind,
                        device_bits=case.device_bits, seed=config.seed,
                        age=config.aging_time,
                    )
                    snapshot_digests[kind] = digest
                elif kind == "estimator":
                    curve = estimator_confidence_sweep(case, levels=levels)
                elif kind in ("program", "read"):
                    curve = sei_variation_sweep(
                        built.network, built.thresholds,
                        built.inputs, labels,
                        sigmas=levels, trials=config.trials, kind=kind,
                        device_bits=case.device_bits, seed=config.seed,
                    )
                elif kind in ("stuck_low", "stuck_high"):
                    curve = sei_variation_sweep(
                        built.network, built.thresholds,
                        built.inputs, labels,
                        sigmas=levels, trials=config.trials, kind="stuck",
                        device_bits=case.device_bits, seed=config.seed,
                    )
                elif kind == "sa_noise":
                    curve = sense_amp_noise_sweep(
                        built.network, built.thresholds,
                        built.inputs, labels,
                        sigmas=levels, trials=config.trials,
                        seed=config.seed,
                    )
                else:  # sa_offset
                    curve = sense_amp_offset_sweep(
                        built.network, built.thresholds,
                        built.inputs, labels,
                        offsets=levels, trials=config.trials,
                        seed=config.seed,
                    )
            curves[kind] = curve
            obs.observe(
                f"conformance/campaign/{kind}_error",
                np.asarray(curve.mean_error),
            )
            obs.count("conformance/sweeps")

    expected_stuck = 0.0
    stuck_levels = config.sweeps.get("stuck_low") or config.sweeps.get(
        "stuck_high"
    )
    if stuck_levels:
        from repro.hw.device import RRAMDevice

        worst = max(stuck_levels)
        device = RRAMDevice(bits=case.device_bits, stuck_low_rate=worst)
        mask = stuck_cell_map(
            device, (64, 64), np.random.default_rng(config.seed)
        )
        expected_stuck = float(mask.any(axis=0).mean())

    result = CampaignResult(
        case=case,
        config=config,
        curves=curves,
        baseline_error=float(baseline),
        expected_stuck_fraction=expected_stuck,
        snapshot_digests=snapshot_digests,
    )
    for line in result.violations():
        logger.warning("campaign violation: %s", line)
    return result
