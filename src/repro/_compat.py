"""Version/capability probes for optional numpy fast paths.

The packed SEI engine (:mod:`repro.core.packed`) counts active rows by
popcounting ``np.packbits``-packed activation planes.  numpy grew a
hardware-popcount ufunc (``np.bitwise_count``) in 2.0; older numpys get
a pure-numpy byte lookup-table fallback that returns identical values.
``tests/test_compat.py`` asserts the two paths agree on random uint64
arrays, so the fallback stays honest even on new numpys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_BITWISE_COUNT", "popcount", "popcount_lut"]

#: True when the native ``np.bitwise_count`` ufunc exists (numpy >= 2.0).
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Bits set in each of the 256 byte values.
_BYTE_POPCOUNT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount_lut(values: np.ndarray) -> np.ndarray:
    """Per-element set-bit counts via the byte lookup table.

    Works for any unsigned integer dtype by viewing each element as its
    constituent bytes; the result dtype matches ``np.bitwise_count``
    (``uint8`` per element, counts up to 64 fit comfortably).
    """
    values = np.asarray(values)
    if values.dtype == np.uint8:
        return _BYTE_POPCOUNT[values]
    if values.dtype.kind != "u":
        raise TypeError(
            f"popcount expects unsigned integers, got {values.dtype}"
        )
    itemsize = values.dtype.itemsize
    as_bytes = np.ascontiguousarray(values).view(np.uint8)
    counts = _BYTE_POPCOUNT[as_bytes].reshape(values.shape + (itemsize,))
    return counts.sum(axis=-1, dtype=np.uint8)


if HAVE_BITWISE_COUNT:

    def popcount(values: np.ndarray) -> np.ndarray:
        """Per-element set-bit counts (native ``np.bitwise_count``)."""
        return np.bitwise_count(values)

else:  # pragma: no cover - exercised only on numpy < 2.0

    def popcount(values: np.ndarray) -> np.ndarray:
        """Per-element set-bit counts (LUT fallback, numpy < 2.0)."""
        return popcount_lut(values)
