"""Online re-tuning: close the loop from drift detection to re-program.

Variation-tolerant tuning ([13] in PAPER.md) is an *online* procedure:
a deployed crossbar drifts, someone notices, and the write path runs
program-and-verify again.  This module is the "someone notices" part —
a small policy engine over :class:`~repro.hw.array.DeviceArrayBase`
health read-outs that decides when an array has degraded past its
threshold and drives :func:`repro.hw.tuning.tune_cells` back toward the
originally programmed targets.

:class:`~repro.serve.session.InferenceSession` consults this module on
its self-check cadence; everything it does is mirrored into the obs
plane (``hw/retune/*`` counters, ``hw/drift/*`` gauges) so the live
telemetry and SLO machinery from the serving stack see drift building
up and retunes firing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.hw.array import ArrayHealth, DeviceArrayBase
from repro.hw.tuning import tune_cells

__all__ = [
    "RetunePolicy",
    "RetuneEvent",
    "RetuneReport",
    "array_needs_retune",
    "retune_array",
    "check_and_retune",
]


@dataclass(frozen=True)
class RetunePolicy:
    """When and how to re-tune an aging device array.

    Parameters
    ----------
    check_every:
        Self-check cadence, in inference batches, used by the serving
        layer (the policy itself is cadence-agnostic).
    drift_threshold:
        Mean conductance deviation, in device level steps, past which
        an array is re-tuned.  The default of a quarter level step is
        half the program-and-verify acceptance window of
        :func:`~repro.hw.tuning.tune_cells` — re-tune before the drift
        is large enough to flip a quantized level.
    mode:
        ``"tune"`` runs the closed-loop program-and-verify of [13];
        ``"program"`` issues a single open-loop re-program (cheaper,
        but leaves the open-loop placement error in place).
    tolerance / max_iterations:
        Forwarded to :func:`~repro.hw.tuning.tune_cells` in ``"tune"``
        mode.
    """

    check_every: int = 8
    drift_threshold: float = 0.25
    mode: str = "tune"
    tolerance: float = 0.5
    max_iterations: int = 20

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if self.drift_threshold <= 0:
            raise ConfigurationError(
                f"drift_threshold must be positive, got "
                f"{self.drift_threshold}"
            )
        if self.mode not in ("tune", "program"):
            raise ConfigurationError(
                f"unknown retune mode {self.mode!r}; expected 'tune' or "
                f"'program'"
            )


@dataclass(frozen=True)
class RetuneEvent:
    """One re-tune of one device array."""

    #: Which array (the serving layer keys arrays by layer name).
    name: str
    #: Drift magnitude (mean level steps) that triggered the retune.
    drift_level_steps: float
    #: Array age at trigger time.
    age: float
    #: Read events since the previous program epoch.
    reads_since_program: int
    #: Program-and-verify iterations spent (0 in ``"program"`` mode).
    iterations: float
    #: Fraction of cells placed within tolerance (1.0 in program mode).
    yield_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "drift_level_steps": self.drift_level_steps,
            "age": self.age,
            "reads_since_program": self.reads_since_program,
            "iterations": self.iterations,
            "yield_fraction": self.yield_fraction,
        }


@dataclass
class RetuneReport:
    """Outcome of one check-and-retune pass over a set of arrays."""

    #: Health of every checked array, keyed by name.
    checked: Dict[str, ArrayHealth] = field(default_factory=dict)
    #: Retunes actually performed this pass.
    events: List[RetuneEvent] = field(default_factory=list)

    @property
    def retuned(self) -> bool:
        return bool(self.events)

    @property
    def worst_drift(self) -> float:
        if not self.checked:
            return 0.0
        return max(h.drift_level_steps for h in self.checked.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "checked": {k: h.as_dict() for k, h in self.checked.items()},
            "events": [e.as_dict() for e in self.events],
            "worst_drift": self.worst_drift,
        }


def array_needs_retune(
    array: DeviceArrayBase, policy: RetunePolicy
) -> bool:
    """Whether an array's drift has crossed the policy threshold."""
    return array.health().drift_level_steps > policy.drift_threshold


def retune_array(
    array: DeviceArrayBase,
    policy: RetunePolicy,
    rng: Optional[np.random.Generator] = None,
    name: str = "array",
) -> RetuneEvent:
    """Re-tune one array back toward its originally programmed targets.

    In ``"tune"`` mode the closed-loop program-and-verify of [13] runs
    against the array's device model and the converged conductances are
    installed via :meth:`~repro.hw.array.DeviceArrayBase.
    apply_conductance` — a fresh program epoch: the aging clock and
    read counter reset, and the per-cell drift exponents are redrawn.
    In ``"program"`` mode a single open-loop re-program is issued
    instead.
    """
    targets = array.targets
    if targets is None:
        raise ConfigurationError(
            f"array {name!r} has no recorded targets; it was never "
            "programmed through the array interface"
        )
    health = array.health()
    rng = rng if rng is not None else np.random.default_rng()
    if policy.mode == "tune":
        result = tune_cells(
            array.device,
            targets,
            tolerance=policy.tolerance,
            max_iterations=policy.max_iterations,
            rng=rng,
        )
        array.apply_conductance(
            result.conductance,
            targets=targets,
            pulses=int(result.iterations.sum()),
        )
        event = RetuneEvent(
            name=name,
            drift_level_steps=health.drift_level_steps,
            age=health.age,
            reads_since_program=health.reads_since_program,
            iterations=result.mean_iterations,
            yield_fraction=result.yield_fraction,
        )
    else:
        array.program(targets, rng)
        event = RetuneEvent(
            name=name,
            drift_level_steps=health.drift_level_steps,
            age=health.age,
            reads_since_program=health.reads_since_program,
            iterations=1.0,
            yield_fraction=1.0,
        )
    obs.count("hw/retune/events")
    obs.count("hw/retune/pulses", max(int(event.iterations), 1))
    obs.set_gauge(f"hw/retune/{name}/last_drift", event.drift_level_steps)
    return event


def check_and_retune(
    arrays: Mapping[str, DeviceArrayBase],
    policy: RetunePolicy,
    rng: Optional[np.random.Generator] = None,
) -> RetuneReport:
    """Health-check every array; re-tune the ones past the threshold.

    Static (non-temporal) arrays are health-checked but never drift, so
    they never trigger.  Gauges ``hw/drift/<name>`` and
    ``hw/reads/<name>`` are refreshed for every checked array.
    """
    report = RetuneReport()
    for name, array in arrays.items():
        health = array.health()
        report.checked[name] = health
        obs.set_gauge(f"hw/drift/{name}", health.drift_level_steps)
        obs.set_gauge(f"hw/reads/{name}", float(health.reads_since_program))
        if health.drift_level_steps > policy.drift_threshold:
            report.events.append(
                retune_array(array, policy, rng=rng, name=name)
            )
    if report.checked:
        obs.set_gauge("hw/drift/worst", report.worst_drift)
    return report
