"""Report formatting: the rows/series of Fig. 1 and Table 5.

These helpers return plain data structures (lists of dicts) and render
them as aligned text tables, so benchmarks can both assert on the numbers
and print the same rows the paper reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hw.tech import REFERENCE_PLATFORMS, TechnologyModel

from repro.arch.cost import COMPONENTS, DesignCost
from repro.arch.designs import DesignEvaluation, evaluate_all_designs

__all__ = [
    "breakdown_rows",
    "format_table",
    "table5_rows",
    "reference_efficiency_rows",
]

#: Fig. 1 groups the non-converter components into "RRAM" and "Other".
_FIG1_GROUPS = {
    "DAC": ("dac",),
    "ADC": ("adc",),
    "RRAM": ("rram",),
    "Other": ("sa", "digital", "buffer", "driver"),
}


def breakdown_rows(cost: DesignCost) -> List[Dict[str, object]]:
    """Fig. 1 data: per-layer and total power/area shares by group.

    Returns one row per layer plus a ``Total`` row; each row maps group
    name to its fractional share of that layer's energy and area.
    """
    rows: List[Dict[str, object]] = []

    def shares(energy: Dict[str, float], area: Dict[str, float]):
        total_e = sum(energy.values())
        total_a = sum(area.values())
        if total_e <= 0 or total_a <= 0:
            raise ConfigurationError("layer with zero energy or area")
        row = {}
        for group, keys in _FIG1_GROUPS.items():
            row[f"{group} power"] = sum(energy[k] for k in keys) / total_e
            row[f"{group} area"] = sum(area[k] for k in keys) / total_a
        return row

    for layer in cost.layers:
        rows.append(
            {
                "layer": layer.mapping.geometry.name,
                **shares(layer.energy_pj, layer.area_um2),
            }
        )
    rows.append({"layer": "total", **shares(cost.energy_pj, cost.area_um2)})
    return rows


def table5_rows(
    networks: Sequence[str] = ("network1", "network2", "network3"),
    tech: Optional[TechnologyModel] = None,
    crossbar_sizes: Optional[Dict[str, Sequence[int]]] = None,
) -> List[Dict[str, object]]:
    """Table 5: energy/area of the three structures per network.

    ``crossbar_sizes`` maps network name to the sizes to evaluate (the
    paper evaluates Network 1 at both 512 and 256).
    """
    tech = tech if tech is not None else TechnologyModel()
    if crossbar_sizes is None:
        crossbar_sizes = {
            "network1": (512, 256),
            "network2": (512,),
            "network3": (512,),
        }

    rows: List[Dict[str, object]] = []
    for name in networks:
        for size in crossbar_sizes.get(name, (512,)):
            sized_tech = tech.with_crossbar_size(size)
            evaluations = evaluate_all_designs(name, sized_tech)
            baseline = evaluations["dac_adc"]
            for structure in ("dac_adc", "onebit_adc", "sei"):
                ev = evaluations[structure]
                rows.append(
                    {
                        "network": name,
                        "crossbar": size,
                        "structure": _STRUCTURE_LABELS[structure],
                        "data_bits": ev.data_bits,
                        "energy_uj": ev.energy_uj_per_picture,
                        "energy_saving_pct": 100.0
                        * ev.cost.energy_saving_vs(baseline.cost),
                        "area_mm2": ev.area_mm2,
                        "area_saving_pct": 100.0
                        * ev.cost.area_saving_vs(baseline.cost),
                        "gops_per_j": ev.gops_per_joule(),
                    }
                )
    return rows


_STRUCTURE_LABELS = {
    "dac_adc": "DAC+ADC",
    "onebit_adc": "1-bit-Input+ADC",
    "sei": "SEI",
}


def reference_efficiency_rows() -> List[Dict[str, object]]:
    """The FPGA/GPU comparison points of §5.3."""
    return [
        {"platform": ref.name, "gops_per_j": ref.gops_per_joule, "source": ref.source}
        for ref in REFERENCE_PLATFORMS.values()
    ]


def format_table(
    rows: Iterable[Dict[str, object]], floatfmt: str = "{:.2f}"
) -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    headers = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    cells = [[render(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
