"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    MappingError,
    QuantizationError,
    ReproError,
    ShapeError,
    TrainingError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ShapeError,
            MappingError,
            QuantizationError,
            TrainingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_base_does_not_swallow_builtin(self):
        with pytest.raises(TypeError):
            try:
                raise TypeError("programming error")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch TypeError")
