"""repro: reproduction of "Switched by Input: Power Efficient Structure
for RRAM-based Convolutional Neural Network" (Xia et al., DAC 2016).

The package is organised as:

* :mod:`repro.nn` — a from-scratch numpy CNN substrate (training +
  inference);
* :mod:`repro.data` — a procedural MNIST-like digit dataset (offline
  substitute for MNIST);
* :mod:`repro.hw` — behavioural RRAM device / crossbar / peripheral
  models and the technology cost constants;
* :mod:`repro.core` — the paper's contribution: 1-bit quantization
  (Algorithm 1), the SEI structure, dynamic thresholds, ADC-less matrix
  splitting and homogenization;
* :mod:`repro.arch` — the architecture mapper and the Fig. 1 / Table 5
  cost model;
* :mod:`repro.analysis` — distribution and metric helpers;
* :mod:`repro.configs` — the Table 2 network definitions;
* :mod:`repro.zoo` — cached trained/quantized models for experiments.

* :mod:`repro.serve` — warm inference sessions + micro-batched serving;
* :mod:`repro.api` — the stable five-verb facade over all of the above.

Quickstart (the stable surface)::

    from repro import api

    model = api.load("network1")            # trains + runs Algorithm 1
    print(model.float_test_error, model.quantized_test_error)
    session = api.compile("network1")       # warm SEI inference session
    logits = session.infer(image)
    with api.serve("network1") as batcher:  # micro-batched serving
        future = batcher.submit(image)

``load``/``quantize``/``compile``/``infer`` are re-exported here;
serving lives at :func:`repro.api.serve` (the name ``repro.serve`` is
the subpackage).
"""

from repro import obs  # first: the rest of the package may instrument itself
from repro import analysis, arch, configs, core, data, hw, nn, serve, zoo
from repro import api
from repro.api import compile, infer, load, quantize
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    MappingError,
    QuantizationError,
    ReproError,
    ServeError,
    ShapeError,
    TrainingError,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "hw",
    "core",
    "arch",
    "analysis",
    "configs",
    "obs",
    "zoo",
    "serve",
    "api",
    "load",
    "quantize",
    "compile",
    "infer",
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "MappingError",
    "QuantizationError",
    "TrainingError",
    "ServeError",
    "BackpressureError",
    "__version__",
]
