"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class MappingError(ReproError):
    """A weight matrix cannot be mapped onto the requested crossbar fabric."""


class QuantizationError(ReproError):
    """A quantization step failed (empty search range, untrained net, ...)."""


class TrainingError(ReproError):
    """Model training could not proceed (bad loss, empty dataset, ...)."""


class ServeError(ReproError):
    """An inference-serving operation failed (closed batcher, bad state)."""


class BackpressureError(ServeError):
    """The serving queue is full and the submit timeout elapsed."""


class ConformanceError(ReproError):
    """A cross-engine conformance check failed (engine mismatch, golden
    drift, unbounded fault degradation)."""
