"""§6 future-work extension: SNN support on the SEI structure.

Not a paper table — the paper only *announces* SNN support as future
work ("We will also use the proposed structure to support other
applications using 1-bit data like RRAM-based Spiking Neural
Networks").  This bench demonstrates it: the quantized CNN converted to
a rate-coded spiking network converges to the 1-bit CNN's accuracy as
the number of timesteps grows, with spikes driving the SEI selection
gates directly.
"""

import numpy as np
import pytest

from repro.arch import format_table
from repro.snn import SpikingNetwork, estimate_sei_spike_energy

from benchmarks.conftest import heading

SAMPLES = 300


def run_snn(quantized_models, dataset):
    model = quantized_models["network2"]
    images = dataset.test.images[:SAMPLES]
    labels = dataset.test.labels[:SAMPLES]
    snn = SpikingNetwork(
        model.search.network, model.search.thresholds, threshold_scale=1.5
    )
    rows = []
    for timesteps in (1, 4, 16, 32):
        err = snn.error_rate(
            images, labels, timesteps, encoder="deterministic"
        )
        rows.append({"timesteps": timesteps, "error (%)": 100 * err})
    result = snn.simulate(images[:64], 16, encoder="deterministic")
    energy = estimate_sei_spike_energy(model.search.network, result)
    return rows, model.quantized_test_error, result, energy


@pytest.mark.benchmark(group="snn")
def test_snn_converges_to_binarized_accuracy(
    benchmark, quantized_models, dataset
):
    rows, cnn_error, result, energy = benchmark.pedantic(
        run_snn, args=(quantized_models, dataset), rounds=1, iterations=1
    )

    heading("§6 extension — SNN on SEI (network2, deterministic rate code)")
    print(format_table(rows))
    print(f"1-bit CNN reference error: {100 * cnn_error:.2f}%")
    print(
        "firing rates: "
        + ", ".join(f"layer {k}: {v:.1%}" for k, v in result.firing_rates.items())
    )
    print(f"event-driven energy estimate: {energy['total'] / 1000:.1f} nJ/pic")

    # Accuracy improves with timesteps and lands near the 1-bit CNN.
    errors = [row["error (%)"] for row in rows]
    assert errors[-1] <= errors[0] + 1e-9
    assert errors[-1] < 100 * cnn_error + 3.0
    # Spiking activity is sparse — the event-driven premise.
    assert all(rate < 0.5 for rate in result.firing_rates.values())
