"""Hierarchical span tracing: wall-clock timed, nested, exportable.

A :class:`Tracer` records a tree of :class:`Span` objects through a
context-manager API::

    tracer = Tracer()
    with tracer.span("algorithm1.search", engine="fused") as sp:
        with tracer.span("algorithm1.layer0"):
            ...
        sp.set("layers", 2)

Spans carry a name, free-form attributes, a start offset (relative to
the tracer's creation, so exported traces are machine-independent) and a
duration.  Export formats:

* :meth:`Tracer.to_dict` — a JSON-serialisable tree (round-trips through
  ``json.dumps``/``loads`` unchanged);
* :meth:`Tracer.pretty` — an indented text tree with millisecond
  durations for terminal inspection.

The module also provides :data:`NULL_SPAN`, a shared no-op span used by
the process-global recorder (:mod:`repro.obs.recorder`) so that
instrumented code pays only a ``None`` check when tracing is disabled —
no allocation, no clock read.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars (and other oddballs) to plain JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


class Span:
    """One timed region of the trace tree."""

    __slots__ = ("name", "attrs", "start_s", "duration_s", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        #: Start offset in seconds relative to the tracer's epoch.
        self.start_s: float = 0.0
        self.duration_s: float = 0.0
        self.children: List["Span"] = []

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attrs[key] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": float(self.start_s),
            "duration_s": float(self.duration_s),
            "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f} ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """Shared no-op span: context manager + ``set`` that do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


#: The single process-wide null span (identity-comparable, never grows).
NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that times one span and maintains the stack."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        stack = tracer._stack
        if stack:
            stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        stack.append(span)
        self._t0 = time.perf_counter()
        span.start_s = self._t0 - tracer._epoch
        return span

    def __exit__(self, *exc) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        # Pop back to this span even if a nested span leaked (an exception
        # inside instrumented code unwinds through every __exit__, so in
        # practice the top of the stack is always this span).
        stack = self._tracer._stack
        while stack and stack[-1] is not self._span:
            stack.pop()
        if stack:
            stack.pop()
        return False


class Tracer:
    """Collects a forest of spans with wall-clock timing."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the currently active span (or a new root)."""
        return _SpanContext(self, Span(name, attrs))

    @property
    def depth(self) -> int:
        """Nesting depth of the currently open span (0 = none open)."""
        return len(self._stack)

    def to_dict(self) -> dict:
        """The whole trace as a JSON-serialisable tree."""
        return {"spans": [span.to_dict() for span in self.roots]}

    def pretty(self) -> str:
        """Indented text rendering of the span tree with durations."""
        lines: List[str] = []

        def render(span: Span, indent: int) -> None:
            attrs = ", ".join(
                f"{k}={_json_safe(v)}" for k, v in span.attrs.items()
            )
            suffix = f"  ({attrs})" if attrs else ""
            lines.append(
                f"{'  ' * indent}{span.name}  "
                f"{span.duration_s * 1e3:.2f} ms{suffix}"
            )
            for child in span.children:
                render(child, indent + 1)

        for root in self.roots:
            render(root, 0)
        return "\n".join(lines)
