"""Tests for the sharded serving plane: registry, shards, gateway, chaos.

Covers the serving-at-scale guarantees:

* the warm-model registry's LRU/cold-start/prewarm behaviour and
  single-flight concurrent loading;
* shard lifecycle — abrupt ``kill`` fails queued *and* in-flight
  requests promptly with :class:`ShardDeadError` (no hangs, no silent
  drops) and ``rejoin`` is health-gated behind ``self_check``;
* gateway admission control (token bucket + bounded in-flight window
  -> :class:`BackpressureError`), consistent re-routing around dead
  shards, and the chaos scenario run many times back to back;
* **bit-identity**: gateway responses over any shard count equal a
  single inline :class:`InferenceSession` byte for byte, including
  interleaved concurrent tenants;
* the aggregated ``/metrics`` endpoint labelling every shard's series.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ConformanceError,
    ServeError,
    ShardDeadError,
)
from repro.serve import (
    AsyncGateway,
    BatcherConfig,
    FakeClock,
    GatewayConfig,
    InferenceSession,
    MicroBatcher,
    SessionConfig,
    SessionShard,
    TokenBucket,
    WarmRegistry,
)


def _echo_tenant():
    """A deterministic tenant: row i of the output encodes input row i."""

    def infer_batch(images: np.ndarray) -> np.ndarray:
        flat = images.reshape(len(images), -1)
        return np.concatenate([flat * 2.0 + 1.0, -flat], axis=1)

    return infer_batch


def _slow_tenant(delay_s: float = 0.002):
    """Like ``_echo_tenant`` but each batch takes a while (chaos food)."""
    echo = _echo_tenant()

    def infer_batch(images: np.ndarray) -> np.ndarray:
        time.sleep(delay_s)
        return echo(images)

    return infer_batch


SMALL_BATCHER = BatcherConfig(
    max_batch_size=8, max_delay_ms=1.0, workers=2, max_queue_depth=64
)


class TestWarmRegistry:
    def test_cold_start_then_hit(self):
        loads = []
        registry = WarmRegistry(lambda key: loads.append(key) or f"<{key}>")
        assert registry.get("a") == "<a>"
        assert registry.get("a") == "<a>"
        assert loads == ["a"]
        assert registry.stats()["hits"] == 1
        assert registry.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        registry = WarmRegistry(lambda key: key.upper(), capacity=2)
        registry.get("a")
        registry.get("b")
        registry.get("a")  # refresh a: b is now coldest
        registry.get("c")  # evicts b
        assert registry.resident == ["a", "c"]
        assert "b" not in registry
        assert registry.stats()["evictions"] == 1

    def test_prewarm_pays_cold_starts_up_front(self):
        loads = []
        registry = WarmRegistry(
            lambda key: loads.append(key) or key, capacity=4
        )
        registry.prewarm(["x", "y"])
        assert loads == ["x", "y"]
        registry.get("x")
        registry.get("y")
        assert loads == ["x", "y"]  # all hits now

    def test_prewarm_beyond_capacity_refuses_to_thrash(self):
        registry = WarmRegistry(lambda key: key, capacity=2)
        with pytest.raises(ServeError):
            registry.prewarm(["a", "b", "c"])

    def test_concurrent_cold_gets_share_one_load(self):
        loads = []
        gate = threading.Event()

        def slow_loader(key):
            gate.wait(timeout=5.0)
            loads.append(key)
            return key

        registry = WarmRegistry(slow_loader)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(registry.get("model"))
            )
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert results == ["model"] * 6
        assert loads == ["model"]  # single flight

    def test_loader_failure_is_not_cached(self):
        attempts = []

        def flaky(key):
            attempts.append(key)
            if len(attempts) == 1:
                raise RuntimeError("cold start exploded")
            return key

        registry = WarmRegistry(flaky)
        with pytest.raises(RuntimeError):
            registry.get("m")
        assert registry.get("m") == "m"  # retried, then cached
        assert len(attempts) == 2

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            WarmRegistry(lambda key: key, capacity=0)
        with pytest.raises(ConfigurationError):
            WarmRegistry("not-callable")  # type: ignore[arg-type]


class TestSessionShard:
    def test_lifecycle_and_submit(self):
        shard = SessionShard(
            "s0", {"default": _echo_tenant}, batcher=SMALL_BATCHER
        )
        with pytest.raises(ShardDeadError):
            shard.submit(np.zeros(3))  # not started yet
        shard.start(prewarm=["default"])
        assert shard.serving
        x = np.array([1.0, 2.0, 3.0])
        out = shard.submit(x).result(timeout=10)
        np.testing.assert_array_equal(out, _echo_tenant()(x[None])[0])
        shard.stop()
        assert not shard.serving

    def test_unknown_tenant_rejected(self):
        shard = SessionShard(
            "s0", {"default": _echo_tenant}, batcher=SMALL_BATCHER
        ).start()
        with pytest.raises(ConfigurationError):
            shard.submit(np.zeros(3), tenant="nope")
        shard.stop()

    def test_kill_fails_in_flight_promptly(self):
        """Queued AND executing requests resolve with ShardDeadError
        fast, even though the worker is wedged."""
        wedge = threading.Event()

        def wedged_tenant():
            def infer_batch(images):
                wedge.wait(timeout=30.0)
                return images

            return infer_batch

        shard = SessionShard(
            "s0",
            {"default": wedged_tenant},
            batcher=BatcherConfig(
                max_batch_size=1, max_delay_ms=0.0, workers=1,
                max_queue_depth=8,
            ),
        ).start()
        futures = [shard.submit(np.zeros(2)) for _ in range(4)]
        started = time.monotonic()
        shard.kill()
        for future in futures:
            with pytest.raises(ShardDeadError):
                future.result(timeout=5)
        assert time.monotonic() - started < 5.0, "kill was not prompt"
        with pytest.raises(ShardDeadError):
            shard.submit(np.zeros(2))
        wedge.set()

    def test_rejoin_is_health_gated(self):
        class FlakySession:
            def __init__(self):
                self.healthy = True
                self.checks = 0

            def infer_batch(self, images):
                return images * 1.0

            def self_check(self, probes):
                self.checks += 1
                if not self.healthy:
                    raise ConformanceError("probe disagreement")

        session = FlakySession()
        shard = SessionShard(
            "s0", {"default": lambda: session}, batcher=SMALL_BATCHER
        ).start(prewarm=["default"])
        shard.kill()
        session.healthy = False
        with pytest.raises(ConformanceError):
            shard.rejoin(probes=np.zeros((2, 3)))
        assert not shard.serving  # gate failure leaves it dead
        session.healthy = True
        shard.rejoin(probes=np.zeros((2, 3)))
        assert shard.serving
        assert session.checks == 2
        out = shard.submit(np.ones(3)).result(timeout=10)
        np.testing.assert_array_equal(out, np.ones(3))
        shard.stop()

    def test_rejoin_runs_retune_hook(self):
        calls = []

        class RetunableSession:
            def infer_batch(self, images):
                return images

            def retune(self, force=False):
                calls.append(force)

        shard = SessionShard(
            "s0",
            {"default": RetunableSession},
            batcher=SMALL_BATCHER,
        ).start(prewarm=["default"])
        shard.kill()
        shard.rejoin()
        assert calls == [True]
        shard.stop()


class TestGatewayBasics:
    def test_request_response_over_shards(self):
        config = GatewayConfig(shards=3, batcher=SMALL_BATCHER)
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            xs = [np.full(4, float(i)) for i in range(40)]
            outs = [f.result(timeout=10) for f in gw.submit_many(xs)]
            expected = _echo_tenant()(np.stack(xs))
            for i, out in enumerate(outs):
                np.testing.assert_array_equal(out, expected[i])
            assert gw.health()["ok"]
            assert len(gw.live_shards) == 3

    def test_submit_before_start_raises(self):
        gw = AsyncGateway({"default": _echo_tenant})
        with pytest.raises(ServeError):
            gw.submit(np.zeros(2))

    def test_unknown_tenant_raises(self):
        with AsyncGateway(
            {"default": _echo_tenant},
            config=GatewayConfig(shards=1, batcher=SMALL_BATCHER),
        ) as gw:
            with pytest.raises(ConfigurationError):
                gw.submit(np.zeros(2), tenant="ghost")

    def test_bare_callable_shorthand(self):
        with AsyncGateway(
            _echo_tenant,
            config=GatewayConfig(shards=1, batcher=SMALL_BATCHER),
        ) as gw:
            out = gw.infer(np.array([2.0]))
            np.testing.assert_array_equal(out, np.array([5.0, -2.0]))

    def test_sole_tenant_needs_no_tenant_kwarg(self):
        """api.gateway("network2") names its one tenant "network2";
        an unspecified tenant must still route there."""
        with AsyncGateway(
            {"network2": _echo_tenant},
            config=GatewayConfig(shards=1, batcher=SMALL_BATCHER),
        ) as gw:
            out = gw.infer(np.array([2.0]))
            np.testing.assert_array_equal(out, np.array([5.0, -2.0]))

    def test_multi_tenant_default_is_ambiguous(self):
        tenants = {"a": _echo_tenant, "b": _echo_tenant}
        with AsyncGateway(
            tenants, config=GatewayConfig(shards=1, batcher=SMALL_BATCHER)
        ) as gw:
            with pytest.raises(ConfigurationError):
                gw.submit(np.zeros(2))
            out = gw.infer(np.array([2.0]), tenant="a")
            np.testing.assert_array_equal(out, np.array([5.0, -2.0]))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GatewayConfig(shards=0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(rate=-1.0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(affinity="sticky")

    def test_tenant_affinity_pins_one_shard(self):
        config = GatewayConfig(
            shards=4, affinity="tenant", batcher=SMALL_BATCHER
        )
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            for _ in range(20):
                gw.infer(np.zeros(3))
            # All requests landed on exactly one shard.
            busy = [
                sid
                for sid in gw.shard_ids
                if gw.shard(sid).recorder.metrics.as_dict()["counters"].get(
                    "serve/requests", 0
                )
                > 0
            ]
            assert len(busy) == 1


class TestAdmissionControl:
    def test_in_flight_window_sheds_load(self):
        wedge = threading.Event()

        def wedged_tenant():
            def infer_batch(images):
                wedge.wait(timeout=30.0)
                return images

            return infer_batch

        config = GatewayConfig(
            shards=1,
            max_in_flight=4,
            submit_timeout_s=5.0,
            batcher=BatcherConfig(
                max_batch_size=1, max_delay_ms=0.0, workers=1,
                max_queue_depth=64,
            ),
        )
        with AsyncGateway({"default": wedged_tenant}, config=config) as gw:
            held = [gw.submit(np.zeros(2)) for _ in range(4)]
            # Window is full: the next submits must shed, promptly.
            shed = 0
            for _ in range(6):
                try:
                    gw.submit(np.zeros(2)).result(timeout=5)
                except BackpressureError:
                    shed += 1
            assert shed >= 1
            counters = gw.recorder.metrics.as_dict()["counters"]
            assert counters.get("serve/gateway/rejected_inflight", 0) >= 1
            wedge.set()
            for future in held:
                future.result(timeout=10)

    def test_token_bucket_exact_refill_on_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5, clock=clock)
        assert [bucket.try_acquire() for _ in range(5)] == [True] * 5
        assert bucket.try_acquire() is False  # drained
        clock.advance(0.1)  # exactly one token at 10/s
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is False
        clock.advance(10.0)  # way past burst: capped at burst
        assert bucket.tokens == pytest.approx(5.0)

    def test_rate_limited_gateway_rejects_with_backpressure(self):
        config = GatewayConfig(
            shards=1, rate=5.0, burst=3, batcher=SMALL_BATCHER
        )
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            results = []
            for _ in range(10):
                try:
                    gw.infer(np.zeros(2))
                    results.append("ok")
                except BackpressureError:
                    results.append("shed")
            assert "shed" in results  # burst of 3 cannot cover 10
            assert "ok" in results
            counters = gw.recorder.metrics.as_dict()["counters"]
            assert counters.get("serve/gateway/rejected_rate", 0) >= 1


class TestZeroCopyHandoff:
    def test_submit_enqueues_the_callers_buffer(self):
        """The request carries the caller's ndarray by reference — no
        copy between the front-end and the shard worker."""
        wedge = threading.Event()

        def wedged(images):
            wedge.wait(timeout=10.0)
            return images

        batcher = MicroBatcher(
            wedged,
            BatcherConfig(
                max_batch_size=1, max_delay_ms=0.0, workers=1,
                max_queue_depth=8,
            ),
        ).start()
        try:
            first = np.zeros(2)
            batcher.submit(first)  # occupies the single wedged worker
            # The collector is now parked on the in-flight semaphore,
            # so this request stays observable in the admission queue.
            mine = np.arange(6.0)
            batcher.submit(mine)
            # Wait for the collector to take the wedged request, leaving
            # ours observable at the head of the admission queue.
            deadline = time.monotonic() + 5.0
            queued = None
            while time.monotonic() < deadline:
                items = [
                    req
                    for req in batcher._queue.queue
                    if req.x.shape == mine.shape
                ]
                if items:
                    queued = items[0]
                    break
                time.sleep(0.001)
            assert queued is not None, "request never seen in the queue"
            assert queued.x is mine  # same object: zero-copy handoff
            assert np.shares_memory(queued.x, mine)
        finally:
            wedge.set()
            batcher.stop()


class TestChaosKillAndRejoin:
    #: Consecutive chaos rounds (acceptance: 25 clean runs, no hang,
    #: no silent drop).
    ROUNDS = 25

    def test_kill_midload_no_hangs_no_silent_drops(self):
        config = GatewayConfig(
            shards=3,
            submit_timeout_s=5.0,
            batcher=BatcherConfig(
                max_batch_size=4, max_delay_ms=0.5, workers=1,
                max_queue_depth=256,
            ),
        )
        probes = np.zeros((2, 3))
        with AsyncGateway(
            {"default": lambda: _slow_tenant(0.002)}, config=config
        ) as gw:
            expected = _echo_tenant()(np.ones((1, 3)))[0]
            for round_no in range(self.ROUNDS):
                victim = f"shard-{round_no % 3}"
                futures = [
                    gw.submit(np.ones(3)) for _ in range(24)
                ]
                gw.kill_shard(victim)
                outcomes = {"ok": 0, "dead": 0}
                for future in futures:
                    # No hang: every future resolves within the bound.
                    try:
                        out = future.result(timeout=10)
                    except ShardDeadError:
                        outcomes["dead"] += 1
                    else:
                        outcomes["ok"] += 1
                        np.testing.assert_array_equal(out, expected)
                # No silent drops: every request is accounted for.
                assert outcomes["ok"] + outcomes["dead"] == len(futures)
                assert victim not in gw.live_shards
                # New traffic re-routes to the survivors.
                np.testing.assert_array_equal(
                    gw.infer(np.ones(3)), expected
                )
                # Health-gated rejoin: back on the ring for next round.
                gw.rejoin_shard(victim, probes=probes)
                assert victim in gw.live_shards
            assert gw.shard("shard-0").deaths >= 8

    def test_rejoin_refused_keeps_shard_off_ring(self):
        class Degraded:
            healthy = True

            def infer_batch(self, images):
                return images * 1.0

            def self_check(self, probes):
                if not Degraded.healthy:
                    raise ConformanceError("degraded beyond tolerance")

        config = GatewayConfig(shards=2, batcher=SMALL_BATCHER)
        with AsyncGateway({"default": Degraded}, config=config) as gw:
            Degraded.healthy = False
            gw.kill_shard("shard-0")
            with pytest.raises(ConformanceError):
                gw.rejoin_shard("shard-0", probes=np.zeros((1, 2)))
            assert gw.live_shards == ["shard-1"]
            # Still serving on the survivor the whole time.
            gw.infer(np.zeros(2))
            Degraded.healthy = True
            gw.rejoin_shard("shard-0", probes=np.zeros((1, 2)))
            assert gw.live_shards == ["shard-0", "shard-1"]

    def test_all_shards_dead_is_an_explicit_error(self):
        config = GatewayConfig(shards=2, batcher=SMALL_BATCHER)
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            gw.kill_shard("shard-0")
            gw.kill_shard("shard-1")
            with pytest.raises((ServeError, ShardDeadError)):
                gw.infer(np.zeros(2))


@pytest.fixture(scope="module")
def tiny_session(tiny_quantized):
    return InferenceSession.from_artifacts(
        tiny_quantized.network,
        tiny_quantized.thresholds,
        SessionConfig(network="tiny", tile=4),
    )


class TestGatewayBitIdentity:
    """Gateway responses == a single inline InferenceSession, byte for
    byte — any shard count, any coalescing, concurrent tenants."""

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_matches_inline_session(
        self, tiny_session, tiny_dataset, shards
    ):
        images = tiny_dataset["test_x"][:24]
        inline = tiny_session.infer_batch(images)
        config = GatewayConfig(
            shards=shards,
            batcher=BatcherConfig(
                max_batch_size=5, max_delay_ms=2.0, workers=2,
                max_queue_depth=64,
            ),
        )
        with AsyncGateway({"default": lambda: tiny_session}, config=config) as gw:
            futures = [gw.submit(x) for x in images]
            outputs = np.stack([f.result(timeout=30) for f in futures])
        assert outputs.dtype == inline.dtype
        assert np.array_equal(outputs, inline)
        assert outputs.tobytes() == inline.tobytes()

    def test_concurrent_tenants_stay_bit_identical(
        self, tiny_session, tiny_dataset
    ):
        images = tiny_dataset["test_x"][:16]
        inline = tiny_session.infer_batch(images)
        echo_expected = _echo_tenant()(images)
        config = GatewayConfig(
            shards=2,
            batcher=BatcherConfig(
                max_batch_size=4, max_delay_ms=1.0, workers=2,
                max_queue_depth=64,
            ),
        )
        tenants = {
            "paper": lambda: tiny_session,
            "echo": _echo_tenant,
        }
        with AsyncGateway(tenants, config=config) as gw:
            paper_futures = [None] * len(images)
            echo_futures = [None] * len(images)

            def drive(kind, futures):
                for i, x in enumerate(images):
                    futures[i] = gw.submit(x, tenant=kind)

            threads = [
                threading.Thread(target=drive, args=("paper", paper_futures)),
                threading.Thread(target=drive, args=("echo", echo_futures)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            paper_out = np.stack(
                [f.result(timeout=30) for f in paper_futures]
            )
            echo_out = np.stack([f.result(timeout=30) for f in echo_futures])
        assert paper_out.tobytes() == inline.tobytes()
        assert np.array_equal(echo_out, echo_expected)


class TestAggregatedTelemetry:
    def test_prometheus_text_labels_every_shard(self):
        config = GatewayConfig(shards=2, batcher=SMALL_BATCHER)
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            for _ in range(8):
                gw.infer(np.zeros(2))
            text = gw.prometheus_text()
        assert 'shard="gateway"' in text
        assert 'shard="shard-0"' in text
        assert 'shard="shard-1"' in text
        # One TYPE header per metric, even though two shards publish
        # the same metric names.
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert len(type_lines) == len(set(type_lines))
        assert "repro_serve_requests_total" in text
        assert "repro_serve_gateway_completed_total" in text

    def test_http_endpoint_serves_aggregated_view(self):
        import json
        from urllib.request import urlopen

        config = GatewayConfig(shards=2, batcher=SMALL_BATCHER)
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            for _ in range(4):
                gw.infer(np.zeros(2))
            server = gw.serve_metrics()
            try:
                with urlopen(server.url + "/metrics", timeout=5) as response:
                    text = response.read().decode("utf-8")
                assert 'shard="shard-1"' in text
                with urlopen(server.url + "/healthz", timeout=5) as response:
                    health = json.loads(response.read())
                assert health["ok"] is True
                assert set(health["shards"]) == {"shard-0", "shard-1"}
                with urlopen(
                    server.url + "/metrics.json", timeout=5
                ) as response:
                    payload = json.loads(response.read())
                assert payload["gateway"]["live_shards"] == [
                    "shard-0",
                    "shard-1",
                ]
                assert "shard-0" in payload["shards"]
            finally:
                server.stop()

    def test_dead_shard_visible_in_health_and_metrics(self):
        config = GatewayConfig(shards=2, batcher=SMALL_BATCHER)
        with AsyncGateway({"default": _echo_tenant}, config=config) as gw:
            gw.infer(np.zeros(2))
            gw.kill_shard("shard-1")
            health = gw.health()
            assert health["ok"]  # still one live shard
            assert health["shards"]["shard-1"]["state"] == "dead"
            text = gw.prometheus_text()
            assert (
                'repro_serve_shard_live{shard="shard-1"} 0.0' in text
            )
