"""Property-based tests for the micro-batching serving path.

Liveness/ordering/accounting guarantees the batcher makes, checked over
hypothesis-drawn coalescing configurations:

* coalescing NEVER reorders results — every future resolves to its own
  sample's output no matter how requests were grouped into batches;
* a saturated in-flight semaphore plus a full admission queue makes
  ``submit(timeout=...)`` raise :class:`BackpressureError` — load
  shedding, not deadlock;
* ``stop(drain=True)`` resolves every pending future before returning;
* latency accounting is **exact** on an injected
  :class:`~repro.serve.clock.FakeClock`: the recorded latency histogram
  equals the hand-computed service times, with no wall-clock tolerance
  anywhere (this replaced the flaky "rejection arrived within ~2 s"
  style assertions — timing claims are now equalities on a fake clock,
  and the few tests that genuinely need real threads sleeping are
  marked ``slow``);
* the gateway's :class:`~repro.serve.TokenBucket` refills on the exact
  continuous schedule its rate implies.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import BackpressureError
from repro.obs.recorder import Recorder
from repro.serve import BatcherConfig, FakeClock, MicroBatcher, TokenBucket

pytestmark = pytest.mark.property

#: Thread-based examples are slow-ish; keep the example budget modest.
THREADED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Pure-computation examples (fake clock, no threads) can afford more.
FAST = settings(max_examples=100, deadline=None)


def _echo(images: np.ndarray) -> np.ndarray:
    """Identity-ish target: output row i encodes input row i."""
    return np.asarray(images) * 2.0 + 1.0


@THREADED
@given(
    n_requests=st.integers(1, 40),
    max_batch_size=st.integers(1, 8),
    workers=st.integers(1, 3),
    delay_ms=st.sampled_from([0.0, 0.5, 2.0]),
)
def test_coalescing_never_reorders_results(
    n_requests, max_batch_size, workers, delay_ms
):
    """Whatever batches form, future i always gets sample i's output."""
    config = BatcherConfig(
        max_batch_size=max_batch_size,
        max_delay_ms=delay_ms,
        workers=workers,
        max_queue_depth=max(n_requests, 1),
    )
    samples = [np.array([float(i), float(-i)]) for i in range(n_requests)]
    with MicroBatcher(_echo, config) as batcher:
        futures = batcher.submit_many(samples, timeout=5.0)
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(timeout=5.0), _echo(samples[i][None])[0]
            )
    assert batcher.stats.requests == n_requests


@pytest.mark.slow
@THREADED
@given(queue_depth=st.integers(1, 3))
def test_backpressure_raises_instead_of_deadlocking(queue_depth):
    """Full queue + saturated workers: submit(timeout) sheds, not hangs.

    Genuinely real-time (a thread parks in ``queue.put`` until the
    0.05 s admission timeout expires), hence the ``slow`` marker.  The
    shed-not-hang claim is the ``pytest.raises`` itself — if the submit
    deadlocked the test would time out, no wall-clock assertion needed.
    """
    release = threading.Event()

    def stall(images):
        release.wait(timeout=10.0)
        return _echo(images)

    config = BatcherConfig(
        max_batch_size=1,
        max_delay_ms=0.0,
        workers=1,
        max_queue_depth=queue_depth,
    )
    batcher = MicroBatcher(stall, config).start()
    try:
        # One request occupies the single worker; with max_batch_size=1
        # the collector then blocks on the in-flight semaphore, so the
        # next queue_depth requests saturate the admission queue.
        futures = [batcher.submit(np.zeros(2), timeout=5.0)]
        for _ in range(queue_depth):
            futures.append(batcher.submit(np.zeros(2), timeout=5.0))
        with pytest.raises(BackpressureError):
            batcher.submit(np.zeros(2), timeout=0.05)
        assert batcher.stats.rejected >= 1
    finally:
        release.set()
        batcher.stop(drain=True)
    for future in futures:
        assert future.done()
        np.testing.assert_array_equal(future.result(), _echo(np.zeros(2)))


@THREADED
@given(
    n_requests=st.integers(1, 25),
    max_batch_size=st.integers(1, 8),
)
def test_shutdown_drains_pending_futures(n_requests, max_batch_size):
    """stop(drain=True) resolves everything already submitted."""

    def slowish(images):
        time.sleep(0.001)
        return _echo(images)

    config = BatcherConfig(
        max_batch_size=max_batch_size,
        max_delay_ms=1.0,
        workers=2,
        max_queue_depth=max(n_requests, 1),
    )
    batcher = MicroBatcher(slowish, config).start()
    samples = [np.array([float(i)]) for i in range(n_requests)]
    futures = batcher.submit_many(samples, timeout=5.0)
    batcher.stop(drain=True)
    for i, future in enumerate(futures):
        assert future.done(), f"future {i} left unresolved by drain"
        np.testing.assert_array_equal(
            future.result(), _echo(samples[i][None])[0]
        )
    assert batcher.stats.requests == n_requests


@THREADED
@given(
    # Powers of two (in seconds) stay exact through the seconds->ms
    # conversion, so the histogram comparison needs no tolerance.
    service_times=st.lists(
        st.sampled_from([2.0**-k for k in range(4, 12)]),
        min_size=1,
        max_size=12,
    )
)
def test_latency_accounting_is_exact_on_a_fake_clock(service_times):
    """The recorded latency histogram equals the injected service times.

    The target advances the shared FakeClock by a known amount per
    batch; requests run one at a time, so request i's recorded latency
    is *exactly* ``service_times[i]`` — the deadline/latency assertions
    that used to tolerate scheduler jitter are equalities here.
    """
    clock = FakeClock()
    calls = {"i": 0}

    def timed_target(images):
        clock.advance(service_times[calls["i"]])
        calls["i"] += 1
        return _echo(images)

    config = BatcherConfig(
        max_batch_size=1, max_delay_ms=0.0, workers=1, max_queue_depth=4
    )
    batcher = MicroBatcher(timed_target, config, clock=clock)
    batcher.recorder = Recorder()
    with batcher:
        for expected in service_times:
            before = clock.monotonic()
            batcher.submit(np.zeros(2), timeout=5.0).result(timeout=10.0)
            # The clock moved by exactly this request's service time...
            assert clock.monotonic() - before == expected
    hist = batcher.recorder.metrics.as_dict()["histograms"][
        "serve/latency_ms"
    ]
    # ...and the histogram recorded exactly those latencies.
    assert hist["count"] == len(service_times)
    assert hist["sum"] == sum(s * 1e3 for s in service_times)


@FAST
@given(
    rate=st.sampled_from([1.0, 4.0, 32.0, 256.0]),
    burst=st.integers(1, 16),
    steps=st.lists(
        st.tuples(
            # Power-of-two advances keep refill arithmetic exact.
            st.sampled_from([0.0] + [2.0**-k for k in range(0, 10)]),
            st.booleans(),  # whether to try acquiring after advancing
        ),
        max_size=40,
    ),
)
def test_token_bucket_refills_on_the_exact_schedule(rate, burst, steps):
    """TokenBucket against an exact reference model on one fake clock."""
    clock = FakeClock()
    bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
    tokens = float(burst)  # reference model, same arithmetic
    last = clock.monotonic()
    for advance, acquire in steps:
        clock.advance(advance)
        if not acquire:
            continue
        now = clock.monotonic()
        tokens = min(float(burst), tokens + (now - last) * rate)
        last = now
        expect = tokens >= 1.0
        assert bucket.try_acquire() is expect
        if expect:
            tokens -= 1.0
    now = clock.monotonic()
    tokens = min(float(burst), tokens + (now - last) * rate)
    assert bucket.tokens == tokens
