"""Tests for repro.analysis.robustness."""

import pytest

from repro.analysis import sei_variation_sweep, sense_amp_noise_sweep
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def sweep_inputs(request):
    # Resolved lazily through the session fixtures.
    tiny_quantized = request.getfixturevalue("tiny_quantized")
    tiny_dataset = request.getfixturevalue("tiny_dataset")
    return (
        tiny_quantized.network,
        tiny_quantized.thresholds,
        tiny_dataset["test_x"][:60],
        tiny_dataset["test_y"][:60],
    )


class TestVariationSweep:
    def test_shapes_and_monotone_tendency(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        result = sei_variation_sweep(
            net, th, x, y, sigmas=(0.0, 1.5), trials=3
        )
        assert result.levels == [0.0, 1.5]
        assert result.trials == 3
        assert len(result.mean_error) == 2
        # Massive programming error cannot *improve* on noiseless.
        assert result.mean_error[1] >= result.mean_error[0] - 0.05

    def test_zero_sigma_deterministic(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        result = sei_variation_sweep(net, th, x, y, sigmas=(0.0,), trials=3)
        assert result.std_error[0] == pytest.approx(0.0, abs=1e-12)

    def test_read_kind(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        result = sei_variation_sweep(
            net, th, x, y, sigmas=(0.0, 0.1), trials=2, kind="read"
        )
        assert result.knob == "read_sigma"

    def test_invalid_kind_and_trials(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        with pytest.raises(ConfigurationError):
            sei_variation_sweep(net, th, x, y, kind="write")
        with pytest.raises(ConfigurationError):
            sei_variation_sweep(net, th, x, y, trials=0)

    def test_rows_format(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        result = sei_variation_sweep(net, th, x, y, sigmas=(0.0,), trials=1)
        rows = result.rows()
        assert rows[0]["program_sigma"] == 0.0
        assert "mean error" in rows[0]


class TestSenseAmpSweep:
    def test_large_noise_degrades(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        result = sense_amp_noise_sweep(
            net, th, x, y, sigmas=(0.0, 2.0), trials=3
        )
        assert result.mean_error[1] > result.mean_error[0]

    def test_trials_validation(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        with pytest.raises(ConfigurationError):
            sense_amp_noise_sweep(net, th, x, y, trials=0)

    def test_worst_at_least_mean(self, sweep_inputs):
        net, th, x, y = sweep_inputs
        result = sense_amp_noise_sweep(
            net, th, x, y, sigmas=(0.5,), trials=4
        )
        assert result.worst_error[0] >= result.mean_error[0] - 1e-12
