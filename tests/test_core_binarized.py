"""Tests for repro.core.binarized (1-bit inference, §3.1)."""

import numpy as np
import pytest

from repro.core import (
    BinarizedNetwork,
    binarize,
    intermediate_quantizable_indices,
    or_pool,
)
from repro.errors import QuantizationError, ShapeError
from repro.nn import Dense, Flatten, Sequential
from repro.nn.functional import maxpool2d

from tests.conftest import build_tiny_network


class TestBinarize:
    def test_strict_threshold(self):
        out = binarize(np.array([0.0, 0.1, 0.2]), 0.1)
        np.testing.assert_array_equal(out, [0.0, 0.0, 1.0])

    def test_negative_values_are_zero(self):
        assert binarize(np.array([-5.0]), 0.0)[0] == 0.0

    def test_relu_merging_identity(self, rng):
        """relu(g) > t == g > t for t >= 0 — the neuron merges into the SA."""
        g = rng.normal(size=1000)
        t = 0.05
        np.testing.assert_array_equal(
            binarize(np.maximum(g, 0.0), t), binarize(g, t)
        )


class TestOrPool:
    def test_is_logical_or(self):
        bits = np.zeros((1, 1, 4, 4))
        bits[0, 0, 0, 1] = 1.0
        out = or_pool(bits, 2)
        np.testing.assert_array_equal(out[0, 0], [[1, 0], [0, 0]])

    def test_rejects_non_binary(self, rng):
        with pytest.raises(ShapeError):
            or_pool(rng.random((1, 1, 4, 4)), 2)

    def test_quantize_before_equals_after_pooling(self, rng):
        """§3.1: quantize-then-OR == pool-then-quantize (same threshold)."""
        values = rng.random((3, 2, 8, 8))
        t = 0.4
        quantize_first = or_pool(binarize(values, t), 2)
        pooled, _ = maxpool2d(values, 2)
        pool_first = binarize(pooled, t)
        np.testing.assert_array_equal(quantize_first, pool_first)


class TestIntermediateIndices:
    def test_tiny_network(self):
        net = build_tiny_network()
        assert intermediate_quantizable_indices(net) == [0, 3]

    def test_single_layer_network_rejected(self, rng):
        net = Sequential(
            [Flatten(), Dense(784, 10, rng=rng)], (1, 28, 28)
        )
        with pytest.raises(QuantizationError):
            intermediate_quantizable_indices(net)


class TestBinarizedNetwork:
    def test_requires_all_thresholds(self, trained_tiny_network):
        with pytest.raises(QuantizationError):
            BinarizedNetwork(trained_tiny_network, {0: 0.1})

    def test_forward_matches_manual_pipeline(self, tiny_quantized, tiny_dataset):
        """The wrapper must equal an explicit layer-by-layer simulation."""
        bn = tiny_quantized.binarized(input_bits=None)
        net = tiny_quantized.network
        t = tiny_quantized.thresholds
        x = tiny_dataset["test_x"][:8]

        manual = binarize(net.layers[0].forward(x), t[0])
        manual, _ = maxpool2d(manual, 2)  # OR over bits
        manual = binarize(net.layers[3].forward(manual), t[3])
        manual, _ = maxpool2d(manual, 2)
        manual = net.layers[7].forward(net.layers[6].forward(manual))

        np.testing.assert_allclose(bn.forward(x), manual)

    def test_predict_batching_consistent(self, tiny_quantized, tiny_dataset):
        bn = tiny_quantized.binarized()
        x = tiny_dataset["test_x"][:20]
        np.testing.assert_allclose(
            bn.predict(x, batch_size=6), bn.predict(x, batch_size=20)
        )

    def test_error_rate_reasonable(self, tiny_quantized, tiny_dataset):
        bn = tiny_quantized.binarized()
        err = bn.error_rate(tiny_dataset["test_x"], tiny_dataset["test_y"])
        assert 0.0 <= err < 0.4

    def test_input_quantization_changes_little(self, tiny_quantized, tiny_dataset):
        x = tiny_dataset["test_x"][:40]
        ideal = tiny_quantized.binarized(input_bits=None).predict(x)
        coarse = tiny_quantized.binarized(input_bits=8).predict(x)
        agreement = (ideal.argmax(1) == coarse.argmax(1)).mean()
        assert agreement > 0.9

    def test_collect_binary_activations(self, tiny_quantized, tiny_dataset):
        bn = tiny_quantized.binarized()
        captured = bn.collect_binary_activations(tiny_dataset["test_x"][:4])
        # conv2 (index 3) and fc (index 7) receive binary data.
        assert set(captured) == {3, 7}
        for bits in captured.values():
            assert np.all(np.isin(bits, (0.0, 1.0)))

    def test_layer_compute_hook_is_used(self, tiny_quantized, tiny_dataset):
        bn = tiny_quantized.binarized()
        calls = []

        def spy(layer, x):
            calls.append(x.shape)
            return layer.forward(x)

        bn.layer_computes[3] = spy
        bn.forward(tiny_dataset["test_x"][:2])
        assert len(calls) == 1
