"""Unit tests for repro.nn.network.Sequential."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

from tests.conftest import build_tiny_network


class TestConstruction:
    def test_empty_layer_list_raises(self):
        with pytest.raises(ConfigurationError):
            Sequential([], (1, 28, 28))

    def test_incompatible_layers_raise_at_construction(self, rng):
        layers = [Conv2D(1, 4, 5, rng=rng), Dense(10, 10, rng=rng)]
        with pytest.raises(ShapeError):
            Sequential(layers, (1, 28, 28))

    def test_shape_propagation(self):
        net = build_tiny_network()
        assert net.shape_at(0) == (4, 24, 24)
        assert net.shape_at(2) == (4, 12, 12)
        assert net.shape_at(len(net) - 1) == (10,)


class TestForward:
    def test_forward_shape(self, rng):
        net = build_tiny_network()
        out = net.forward(rng.normal(size=(3, 1, 28, 28)))
        assert out.shape == (3, 10)

    def test_input_shape_check(self, rng):
        net = build_tiny_network()
        with pytest.raises(ShapeError):
            net.forward(rng.normal(size=(3, 1, 27, 27)))

    def test_predict_batches_match_forward(self, rng):
        net = build_tiny_network()
        x = rng.normal(size=(10, 1, 28, 28))
        np.testing.assert_allclose(net.predict(x, batch_size=3), net.forward(x))

    def test_forward_collect_matches_layers(self, rng):
        net = build_tiny_network()
        x = rng.normal(size=(2, 1, 28, 28))
        acts = net.forward_collect(x)
        assert len(acts) == len(net)
        np.testing.assert_allclose(acts[-1], net.forward(x))

    def test_forward_from_continues_correctly(self, rng):
        net = build_tiny_network()
        x = rng.normal(size=(2, 1, 28, 28))
        acts = net.forward_collect(x)
        resumed = net.forward_from(acts[2], 3)
        np.testing.assert_allclose(resumed, acts[-1])

    def test_forward_from_bad_index(self, rng):
        net = build_tiny_network()
        with pytest.raises(ConfigurationError):
            net.forward_from(rng.normal(size=(1, 10)), 99)


class TestIntrospection:
    def test_quantizable_indices(self):
        net = build_tiny_network()
        assert net.quantizable_indices() == [0, 3, 7]

    def test_parameter_groups_only_weighted(self):
        net = build_tiny_network()
        groups = net.parameter_groups()
        assert len(groups) == 3

    def test_num_params(self):
        net = build_tiny_network()
        expected = 4 * 25 + 8 * 4 * 25 + (128 * 10 + 10)
        assert net.num_params == expected

    def test_iteration(self):
        net = build_tiny_network()
        assert len(list(net)) == len(net) == 8


class TestPersistence:
    def test_save_load_round_trip(self, rng, tmp_path):
        net = build_tiny_network(seed=1)
        other = build_tiny_network(seed=2)
        x = rng.normal(size=(2, 1, 28, 28))
        assert not np.allclose(net.forward(x), other.forward(x))
        path = tmp_path / "weights.npz"
        net.save(path)
        other.load(path)
        np.testing.assert_allclose(net.forward(x), other.forward(x))

    def test_load_missing_key_raises(self, tmp_path):
        net = build_tiny_network()
        state = net.state_dict()
        state.pop("layer0.weight")
        with pytest.raises(ConfigurationError):
            net.load_state_dict(state)

    def test_load_wrong_shape_raises(self):
        net = build_tiny_network()
        state = net.state_dict()
        state["layer0.weight"] = np.zeros((1, 1, 3, 3))
        with pytest.raises(ShapeError):
            net.load_state_dict(state)

    def test_copy_is_independent(self, rng):
        net = build_tiny_network()
        clone = net.copy()
        x = rng.normal(size=(1, 1, 28, 28))
        np.testing.assert_allclose(net.forward(x), clone.forward(x))
        clone.layers[0].params["weight"] *= 2.0
        assert not np.allclose(net.forward(x), clone.forward(x))


class TestBackwardIntegration:
    def test_gradient_descent_reduces_loss(self, rng):
        from repro.nn.losses import softmax_cross_entropy

        net = Sequential(
            [Flatten(), Dense(16, 4, rng=rng)],
            (1, 4, 4),
        )
        x = rng.normal(size=(8, 1, 4, 4))
        y = rng.integers(0, 4, size=8)
        losses = []
        for _ in range(30):
            net.zero_grad()
            logits = net.forward(x, train=True)
            loss, grad = softmax_cross_entropy(logits, y)
            losses.append(loss)
            net.backward(grad)
            for params, grads in net.parameter_groups():
                for name in params:
                    params[name] -= 0.5 * grads[name]
        assert losses[-1] < losses[0] * 0.5
