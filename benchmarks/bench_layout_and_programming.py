"""Deployment benches: cell-level layout compilation and programming cost.

Closes the loop from quantized model to chip artefact: compile every
network's SEI programming images, verify them bit-exactly against the
weights (as a chip reader would), and quantify the one-time programming
cost next to the per-picture inference energy.
"""

import pytest

from repro.arch import (
    compile_sei_layout,
    evaluate_design,
    format_table,
    programming_cost,
    verify_layout,
)
from repro.core import RobustSearchConfig, SearchConfig, robustify_thresholds
from repro.analysis import sei_variation_sweep

from benchmarks.conftest import heading


def run_layout(quantized_models):
    import numpy as np

    from repro.arch import ProgrammingModel
    from repro.hw import RRAMDevice, tune_cells

    rows = []
    for name, qm in quantized_models.items():
        images = compile_sei_layout(qm.search.network)
        errors = verify_layout(images, qm.search.network)
        ev = evaluate_design(name, "sei")

        # Measure the program-and-verify iteration count ([13]) on the
        # actual compiled cell targets instead of assuming a constant.
        targets = np.concatenate(
            [img.levels.ravel() / 15.0 for img in images]
        )
        tuning = tune_cells(
            RRAMDevice(bits=4, program_sigma=0.6),
            targets,
            tolerance=0.5,
            rng=np.random.default_rng(0),
        )
        prog = programming_cost(
            ev.mappings,
            ev.energy_uj_per_picture,
            model=ProgrammingModel(
                verify_iterations=max(tuning.mean_iterations, 1.0)
            ),
        )
        rows.append(
            {
                "network": name,
                "crossbars": len(images),
                "cells": sum(i.levels.size for i in images),
                "programmed": sum(i.used_cells for i in images),
                "max recon err (LSB)": max(errors.values()),
                "tuning iters (measured)": tuning.mean_iterations,
                "tuning yield": tuning.yield_fraction,
                "program energy (uJ)": prog.energy_uj,
                "program time (ms)": prog.time_ms,
                "pictures to amortize 1%": prog.pictures_to_amortize(0.01),
            }
        )
    return rows


@pytest.mark.benchmark(group="layout")
def test_layout_compilation_and_programming(benchmark, quantized_models):
    rows = benchmark.pedantic(
        run_layout, args=(quantized_models,), rounds=1, iterations=1
    )

    heading("Deployment — SEI layout compilation + programming cost")
    print(format_table(rows))

    for row in rows:
        # Bit-exact round trip within the 8-bit rounding bound.
        assert row["max recon err (LSB)"] <= 0.51
        # Programming amortizes within a few thousand pictures.
        assert row["pictures to amortize 1%"] < 10000


def run_noise_aware(quantized_models, dataset):
    qm = quantized_models["network2"]
    sigma = 2.5
    robust = robustify_thresholds(
        qm.search,
        dataset.train.images[:1500],
        dataset.train.labels[:1500],
        RobustSearchConfig(
            program_sigma=sigma,
            trials=5,
            search=SearchConfig(search_step=0.01),
        ),
    )
    rows = []
    for thresholds, label in (
        (qm.search.thresholds, "Algorithm 1 (nominal)"),
        (robust, "noise-aware calibration"),
    ):
        sweep = sei_variation_sweep(
            qm.search.network,
            thresholds,
            dataset.test.images[:400],
            dataset.test.labels[:400],
            sigmas=(sigma,),
            trials=8,
            seed=7,
        )
        rows.append(
            {
                "calibration": label,
                "thresholds": str(
                    {k: round(v, 3) for k, v in thresholds.items()}
                ),
                f"mean error @ sigma={sigma}": sweep.mean_error[0],
                "worst": sweep.worst_error[0],
            }
        )
    return rows, sigma


@pytest.mark.benchmark(group="layout")
def test_noise_aware_calibration(benchmark, quantized_models, dataset):
    rows, sigma = benchmark.pedantic(
        run_noise_aware,
        args=(quantized_models, dataset),
        rounds=1,
        iterations=1,
    )

    heading(
        "§6 extension — noise-aware threshold calibration (network2, "
        f"programming sigma {sigma} level-steps)"
    )
    print(format_table(rows, floatfmt="{:.4f}"))

    nominal = rows[0][f"mean error @ sigma={sigma}"]
    robust = rows[1][f"mean error @ sigma={sigma}"]
    # The noise-aware thresholds are at least as robust as the nominal
    # ones under the variation they were calibrated for.
    assert robust <= nominal + 0.01
