"""Algorithm 1: greedy layer-by-layer threshold search (§3.1).

For each intermediate layer L, in order:

1. run the network on the training set with all *earlier* layers already
   quantized, record layer L's outputs;
2. re-scale layer L's weights by the maximum of those outputs, so they lie
   in [0, 1] (weight re-scaling);
3. brute-force search the threshold in ``[thres_min, thres_max]`` with
   step ``search_step`` (the paper searches 0..0.1 — the optimum is always
   far below 0.1 because of the long-tail data distribution); each
   candidate is scored by feeding the training set forward with layer L
   binarized at the candidate and all deeper layers still float, keeping
   the candidate with the best classification accuracy.

Implementation notes
--------------------
* The paper's pseudo-code never updates ``Accuracy_max`` inside the loop
  (an obvious typo); we update it, otherwise the algorithm would keep the
  *last* candidate rather than the best.
* The expensive part is re-running the tail of the network for every
  candidate.  We cache the pre-binarization activations of layer L once,
  so each candidate costs only ``tail_forward`` — for the paper's 4-layer
  CNNs this makes the search tractable on a laptop.
* Besides the paper's accuracy criterion we provide the cheaper
  "quantization error" criterion the related-work section alludes to
  (direct robust searching minimising the reconstruction error); the
  ablation benchmark compares both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import QuantizationError
from repro.core.binarized import (
    BinarizedNetwork,
    binarize,
    intermediate_quantizable_indices,
)
from repro.core.rescale import rescale_layer
from repro.nn.losses import accuracy
from repro.nn.network import Sequential

__all__ = ["SearchConfig", "SearchResult", "search_thresholds"]


@dataclass(frozen=True)
class SearchConfig:
    """Parameters of Algorithm 1."""

    #: The paper searches [0, 0.1] (its optimum is always << 0.1 thanks to
    #: the extreme CaffeNet/MNIST long tail).  Our synthetic task's optima
    #: land slightly above 0.1, so the default upper bound is 0.2; the
    #: ablation benchmark compares both ranges.
    thres_min: float = 0.0
    thres_max: float = 0.2
    search_step: float = 0.005
    #: 'accuracy' = the paper's Algorithm 1; 'qerror' = minimise the mean
    #: squared error between the layer output and its 1-bit reconstruction.
    criterion: str = "accuracy"
    #: Extra coordinate-descent passes after the greedy sweep: each pass
    #: re-searches every layer's threshold with all *other* thresholds
    #: fixed (deeper layers now quantized too).  The paper's algorithm is
    #: single-pass greedy (0); refinement helps deeper networks where the
    #: greedy error compounds (see the deep-network example/ablation).
    refine_passes: int = 0
    batch_size: int = 256

    def candidates(self) -> np.ndarray:
        """The threshold grid, inclusive of both ends."""
        if self.search_step <= 0:
            raise QuantizationError(
                f"search step must be positive, got {self.search_step}"
            )
        if self.thres_max < self.thres_min:
            raise QuantizationError(
                f"empty search range [{self.thres_min}, {self.thres_max}]"
            )
        count = int(round((self.thres_max - self.thres_min) / self.search_step))
        return self.thres_min + self.search_step * np.arange(count + 1)

    def __post_init__(self) -> None:
        if self.criterion not in ("accuracy", "qerror"):
            raise QuantizationError(
                f"criterion must be 'accuracy' or 'qerror', "
                f"got {self.criterion!r}"
            )
        if self.refine_passes < 0:
            raise QuantizationError(
                f"refine_passes must be >= 0, got {self.refine_passes}"
            )


@dataclass
class SearchResult:
    """Outcome of the greedy search."""

    #: The re-scaled network (a copy; the input network is untouched).
    network: Sequential
    #: Chosen threshold per intermediate weighted-layer index.
    thresholds: Dict[int, float]
    #: Re-scaling divisor applied per layer index.
    divisors: Dict[int, float]
    #: Training accuracy achieved at each layer's chosen threshold.
    layer_accuracy: Dict[int, float] = field(default_factory=dict)
    #: Full (threshold -> score) curves for analysis / plotting.
    search_curves: Dict[int, Dict[float, float]] = field(default_factory=dict)

    def binarized(self, input_bits: Optional[int] = 8) -> BinarizedNetwork:
        """The quantized network ready for inference."""
        return BinarizedNetwork(
            self.network, dict(self.thresholds), input_bits=input_bits
        )


def search_thresholds(
    network: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    config: Optional[SearchConfig] = None,
) -> SearchResult:
    """Run Algorithm 1 on a trained network.

    Parameters
    ----------
    network:
        Trained float network (copied, not mutated).
    images, labels:
        The *training* set (the paper explicitly optimises thresholds on
        the training samples and reports error on the held-out test set).
    """
    config = config if config is not None else SearchConfig()
    candidates = config.candidates()
    net = network.copy()
    targets = intermediate_quantizable_indices(net)

    thresholds: Dict[int, float] = {}
    divisors: Dict[int, float] = {}
    layer_accuracy: Dict[int, float] = {}
    curves: Dict[int, Dict[float, float]] = {}

    for layer_index in targets:
        # Step 1: outputs of layer L with earlier layers quantized.
        pre_acts = _collect_pre_activations(
            net, images, thresholds, layer_index, config.batch_size
        )
        # Step 2: weight re-scaling so outputs lie in [0, 1].
        peak = float(pre_acts.max(initial=0.0))
        rescale_layer(net, layer_index, peak)
        divisors[layer_index] = peak
        pre_acts = pre_acts / peak

        # Step 3: brute-force threshold search (deeper layers still float
        # in the greedy phase: they carry no thresholds yet).
        if config.criterion == "accuracy":
            best_t, best_score, curve = _search_by_accuracy(
                net,
                pre_acts,
                labels,
                layer_index,
                candidates,
                config.batch_size,
                thresholds,
            )
        else:
            best_t, best_score, curve = _search_by_qerror(pre_acts, candidates)
        thresholds[layer_index] = best_t
        layer_accuracy[layer_index] = best_score
        curves[layer_index] = curve

    # Optional coordinate-descent refinement: re-search each threshold
    # with every other one held fixed (now including the deeper ones).
    for _ in range(config.refine_passes):
        for layer_index in targets:
            # The weights are already re-scaled in place, so the
            # collected activations are on the [0, 1] search scale.
            pre_acts = _collect_pre_activations(
                net, images, thresholds, layer_index, config.batch_size
            )
            others = {k: v for k, v in thresholds.items() if k != layer_index}
            best_t, best_score, curve = _search_by_accuracy(
                net,
                pre_acts,
                labels,
                layer_index,
                candidates,
                config.batch_size,
                others,
            )
            thresholds[layer_index] = best_t
            layer_accuracy[layer_index] = best_score
            curves[layer_index] = curve

    return SearchResult(
        network=net,
        thresholds=thresholds,
        divisors=divisors,
        layer_accuracy=layer_accuracy,
        search_curves=curves,
    )


# -- helpers ------------------------------------------------------------------


def _collect_pre_activations(
    net: Sequential,
    images: np.ndarray,
    thresholds: Dict[int, float],
    layer_index: int,
    batch_size: int,
) -> np.ndarray:
    """Outputs of layer ``layer_index`` with earlier quantization applied.

    The target layer's own threshold (present during refinement passes)
    is deliberately *not* applied — the caller needs the raw
    pre-threshold activations to search over.
    """
    chunks = []
    for start in range(0, len(images), batch_size):
        x = images[start : start + batch_size]
        for index, layer in enumerate(net.layers[: layer_index + 1]):
            x = layer.forward(x)
            if index in thresholds and index != layer_index:
                x = binarize(x, thresholds[index])
        chunks.append(x)
    return np.concatenate(chunks, axis=0)


def _tail_forward(
    net: Sequential,
    activations: np.ndarray,
    start_index: int,
    batch_size: int,
    thresholds: Dict[int, float],
) -> np.ndarray:
    """Run layers after ``start_index`` on cached activations, batched.

    Layers whose index appears in ``thresholds`` are binarized — empty
    during the greedy phase (deeper thresholds do not exist yet), filled
    during refinement passes.
    """
    outputs = []
    for start in range(0, len(activations), batch_size):
        x = activations[start : start + batch_size]
        for index in range(start_index + 1, len(net.layers)):
            x = net.layers[index].forward(x)
            if index in thresholds:
                x = binarize(x, thresholds[index])
        outputs.append(x)
    return np.concatenate(outputs, axis=0)


def _search_by_accuracy(
    net: Sequential,
    pre_acts: np.ndarray,
    labels: np.ndarray,
    layer_index: int,
    candidates: np.ndarray,
    batch_size: int,
    other_thresholds: Dict[int, float],
):
    tail_thresholds = {
        k: v for k, v in other_thresholds.items() if k > layer_index
    }
    best_t = float(candidates[0])
    best_score = -1.0
    curve: Dict[float, float] = {}
    for t in candidates:
        bits = binarize(pre_acts, float(t))
        logits = _tail_forward(
            net, bits, layer_index, batch_size, tail_thresholds
        )
        score = accuracy(logits, labels)
        curve[float(t)] = score
        if score > best_score:
            best_score = score
            best_t = float(t)
    return best_t, best_score, curve


def _search_by_qerror(pre_acts: np.ndarray, candidates: np.ndarray):
    """Threshold minimising the 1-bit reconstruction error.

    For threshold t the reconstruction is ``bit * s(t)`` with the optimal
    per-threshold scale ``s(t) = mean(acts[acts > t])``; the score reported
    in the curve is the negative MSE so that "higher is better" matches
    the accuracy criterion.
    """
    flat = pre_acts.ravel()
    best_t = float(candidates[0])
    best_mse = np.inf
    curve: Dict[float, float] = {}
    for t in candidates:
        above = flat > t
        scale = float(flat[above].mean()) if above.any() else 0.0
        recon = np.where(above, scale, 0.0)
        mse = float(np.mean((flat - recon) ** 2))
        curve[float(t)] = -mse
        if mse < best_mse:
            best_mse = mse
            best_t = float(t)
    return best_t, -best_mse, curve
