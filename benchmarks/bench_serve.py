"""Serving benchmark: micro-batched concurrent requests vs one-at-a-time.

Drives the ``repro.serve`` stack end to end on a warm network2 session
(fused SEI engine, noiseless) and records the results in
``BENCH_serve.json`` at the repo root:

* **one-at-a-time** — each request runs its own ``session.infer`` call,
  the way a naive request loop would use the pipeline;
* **micro-batched** — the same requests submitted concurrently from
  several client threads through a :class:`repro.serve.MicroBatcher`,
  which coalesces them into size/deadline-bounded batches;
* **sharded gateway** — closed-loop saturation throughput of the
  :class:`repro.serve.AsyncGateway` at 1/(2/)4 shards over a tenant
  with a calibrated per-batch service time, plus an open-loop bursty
  loadgen pass (latency quantiles, rejection rate) against the largest
  deployment.  Target: the 4-shard plane sustains >= 3x the
  single-shard saturation throughput.

Both paths execute in the session's fixed hardware tiles, so the logits
are **bit-identical** request for request (asserted here); the speedup
is pure request-coalescing: one tile-sized forward pass amortises the
whole per-call layer overhead across ``tile`` requests.  Target: >= 3x.

For transparency the report also records the *untiled* single-sample
rate (``tile=1``) — the absolute baseline a session pays when batching
is disabled entirely.

Run as a script (the CI smoke check uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.serve import BatcherConfig, SessionConfig, compile_session

#: Speedup the micro-batched path must clear over one-at-a-time (full mode).
SERVE_TARGET = 3.0

#: 4-shard gateway saturation throughput must clear this multiple of the
#: single-shard saturation throughput (full mode).
GATEWAY_TARGET = 3.0

#: Calibrated per-batch service time of the synthetic gateway tenant.
#: ``time.sleep`` releases the GIL, so N shards' workers genuinely
#: overlap even on a single-core runner — the scaling number measures
#: the gateway plane (routing, admission, hand-off), not numpy's
#: ability to parallelise compute it does not have cores for.
GATEWAY_SERVICE_S = 0.4
GATEWAY_BATCH = 8
GATEWAY_WORKERS = 2

#: A scraped telemetry plane may cost at most this much throughput
#: versus the same workload with nobody polling ``/metrics``.
SCRAPE_OVERHEAD_TARGET = 0.02

BENCH_NETWORK = "network2"
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _drive_concurrent(batcher, requests, clients: int):
    """Submit ``requests`` from ``clients`` threads; ordered results."""
    futures = [None] * len(requests)

    def client(offset: int) -> None:
        for i in range(offset, len(requests), clients):
            futures[i] = batcher.submit(requests[i])

    threads = [
        threading.Thread(target=client, args=(c,)) for c in range(clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    outputs = np.stack([f.result(timeout=120) for f in futures])
    elapsed = time.perf_counter() - start
    return outputs, elapsed


def bench_serve(quick: bool) -> dict:
    requests_count = 32 if quick else 512
    clients = 2 if quick else 4
    workers = 2
    tile = 16
    repeats = 1 if quick else 3

    session = compile_session(SessionConfig(network=BENCH_NETWORK, tile=tile))
    from repro.zoo import get_dataset

    images = get_dataset().test.images
    requests = [images[i % len(images)] for i in range(requests_count)]

    # Warm both paths (first forward pass pays one-off layer setup).
    session.infer(requests[0])

    # -- one-at-a-time: a naive serial request loop ---------------------
    best_sequential = float("inf")
    sequential_outputs = None
    for _ in range(repeats):
        start = time.perf_counter()
        outputs = np.stack([session.infer(x) for x in requests])
        best_sequential = min(best_sequential, time.perf_counter() - start)
        sequential_outputs = outputs

    # -- micro-batched: concurrent clients through the batcher ----------
    config = BatcherConfig(
        max_batch_size=64,
        max_delay_ms=2.0,
        max_queue_depth=max(64, requests_count),
        workers=workers,
    )
    best_batched = float("inf")
    batched_outputs = None
    stats = None
    for _ in range(repeats):
        with session.batcher(config) as batcher:
            outputs, elapsed = _drive_concurrent(batcher, requests, clients)
        best_batched = min(best_batched, elapsed)
        batched_outputs = outputs
        stats = batcher.stats.as_dict()

    identical = bool(np.array_equal(sequential_outputs, batched_outputs))
    if not identical:
        raise AssertionError(
            "micro-batched outputs are not bit-identical to one-at-a-time "
            "inference — fixed-tile execution is broken"
        )

    # -- transparency: the untiled (tile=1) single-sample floor ---------
    untiled = compile_session(
        SessionConfig(network=BENCH_NETWORK, tile=1)
    )
    untiled.infer(requests[0])
    probe = requests[: min(64, requests_count)]
    start = time.perf_counter()
    for x in probe:
        untiled.infer(x)
    untiled_rate = len(probe) / (time.perf_counter() - start)

    ratio = best_sequential / best_batched
    return {
        "network": BENCH_NETWORK,
        "requests": requests_count,
        "clients": clients,
        "workers": workers,
        "tile": tile,
        "max_batch_size": config.max_batch_size,
        "max_delay_ms": config.max_delay_ms,
        "sequential_seconds": best_sequential,
        "batched_seconds": best_batched,
        "sequential_requests_per_second": requests_count / best_sequential,
        "batched_requests_per_second": requests_count / best_batched,
        "untiled_single_sample_rate": untiled_rate,
        "speedup": ratio,
        "target": SERVE_TARGET,
        "target_met": ratio >= SERVE_TARGET,
        "bit_identical": identical,
        "batcher_stats": stats,
    }


def _calibrated_tenant():
    """A deterministic tenant with a fixed per-batch service time.

    Output row i encodes input row i, so gateway responses stay
    checkable; the constant ``sleep`` stands in for a device with a
    fixed batch latency.
    """

    def infer_batch(images: np.ndarray) -> np.ndarray:
        time.sleep(GATEWAY_SERVICE_S)
        return np.asarray(images) * 2.0 + 1.0

    return infer_batch


def _balanced_keys(shard_ids, replicas: int, per_shard: int):
    """Routing keys interleaved so every shard gets equal load.

    The gateway hashes keys onto its consistent ring; a saturation
    probe that wants each shard fed at capacity needs keys whose owners
    rotate shard by shard, so it pre-computes pools per owner on an
    identical ring (same shard ids, same replica count -> same BLAKE2b
    placement) and interleaves them.
    """
    from repro.serve import ConsistentRouter

    router = ConsistentRouter(shard_ids, replicas=replicas)
    pools = {sid: [] for sid in shard_ids}
    i = 0
    while any(len(pool) < per_shard for pool in pools.values()):
        key = f"req-{i}"
        owner = router.route(f"default#{key}")
        if len(pools[owner]) < per_shard:
            pools[owner].append(key)
        i += 1
    return [pools[sid][j] for j in range(per_shard) for sid in shard_ids]


def bench_gateway(quick: bool) -> dict:
    """Sharded gateway saturation scaling + an open-loop loadgen pass.

    Measures the closed-loop saturation throughput of the gateway at 1,
    (2,) and 4 shards over the calibrated tenant; the 4-vs-1 ratio is
    the ``speedup`` the regression guard tracks (target >= 3x in full
    mode).  The max-shard deployment is then driven open-loop with the
    seeded bursty (MMPP-2) profile and the latency/rejection report is
    recorded for transparency.
    """
    import itertools

    from repro.serve import (
        AsyncGateway,
        GatewayConfig,
        LoadProfile,
        measure_saturation,
        run_profile,
    )

    shard_counts = [1, 4] if quick else [1, 2, 4]
    # Two in-flight batch slots per wave at 0.4 s each: the duration
    # spans a couple of full waves so edge truncation stays small.
    duration = 1.7 if quick else 2.6
    repeats = 1 if quick else 3
    payload = np.zeros(16)
    expected = (payload * 2.0 + 1.0).tobytes()
    saturation = {}
    loadgen_report = None
    for n in shard_counts:
        config = GatewayConfig(
            shards=n,
            max_in_flight=4096,
            submit_timeout_s=10.0,
            batcher=BatcherConfig(
                max_batch_size=GATEWAY_BATCH,
                max_delay_ms=1.0,
                workers=GATEWAY_WORKERS,
                max_queue_depth=4096,
            ),
        )
        with AsyncGateway({"default": _calibrated_tenant}, config=config) as gw:
            if gw.infer(payload).tobytes() != expected:
                raise AssertionError(
                    "gateway response does not match the inline tenant"
                )
            keys = itertools.cycle(
                _balanced_keys(gw.shard_ids, config.replicas, 1024)
            )
            best = None
            for _ in range(repeats):
                probe = measure_saturation(
                    lambda x: gw.submit(x, key=next(keys)),
                    payload,
                    duration_s=duration,
                    concurrency=32 * n,
                )
                if (
                    best is None
                    or probe["throughput_rps"] > best["throughput_rps"]
                ):
                    best = probe
            saturation[str(n)] = best
            if n == max(shard_counts):
                profile = LoadProfile(
                    kind="bursty",
                    rate=120.0,
                    burst_rate=480.0,
                    burst_dwell_s=0.05,
                    calm_dwell_s=0.2,
                    duration_s=1.0 if quick else 2.0,
                )
                loadgen_report = run_profile(
                    gw.submit, profile, payload, seed=0
                )

    base = saturation[str(shard_counts[0])]["throughput_rps"]
    peak = saturation[str(max(shard_counts))]["throughput_rps"]
    ratio = peak / base
    return {
        "service_seconds_per_batch": GATEWAY_SERVICE_S,
        "max_batch_size": GATEWAY_BATCH,
        "workers_per_shard": GATEWAY_WORKERS,
        "shard_counts": shard_counts,
        "saturation": saturation,
        "speedup": ratio,
        "target": GATEWAY_TARGET,
        "target_met": ratio >= GATEWAY_TARGET,
        "loadgen": loadgen_report,
    }


def _run_live(session, requests, clients, config, scrape: bool) -> dict:
    """One micro-batched pass with a live telemetry plane attached.

    ``scrape=True`` also runs the HTTP exposition server with a poller
    thread hammering ``/metrics`` every ~50ms — the cost a production
    Prometheus scraper (far less frequent) can never exceed.
    """
    from urllib.request import urlopen

    from repro import obs as _obs
    from repro.obs import TelemetryPlane

    _obs.disable()  # fresh recorder per phase: clean windows, fair cost
    plane = TelemetryPlane().install()
    batcher = plane.attach(session.serve(config))
    stop = threading.Event()
    scrapes = [0]
    server = poller = None
    if scrape:
        server = plane.serve()
        endpoint = server.url + "/metrics"

        def poll() -> None:
            while not stop.is_set():
                try:
                    urlopen(endpoint, timeout=5).read()
                    scrapes[0] += 1
                except Exception:  # noqa: BLE001 - keep polling
                    pass
                stop.wait(0.05)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
    try:
        _, elapsed = _drive_concurrent(batcher, requests, clients)
        sample = plane.sample()
    finally:
        stop.set()
        if poller is not None:
            poller.join()
        if server is not None:
            server.stop()
        batcher.stop()
        _obs.disable()
    latency = plane.recorder.metrics.histogram("serve/latency_ms")
    return {
        "seconds": elapsed,
        "requests_per_second": len(requests) / elapsed,
        "scrapes": scrapes[0],
        "latency_ms": {
            "p50": latency.quantile(0.50),
            "p95": latency.quantile(0.95),
            "p99": latency.quantile(0.99),
            "p999": latency.quantile(0.999),
        },
        "window": {
            key: sample["window"].get(key)
            for key in (
                "p50_ms",
                "p99_ms",
                "requests_per_second",
                "joules_per_request",
                "power_saving_vs_static",
            )
        },
    }


def bench_telemetry(quick: bool) -> dict:
    """Scrape-overhead measurement: live plane unscraped vs scraped.

    The full run uses a longer request stream than the speedup section:
    a scrape's cost only means anything relative to a workload at least
    a few scrape intervals long (quick mode's number is smoke only).
    """
    requests_count = 64 if quick else 2048
    clients = 2 if quick else 4
    tile = 16

    session = compile_session(SessionConfig(network=BENCH_NETWORK, tile=tile))
    from repro.zoo import get_dataset

    images = get_dataset().test.images
    requests = [images[i % len(images)] for i in range(requests_count)]
    session.infer(requests[0])

    config = BatcherConfig(
        max_batch_size=64,
        max_delay_ms=2.0,
        max_queue_depth=max(64, requests_count),
        workers=2,
    )
    repeats = 1 if quick else 3
    unscraped = scraped = None
    for _ in range(repeats):
        candidate = _run_live(session, requests, clients, config, False)
        if unscraped is None or candidate["seconds"] < unscraped["seconds"]:
            unscraped = candidate
    for _ in range(repeats):
        candidate = _run_live(session, requests, clients, config, True)
        if scraped is None or candidate["seconds"] < scraped["seconds"]:
            scraped = candidate

    overhead = 1.0 - (
        scraped["requests_per_second"] / unscraped["requests_per_second"]
    )
    return {
        "requests": requests_count,
        "clients": clients,
        "unscraped": unscraped,
        "scraped": scraped,
        "scrape_overhead": overhead,
        "scrape_overhead_target": SCRAPE_OVERHEAD_TARGET,
        "scrape_overhead_met": overhead <= SCRAPE_OVERHEAD_TARGET,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="32 requests, 2 clients, single timing run (CI smoke check)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    print(f"== Micro-batched serving ({BENCH_NETWORK}) ==")
    result = bench_serve(args.quick)
    print(
        f"  one-at-a-time {result['sequential_requests_per_second']:.0f} "
        f"req/s  micro-batched {result['batched_requests_per_second']:.0f} "
        f"req/s  speedup {result['speedup']:.1f}x "
        f"(target >={result['target']:.0f}x)"
    )
    print(
        f"  bit-identical: {result['bit_identical']}  "
        f"mean batch {result['batcher_stats']['mean_batch_size']:.1f}  "
        f"untiled serial rate {result['untiled_single_sample_rate']:.0f} req/s"
    )

    print("== Sharded gateway saturation scaling ==")
    gateway = bench_gateway(args.quick)
    shards_line = "  ".join(
        f"{n} shard(s) "
        f"{gateway['saturation'][str(n)]['throughput_rps']:.0f} req/s"
        for n in gateway["shard_counts"]
    )
    print(f"  {shards_line}")
    print(
        f"  scaling {gateway['speedup']:.2f}x "
        f"(target >={gateway['target']:.0f}x)"
    )
    loadgen = gateway["loadgen"]
    print(
        f"  bursty loadgen: offered {loadgen['offered_rate_rps']:.0f} req/s "
        f"p50 {loadgen['p50_ms']:.1f}ms p99 {loadgen['p99_ms']:.1f}ms "
        f"rejected {loadgen['rejected']}"
    )

    print("== Telemetry plane scrape overhead ==")
    telemetry = bench_telemetry(args.quick)
    print(
        f"  unscraped {telemetry['unscraped']['requests_per_second']:.0f} "
        f"req/s  scraped {telemetry['scraped']['requests_per_second']:.0f} "
        f"req/s ({telemetry['scraped']['scrapes']} scrapes)  overhead "
        f"{100 * telemetry['scrape_overhead']:.2f}% "
        f"(target <={100 * telemetry['scrape_overhead_target']:.0f}%)"
    )
    window = telemetry["scraped"]["window"]
    quantiles = telemetry["scraped"]["latency_ms"]
    joules = window["joules_per_request"]
    print(
        f"  windowed p50 {quantiles['p50']:.2f}ms  p99 "
        f"{quantiles['p99']:.2f}ms  "
        + (
            f"energy {joules:.3e} J/req"
            if joules is not None
            else "energy n/a"
        )
    )

    report = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "manifest": obs.run_manifest(bench="serve"),
        "serving": result,
        "gateway": gateway,
        "telemetry": telemetry,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    # Quick mode is a smoke check (tiny workloads distort ratios); the
    # full run enforces the targets.
    if not args.quick and not result["target_met"]:
        print("serving speedup target NOT met", file=sys.stderr)
        return 1
    if not args.quick and not gateway["target_met"]:
        print("gateway saturation scaling target NOT met", file=sys.stderr)
        return 1
    if not args.quick and not telemetry["scrape_overhead_met"]:
        print("telemetry scrape overhead target NOT met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
