"""Tests for the generic (arbitrary-network) mapping path."""

import numpy as np
import pytest

from repro.arch import (
    evaluate_network_design,
    geometries_from_network,
    network_layer_geometries,
)
from repro.configs import build_network
from repro.errors import ConfigurationError
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

from tests.conftest import build_tiny_network


class TestGeometriesFromNetwork:
    def test_matches_spec_path_for_table2_networks(self):
        """The generic walker agrees with the hand-derived Table 2 path."""
        for name in ("network1", "network2", "network3"):
            net = build_network(name)
            generic = geometries_from_network(net)
            spec_based = network_layer_geometries(name)
            assert len(generic) == len(spec_based)
            for g, s in zip(generic, spec_based):
                assert (g.rows, g.cols, g.positions) == (
                    s.rows,
                    s.cols,
                    s.positions,
                ), name
                assert g.is_input == s.is_input
                assert g.is_final == s.is_final

    def test_tiny_network(self):
        geos = geometries_from_network(build_tiny_network())
        assert [(g.rows, g.cols, g.positions) for g in geos] == [
            (25, 4, 576),
            (100, 8, 64),
            (128, 10, 1),
        ]

    def test_deeper_network(self, rng):
        """A 6-layer VGG-ish stack maps without special cases."""
        net = Sequential(
            [
                Conv2D(1, 8, 3, rng=rng),
                ReLU(),
                Conv2D(8, 8, 3, rng=rng),
                ReLU(),
                MaxPool2D(2),
                Conv2D(8, 16, 3, rng=rng),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(16 * 25, 32, rng=rng),
                ReLU(),
                Dense(32, 10, rng=rng),
            ],
            (1, 28, 28),
        )
        geos = geometries_from_network(net)
        assert len(geos) == 5
        assert geos[0].is_input and geos[-1].is_final
        assert not geos[1].is_input and not geos[3].is_final
        # Second conv: 26x26 -> 24x24 positions, 8*9 rows.
        assert geos[1].rows == 72 and geos[1].positions == 576

    def test_rejects_non_sequential(self):
        with pytest.raises(ConfigurationError):
            geometries_from_network("network1")

    def test_rejects_weightless_network(self, rng):
        net = Sequential([Flatten()], (1, 4, 4))
        with pytest.raises(ConfigurationError):
            geometries_from_network(net)

    def test_input_pixels_follow_input_shape(self, rng):
        net = Sequential(
            [Flatten(), Dense(8 * 8, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng)],
            (1, 8, 8),
        )
        geos = geometries_from_network(net)
        assert geos[0].input_pixels == 64


class TestEvaluateNetworkDesign:
    def test_matches_spec_evaluation(self):
        """Generic costing of a Table 2 network equals the spec path."""
        from repro.arch import evaluate_design

        net = build_network("network2")
        generic = evaluate_network_design(net, "sei")
        spec = evaluate_design("network2", "sei")
        assert generic.energy_uj_per_picture == pytest.approx(
            spec.energy_uj_per_picture
        )
        assert generic.area_mm2 == pytest.approx(spec.area_mm2)

    def test_orderings_hold_for_custom_network(self):
        net = build_tiny_network()
        energies = {
            s: evaluate_network_design(net, s).energy_uj_per_picture
            for s in ("dac_adc", "onebit_adc", "sei")
        }
        assert energies["sei"] < energies["onebit_adc"] < energies["dac_adc"]

    def test_gops_uses_own_macs(self):
        net = build_tiny_network()
        ev = evaluate_network_design(net, "sei")
        expected_macs = 576 * 25 * 4 + 64 * 100 * 8 + 128 * 10
        assert ev.total_macs == expected_macs
        assert ev.gops_per_joule() > 0
