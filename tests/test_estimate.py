"""Unit and integration tests for the runtime activation estimator.

The estimator's contract has two halves: a *soundness* half (the suffix
bound tables and fire bands really do bracket every reachable final sum,
so ``mode='exact'`` decisions match the off-mode arithmetic bit for bit)
and a *plumbing* half (engines that cannot honour the contract reject
the policy, and the skipped work flows into the metrics the power model
prices).  Both halves are pinned here against brute-force oracles on
randomized small matrices plus the tiny compiled network.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.engines import EngineSpec, compile_network
from repro.core.estimate import (
    ColumnEstimator,
    EstimatorPolicy,
    PackedSuffixBounds,
    SkipStats,
    _suffix_bound_table,
    packed_fire_band,
)
from repro.core.hardware_network import HardwareConfig
from repro.errors import ConfigurationError
from repro.hw.array import TemporalConfig
from repro.hw.device import RRAMDevice


class TestEstimatorPolicy:
    def test_defaults_are_off(self):
        policy = EstimatorPolicy()
        assert policy.mode == "off"
        assert not policy.enabled
        assert not policy.exact

    def test_mode_properties(self):
        assert EstimatorPolicy(mode="exact").exact
        assert EstimatorPolicy(mode="exact").enabled
        threshold = EstimatorPolicy(mode="threshold", confidence=0.8)
        assert threshold.enabled and not threshold.exact

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            EstimatorPolicy(mode="sometimes")

    @pytest.mark.parametrize("confidence", [0.0, -0.2, 1.5])
    def test_rejects_confidence_outside_unit_interval(self, confidence):
        with pytest.raises(ConfigurationError, match="confidence"):
            EstimatorPolicy(mode="threshold", confidence=confidence)

    @pytest.mark.parametrize(
        "kwargs",
        [{"chunk_rows": 0}, {"group_check": 0}, {"max_k": -1}],
    )
    def test_rejects_degenerate_knobs(self, kwargs):
        with pytest.raises(ConfigurationError, match=">= 1"):
            EstimatorPolicy(**kwargs)


class TestSkipStats:
    def test_merge_accumulates(self):
        a = SkipStats(1, 2, 3, 4)
        a.merge(SkipStats(10, 20, 30, 40))
        assert (
            a.skipped_rows,
            a.skipped_slots,
            a.est_positions,
            a.est_decided,
        ) == (11, 22, 33, 44)


class TestSuffixBoundTable:
    """Row ``k`` of the table is extreme over every k-row subset."""

    @pytest.mark.parametrize("sign", [-1.0, 1.0])
    def test_bounds_every_subset(self, rng, sign):
        parts = sign * np.abs(rng.normal(size=(9, 4)))
        cap = 6
        table = _suffix_bound_table(parts, cap)
        assert table.shape == (cap + 1, 4)
        np.testing.assert_array_equal(table[0], 0.0)
        for _ in range(50):
            k = int(rng.integers(0, parts.shape[0] + 1))
            subset = rng.choice(parts.shape[0], size=k, replace=False)
            total = parts[subset].sum(axis=0)
            bound = table[min(k, cap)]
            if sign < 0:
                assert np.all(bound <= total + 1e-12)
            else:
                assert np.all(bound >= total - 1e-12)

    def test_tail_rows_hold_full_sum(self, rng):
        parts = np.abs(rng.normal(size=(3, 2)))
        table = _suffix_bound_table(parts, 8)
        full = parts.sum(axis=0)
        for k in range(3, 9):
            np.testing.assert_allclose(table[k], full)

    def test_empty_suffix_is_zero(self):
        table = _suffix_bound_table(np.zeros((0, 3)), 4)
        np.testing.assert_array_equal(table, 0.0)


class TestColumnEstimator:
    def _case(self, rng, rows=48, cols=6, n=32, density=0.35):
        weights = rng.normal(size=(rows, cols)) / np.sqrt(rows)
        bits = (rng.random((n, rows)) < density).astype(np.float64)
        thresholds = rng.normal(scale=0.3, size=cols)
        return weights, bits, thresholds

    def test_exact_decisions_match_brute_force(self, rng):
        weights, bits, thresholds = self._case(rng)
        policy = EstimatorPolicy(mode="exact", chunk_rows=8)
        est = ColumnEstimator(weights, policy)
        out, ambiguous, stats = est.decide(bits, thresholds)
        reference = (bits @ weights > thresholds).astype(np.float64)
        settled = ~ambiguous
        assert settled.any()
        np.testing.assert_array_equal(out[settled], reference[settled])
        assert stats.est_positions == bits.shape[0] * weights.shape[1]
        assert 0 <= stats.est_decided <= stats.est_positions
        assert stats.skipped_rows >= 0
        assert stats.skipped_slots >= 0

    def test_exact_skips_on_sparse_inputs(self, rng):
        # The paper's upper-layer regime: ~5% activity, so suffix
        # activity counts collapse fast and most rows retire early.
        weights, _, _ = self._case(rng, rows=128, cols=4)
        bits = (rng.random((24, 128)) < 0.05).astype(np.float64)
        policy = EstimatorPolicy(mode="exact", chunk_rows=16)
        out, ambiguous, stats = ColumnEstimator(weights, policy).decide(
            bits, np.full(4, 0.5)
        )
        assert stats.skipped_slots > 0
        assert stats.est_decided > 0

    def test_per_sample_thresholds(self, rng):
        weights, bits, _ = self._case(rng, n=16)
        thr = rng.normal(scale=0.3, size=(16, weights.shape[1]))
        est = ColumnEstimator(weights, EstimatorPolicy(mode="exact"))
        out, ambiguous, _ = est.decide(bits, thr)
        reference = (bits @ weights > thr).astype(np.float64)
        settled = ~ambiguous
        np.testing.assert_array_equal(out[settled], reference[settled])

    def test_care_mask_frees_positions(self, rng):
        # A position whose undecidable column is masked out retires as
        # soon as its remaining columns settle; masked output stays 0.
        weights, bits, thresholds = self._case(rng)
        est = ColumnEstimator(weights, EstimatorPolicy(mode="exact"))
        care = np.ones((bits.shape[0], weights.shape[1]), dtype=bool)
        care[:, 0] = False
        out, _, stats = est.decide(bits, thresholds, care=care)
        np.testing.assert_array_equal(out[:, 0], 0.0)
        full_stats = est.decide(bits, thresholds)[2]
        assert stats.est_positions < full_stats.est_positions
        assert stats.skipped_slots >= full_stats.skipped_slots

    def test_threshold_mode_never_ambiguous(self, rng):
        weights, bits, thresholds = self._case(rng)
        est = ColumnEstimator(
            weights, EstimatorPolicy(mode="threshold", confidence=0.7)
        )
        out, ambiguous, _ = est.decide(bits, thresholds)
        assert not ambiguous.any()
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_threshold_mode_with_per_sample_thresholds(self, rng):
        # Regression: the zero margin is (1, cols) and must broadcast to
        # the batch even when the thresholds are already per-sample
        # (the split path's dynamic block thresholds), or retiring a
        # position mis-indexes the margin array.
        weights, bits, _ = self._case(rng, rows=96, n=48, density=0.1)
        thr = rng.normal(scale=0.3, size=(48, weights.shape[1]))
        est = ColumnEstimator(
            weights,
            EstimatorPolicy(mode="threshold", confidence=0.3, chunk_rows=32),
        )
        out, ambiguous, stats = est.decide(bits, thr)
        assert not ambiguous.any()
        assert stats.skipped_slots > 0

    def test_threshold_skipping_monotone_in_confidence(self, rng):
        # Shrinking the interval by ``confidence`` can only move each
        # decision earlier, so skipped work is monotone as confidence
        # drops -- the invariant the campaign sweep leans on.
        weights, bits, thresholds = self._case(rng, rows=96, n=64)
        skipped = []
        for confidence in (1.0, 0.8, 0.5, 0.25):
            policy = EstimatorPolicy(
                mode="threshold", confidence=confidence, chunk_rows=8
            )
            stats = ColumnEstimator(weights, policy).decide(
                bits, thresholds
            )[2]
            skipped.append(stats.skipped_slots)
        assert skipped == sorted(skipped)

    def test_rejects_non_2d_weights(self):
        with pytest.raises(ConfigurationError, match="2D"):
            ColumnEstimator(np.zeros(8), EstimatorPolicy(mode="exact"))

    def test_empty_batch(self, rng):
        weights, _, thresholds = self._case(rng)
        est = ColumnEstimator(weights, EstimatorPolicy(mode="exact"))
        out, ambiguous, stats = est.decide(
            np.zeros((0, weights.shape[0])), thresholds
        )
        assert out.shape == (0, weights.shape[1])
        assert stats.est_positions == 0


class TestPackedSuffixBounds:
    def test_bounds_bracket_every_pattern(self, rng):
        rows = rng.integers(-200, 201, size=(48, 5)).astype(np.int64)
        policy = EstimatorPolicy(mode="exact", group_check=2, max_k=16)
        bounds = PackedSuffixBounds(rows, policy)
        assert bounds.boundaries == [2, 4]
        for g in bounds.boundaries:
            suffix = rows[8 * g :]
            for _ in range(40):
                mask = rng.random(suffix.shape[0]) < 0.3
                remaining = suffix[mask].sum(axis=0)
                k = np.array([int(mask.sum())])
                lo, hi = bounds.bounds_at(g, k)
                assert np.all(lo[0] <= remaining)
                assert np.all(remaining <= hi[0])

    def test_confidence_tightens_toward_zero(self, rng):
        rows = rng.integers(-200, 201, size=(32, 4)).astype(np.int64)
        exact = PackedSuffixBounds(rows, EstimatorPolicy(mode="exact"))
        scaled = PackedSuffixBounds(
            rows, EstimatorPolicy(mode="threshold", confidence=0.6)
        )
        for g in exact.boundaries:
            kk = np.arange(8)
            lo_e, hi_e = exact.bounds_at(g, kk)
            lo_s, hi_s = scaled.bounds_at(g, kk)
            assert np.all(lo_s >= lo_e)
            assert np.all(hi_s <= hi_e)

    def test_rejects_ragged_rows(self):
        policy = EstimatorPolicy(mode="exact")
        with pytest.raises(ConfigurationError, match="8\\*groups"):
            PackedSuffixBounds(np.zeros((12, 3), dtype=np.int64), policy)


class TestPackedFireBand:
    def test_band_is_sound_against_float_comparison(self, rng):
        # Any accumulator at/above fire_hi fires the off-mode float64
        # comparison; any at/below kill_lo does not.  The inside of the
        # band is the only place a replay is ever needed.
        for _ in range(30):
            unit = float(rng.uniform(0.001, 0.1))
            threshold = float(rng.uniform(0.0, 1.0))
            bias = rng.normal(scale=0.5, size=6)
            fire_hi, kill_lo = packed_fire_band(
                threshold, bias, unit, acc_bound=500
            )
            accs = np.arange(-500, 501, dtype=np.int64)
            fired = unit * accs[:, None] + bias[None, :] > threshold
            above = accs[:, None] >= fire_hi[None, :]
            below = accs[:, None] <= kill_lo[None, :]
            assert np.all(fired[above])
            assert not np.any(fired[below])

    def test_band_width_is_finite(self):
        fire_hi, kill_lo = packed_fire_band(
            0.5, np.zeros(3), 0.01, acc_bound=100
        )
        assert np.all(fire_hi > kill_lo)
        assert np.all(np.abs(fire_hi) <= 108)
        assert np.all(np.abs(kill_lo) <= 108)


class TestEngineGates:
    """Engines that cannot honour the contract must reject the policy."""

    def _spec(self, engine, mode="exact", **hw):
        return EngineSpec(
            name=engine,
            hardware=HardwareConfig(device=RRAMDevice(bits=4), **hw),
            estimator=EstimatorPolicy(mode=mode),
        )

    def test_adc_engine_rejects_estimator(self, tiny_quantized):
        with pytest.raises(ConfigurationError, match="estimator"):
            compile_network(
                tiny_quantized.network,
                tiny_quantized.thresholds,
                self._spec("adc"),
            )

    def test_reference_engine_rejects_estimator(self, tiny_quantized):
        with pytest.raises(ConfigurationError, match="estimator-free"):
            compile_network(
                tiny_quantized.network,
                tiny_quantized.thresholds,
                self._spec("reference"),
            )

    def test_temporal_aging_rejects_estimator(self, tiny_quantized):
        spec = self._spec(
            "fused", temporal=TemporalConfig(drift_nu=0.05, seed=3)
        )
        with pytest.raises(ConfigurationError, match="temporal"):
            compile_network(
                tiny_quantized.network, tiny_quantized.thresholds, spec
            )


class TestCompiledNetworkIdentity:
    """``mode='exact'`` is bit-identical to ``off`` end to end."""

    def _predict(
        self, engine, tiny_quantized, images, mode, chunk_rows=32,
        confidence=1.0, **hw
    ):
        spec = EngineSpec(
            name=engine,
            hardware=HardwareConfig(device=RRAMDevice(bits=4), **hw),
            estimator=EstimatorPolicy(
                mode=mode, chunk_rows=chunk_rows, confidence=confidence
            ),
        )
        compiled = compile_network(
            tiny_quantized.network, tiny_quantized.thresholds, spec
        )
        return compiled.predict(images)

    @pytest.mark.parametrize("engine", ["fused", "packed"])
    def test_exact_matches_off_unsplit(
        self, engine, tiny_quantized, tiny_dataset
    ):
        images = tiny_dataset["test_x"][:24]
        off = self._predict(engine, tiny_quantized, images, "off")
        exact = self._predict(engine, tiny_quantized, images, "exact")
        np.testing.assert_array_equal(off, exact)

    @pytest.mark.parametrize("engine", ["fused", "packed"])
    def test_exact_matches_off_split(
        self, engine, tiny_quantized, tiny_dataset
    ):
        images = tiny_dataset["test_x"][:24]
        off = self._predict(
            engine, tiny_quantized, images, "off", max_crossbar_size=128
        )
        exact = self._predict(
            engine, tiny_quantized, images, "exact", max_crossbar_size=128
        )
        np.testing.assert_array_equal(off, exact)

    def test_skip_counters_reach_metrics(self, tiny_quantized, tiny_dataset):
        images = tiny_dataset["test_x"][:24]
        with obs.recording() as rec:
            self._predict(
                "fused",
                tiny_quantized,
                images,
                "exact",
                chunk_rows=8,
                max_crossbar_size=128,
            )
        counters = rec.metrics.as_dict()["counters"]
        positions = sum(
            value
            for key, value in counters.items()
            if key.endswith("/est_positions")
        )
        decided = sum(
            value
            for key, value in counters.items()
            if key.endswith("/est_decided")
        )
        assert positions > 0
        assert 0 < decided <= positions
        assert (
            sum(
                value
                for key, value in counters.items()
                if key.endswith("/skipped_slots")
            )
            > 0
        )

    @pytest.mark.parametrize("hw", [{}, {"max_crossbar_size": 128}])
    def test_threshold_disagreement_grows_from_zero(
        self, hw, tiny_quantized, tiny_dataset
    ):
        # Full-confidence threshold mode keeps the entire interval, so
        # its decisions match ``off`` on every sample (on both the
        # unsplit and the split per-sample-threshold paths); shrinking
        # the confidence can only add disagreement.
        images = tiny_dataset["test_x"][:40]
        off = self._predict("fused", tiny_quantized, images, "off", **hw)
        rates = []
        for confidence in (1.0, 0.8):
            loose = self._predict(
                "fused",
                tiny_quantized,
                images,
                "threshold",
                chunk_rows=8,
                confidence=confidence,
                **hw,
            )
            rates.append(float((off != loose).mean()))
        assert rates[0] == 0.0
        assert rates[1] >= rates[0]
