"""Parallel, resumable study execution.

:func:`run_study` walks a study's candidate list, skips the candidates
whose evaluations already sit in the run store, and fans the rest out:

* ``workers=1`` evaluates inline — simplest, fully deterministic, and
  what a single-core machine should use;
* ``workers>1`` uses a :class:`concurrent.futures.ProcessPoolExecutor`.
  The parent *prewarms* the shared model pipeline first (training +
  Algorithm 1 run once, see :func:`repro.dse.evaluate.prewarm`), so
  forked workers inherit the warm zoo registry and spawned workers hit
  the digest-keyed disk cache.

Fault model — an exploration must survive its candidates:

* a worker raising a Python exception produces a ``status="failed"``
  record (with the exception text) and the run continues;
* a worker *dying* (OOM kill, hard crash) breaks the pool; a broken
  pool cannot say which task killed it, so every crashed-or-unfinished
  candidate is retried once in its own single-task pool — the one that
  breaks *that* pool is recorded as crashed, its innocent neighbours
  complete normally, and one poisonous candidate cannot wedge the
  study;
* a candidate exceeding ``study.timeout_s`` is recorded as failed and
  its pool is abandoned (``shutdown(wait=False)``) — the stuck worker
  is orphaned rather than waited on.

Only the parent appends to the store, so records.jsonl has a single
writer regardless of worker count.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro import obs
from repro.errors import ConfigurationError

from repro.dse.evaluate import evaluate_candidate, prewarm
from repro.dse.store import RunStore
from repro.dse.study import Candidate, Study

__all__ = ["run_study", "StudyResult"]

logger = obs.get_logger("dse.runner")


@dataclass
class StudyResult:
    """Outcome of one :func:`run_study` call."""

    study: Study
    store: RunStore
    #: Candidate digests completed before this call (resume skips).
    skipped: int
    #: Candidates evaluated by this call (ok + failed).
    evaluated: int
    failed: int
    #: All successful rows (resumed + fresh), in candidate order.
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Failure records from this store, in candidate order.
    failures: List[Dict[str, Any]] = field(default_factory=list)


def _row(candidate: Candidate, metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Flat result row: config keys + metric keys + provenance."""
    row = dict(candidate.config)
    row.update(metrics)
    row["candidate"] = candidate.index
    row["digest"] = candidate.digest
    return row


def _ok_record(
    candidate: Candidate, metrics: Dict[str, Any], duration_s: float
) -> Dict[str, Any]:
    return {
        "status": "ok",
        "digest": candidate.digest,
        "candidate": candidate.index,
        "config": candidate.config,
        "metrics": metrics,
        "duration_s": duration_s,
    }


def _failed_record(
    candidate: Candidate, error: str, attempts: int
) -> Dict[str, Any]:
    return {
        "status": "failed",
        "digest": candidate.digest,
        "candidate": candidate.index,
        "config": candidate.config,
        "error": error,
        "attempts": attempts,
    }


def _worker_init() -> None:
    """Reset per-process session state in a fresh pool worker.

    Forked workers inherit the parent's compiled-session registry —
    including noisy-engine RNG state the parent already consumed — which
    would make pooled results diverge from an inline run of the same
    study.  Dropping the sessions (but keeping the warm zoo models,
    which carry no evaluation state) makes every candidate's session
    compile fresh in whichever process evaluates it, so inline and
    pooled runs score identically.
    """
    from repro.serve.session import clear_sessions

    clear_sessions()


def _evaluate_in_worker(
    study: Study, candidate: Candidate
) -> Dict[str, Any]:
    """Worker-side wrapper: Python exceptions become failure payloads.

    Returning (rather than raising) keeps exception classes that do not
    pickle cleanly from poisoning the pool channel.
    """
    start = time.perf_counter()
    try:
        metrics = evaluate_candidate(study, candidate)
        return {
            "ok": True,
            "metrics": metrics,
            "duration_s": time.perf_counter() - start,
        }
    except Exception as exc:  # noqa: BLE001 - worker boundary
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def _run_inline(
    study: Study, store: RunStore, pending: List[Candidate]
) -> None:
    for candidate in pending:
        outcome = _evaluate_in_worker(study, candidate)
        if outcome["ok"]:
            store.append(
                _ok_record(
                    candidate, outcome["metrics"], outcome["duration_s"]
                )
            )
        else:
            logger.warning(
                "candidate %d failed: %s", candidate.index, outcome["error"]
            )
            store.append(_failed_record(candidate, outcome["error"], 1))


def _run_isolated(
    study: Study, store: RunStore, candidate: Candidate, attempt: int
) -> None:
    """Retry one pool-break survivor in its own single-task pool.

    A broken shared pool cannot say *which* worker death killed it, so
    survivors are retried one per throwaway pool: if the pool with only
    this candidate breaks, the blame is exact ("worker crashed"); an
    innocent neighbour of a poisonous candidate completes normally.
    """
    executor = ProcessPoolExecutor(max_workers=1, initializer=_worker_init)
    abandon = False
    try:
        future = executor.submit(_evaluate_in_worker, study, candidate)
        timeout = study.timeout_s if study.timeout_s > 0 else None
        done, _ = wait({future}, timeout=timeout)
        if not done:
            logger.warning(
                "candidate %d timed out after %.1fs (isolated retry)",
                candidate.index,
                study.timeout_s,
            )
            store.append(
                _failed_record(
                    candidate, f"timeout after {study.timeout_s}s", attempt
                )
            )
            abandon = True
            return
        try:
            outcome = future.result()
        except BrokenProcessPool:
            logger.warning(
                "candidate %d crashed its worker", candidate.index
            )
            store.append(
                _failed_record(candidate, "worker crashed", attempt)
            )
            abandon = True
            return
        if outcome["ok"]:
            store.append(
                _ok_record(
                    candidate, outcome["metrics"], outcome["duration_s"]
                )
            )
        else:
            logger.warning(
                "candidate %d failed: %s", candidate.index, outcome["error"]
            )
            store.append(
                _failed_record(candidate, outcome["error"], attempt)
            )
    finally:
        executor.shutdown(wait=not abandon, cancel_futures=abandon)


def _run_pool(
    study: Study, store: RunStore, pending: List[Candidate], workers: int
) -> None:
    queue = _run_pool_once(study, store, pending, workers)
    for candidate, attempt in queue:
        _run_isolated(study, store, candidate, attempt)


def _run_pool_once(
    study: Study, store: RunStore, pending: List[Candidate], workers: int
) -> List[tuple]:
    """One shared-pool pass; returns the candidates needing isolation."""
    queue: List[tuple] = []
    executor = ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init
    )
    futures = {
        executor.submit(_evaluate_in_worker, study, candidate): (
            candidate,
            1,
        )
        for candidate in pending
    }
    abandon = False
    try:
        remaining = set(futures)
        while remaining:
            timeout = study.timeout_s if study.timeout_s > 0 else None
            done, remaining = wait(
                remaining, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Timeout: every still-running candidate is marked
                # failed and the pool (with its stuck workers) is
                # abandoned rather than joined.
                for future in remaining:
                    candidate, attempt = futures[future]
                    logger.warning(
                        "candidate %d timed out after %.1fs",
                        candidate.index,
                        study.timeout_s,
                    )
                    store.append(
                        _failed_record(
                            candidate,
                            f"timeout after {study.timeout_s}s",
                            attempt,
                        )
                    )
                abandon = True
                remaining = set()
                break
            broken: List[tuple] = []
            for future in done:
                candidate, attempt = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    broken.append((candidate, attempt))
                    continue
                if outcome["ok"]:
                    store.append(
                        _ok_record(
                            candidate,
                            outcome["metrics"],
                            outcome["duration_s"],
                        )
                    )
                else:
                    logger.warning(
                        "candidate %d failed: %s",
                        candidate.index,
                        outcome["error"],
                    )
                    store.append(
                        _failed_record(candidate, outcome["error"], attempt)
                    )
            if broken:
                # The pool is dead: the crashed and unfinished candidates
                # move to isolated single-task retries (attempt 2), where
                # a further crash blames exactly one candidate.
                survivors = broken + [futures[f] for f in remaining]
                queue = [(cand, att + 1) for cand, att in survivors]
                logger.warning(
                    "worker pool broke; retrying %d candidate(s) isolated",
                    len(queue),
                )
                abandon = True
                remaining = set()
    finally:
        executor.shutdown(wait=not abandon, cancel_futures=abandon)
    return queue


def run_study(
    study: Study,
    workers: int = 1,
    store_root: Optional[Path] = None,
    limit: int = 0,
) -> StudyResult:
    """Run (or resume) a study and return its accumulated results.

    Parameters
    ----------
    study:
        The study definition; its digest selects the run store, so the
        same definition always resumes its own records.
    workers:
        Worker processes; 1 evaluates inline in this process.
    store_root:
        Run-store root directory (default ``.cache/dse``).
    limit:
        Evaluate only the first ``limit`` candidates (0 = all) — the
        CI/smoke knob.  The store is shared with the unlimited run, so
        a smoke pass warms the full study.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    store = RunStore.for_study(study, root=store_root)
    store.ensure_manifest(study)

    candidates = study.candidates(limit=limit)
    completed = store.completed()
    pending = [c for c in candidates if c.digest not in completed]
    skipped = len(candidates) - len(pending)
    logger.info(
        "study %s: %d candidate(s), %d already complete, %d to evaluate "
        "(%d worker(s))",
        study.name,
        len(candidates),
        skipped,
        len(pending),
        workers,
    )

    if pending:
        if workers == 1:
            _run_inline(study, store, pending)
        else:
            # Shared pipeline prefixes are materialised in the parent so
            # no worker retrains what another would also need.
            prewarm(study, pending)
            _run_pool(study, store, pending, workers)

    completed = store.completed()
    by_digest = {c.digest: c for c in candidates}
    rows = [
        _row(by_digest[digest], record["metrics"])
        for digest, record in sorted(
            completed.items(),
            key=lambda item: item[1]["candidate"],
        )
        if digest in by_digest
    ]
    failures = sorted(
        (
            r
            for r in store.load()
            if r.get("status") == "failed"
            and r.get("digest") not in completed
            and r.get("digest") in by_digest
        ),
        key=lambda r: r.get("candidate", 0),
    )
    # Latest failure per digest (a retried-then-failed candidate appears
    # once, with its final error).
    last_failure: Dict[str, Dict[str, Any]] = {}
    for record in failures:
        last_failure[record["digest"]] = record
    failures = sorted(
        last_failure.values(), key=lambda r: r.get("candidate", 0)
    )

    evaluated = len(pending)
    return StudyResult(
        study=study,
        store=store,
        skipped=skipped,
        evaluated=evaluated,
        failed=len(failures),
        rows=rows,
        failures=failures,
    )
