"""Pure-numpy CNN substrate: layers, networks, losses, optimisers, training.

This subpackage implements the convolutional-network machinery the paper's
experiments run on (Conv / ReLU / MaxPool / FC layers with full forward and
backward passes), built from scratch on numpy.
"""

from repro.nn.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU
from repro.nn.losses import accuracy, error_rate, softmax, softmax_cross_entropy
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.training import TrainConfig, Trainer, TrainHistory, evaluate_accuracy

__all__ = [
    "Layer",
    "Conv2D",
    "Dense",
    "Flatten",
    "MaxPool2D",
    "ReLU",
    "Sequential",
    "softmax",
    "softmax_cross_entropy",
    "accuracy",
    "error_rate",
    "Optimizer",
    "SGD",
    "Adam",
    "TrainConfig",
    "TrainHistory",
    "Trainer",
    "evaluate_accuracy",
]
