"""CNN -> SNN conversion on top of the SEI structure (§6 future work).

A rate-coded spiking network is the natural tenant of SEI hardware: every
signal between layers is a 1-bit spike, i.e. exactly the selection signal
the SEI decoder expects, and the sense amplifier + integration capacitor
realise the integrate-and-fire neuron.

The conversion follows the standard rate-coding recipe applied to the
already re-scaled network from Algorithm 1:

* input pixels become spike trains (:mod:`repro.snn.encoding`);
* each weighted layer's crossbar current feeds an integrate-and-fire
  array whose firing threshold is the layer's Algorithm-1 threshold
  scaled by ``threshold_scale`` (soft reset preserves the rate code);
* max-pooling degenerates to a per-timestep OR, as in §3.1;
* the final classifier integrates its current over all timesteps and the
  argmax of the accumulated potential is the prediction.

Because spiking activity is sparse, an event-driven energy estimate is
also provided: row-drive and cell-read energy scale with the *actual
spike count*, unlike the clocked 1-bit CNN where every position fires
its full crossbar each step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.hw.tech import TechnologyModel
from repro.nn.functional import maxpool2d
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.network import Sequential

from repro.snn.encoding import bernoulli_spikes, deterministic_spikes
from repro.snn.neurons import IntegrateFireState

__all__ = ["SpikingNetwork", "SimulationResult", "estimate_sei_spike_energy"]

_ENCODERS = {
    "bernoulli": bernoulli_spikes,
    "deterministic": lambda images, timesteps, rng=None: deterministic_spikes(
        images, timesteps
    ),
}


@dataclass
class SimulationResult:
    """Outcome of one spiking simulation."""

    #: Accumulated output-layer potential: the classification scores.
    logits: np.ndarray
    timesteps: int
    #: Mean firing rate of each hidden weighted layer (by layer index).
    firing_rates: Dict[int, float]
    #: Total spikes entering each weighted layer per sample (by index).
    input_spike_counts: Dict[int, float]

    def predictions(self) -> np.ndarray:
        return self.logits.argmax(axis=-1)


class SpikingNetwork:
    """A rate-coded spiking version of a quantized CNN."""

    def __init__(
        self,
        network: Sequential,
        thresholds: Dict[int, float],
        threshold_scale: float = 1.0,
        leak: float = 0.0,
        reset: str = "subtract",
        layer_computes: Optional[Dict[int, object]] = None,
    ) -> None:
        """``layer_computes`` optionally replaces a weighted layer's matrix
        product with a hardware model (same ``(layer, x) -> current``
        signature as :class:`repro.core.binarized.BinarizedNetwork`
        hooks) — e.g. :func:`repro.core.sei.sei_layer_compute`, since a
        spike train is exactly the 1-bit selection signal SEI expects."""
        if threshold_scale <= 0:
            raise ConfigurationError(
                f"threshold_scale must be positive, got {threshold_scale}"
            )
        self.network = network
        self.thresholds = dict(thresholds)
        self.threshold_scale = threshold_scale
        self.leak = leak
        self.reset = reset
        self.layer_computes = dict(layer_computes or {})

        weighted = [
            i
            for i, layer in enumerate(network.layers)
            if isinstance(layer, (Conv2D, Dense))
        ]
        if not weighted:
            raise ConfigurationError("network has no weighted layers")
        self._final_index = weighted[-1]
        missing = [
            i for i in weighted[:-1] if i not in self.thresholds
        ]
        if missing:
            raise ConfigurationError(
                f"missing firing thresholds for layers {missing}; run "
                "Algorithm 1 first"
            )

    # -- simulation -------------------------------------------------------
    def simulate(
        self,
        images: np.ndarray,
        timesteps: int,
        encoder: str = "bernoulli",
        rng: Optional[np.random.Generator] = None,
    ) -> SimulationResult:
        """Run the spiking network for ``timesteps`` on a batch of images."""
        if encoder not in _ENCODERS:
            known = ", ".join(sorted(_ENCODERS))
            raise ConfigurationError(
                f"unknown encoder {encoder!r}; known: {known}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        spike_train = _ENCODERS[encoder](images, timesteps, rng=rng)

        states: Dict[int, IntegrateFireState] = {}
        accumulator: Optional[np.ndarray] = None
        spike_totals: Dict[int, float] = {}
        rate_totals: Dict[int, float] = {}

        batch = images.shape[0]
        for t in range(timesteps):
            x = spike_train[t]
            for index, layer in enumerate(self.network.layers):
                if isinstance(layer, (Conv2D, Dense)):
                    spike_totals[index] = spike_totals.get(index, 0.0) + float(
                        x.sum()
                    )
                    compute = self.layer_computes.get(index)
                    current = (
                        compute(layer, x)
                        if compute is not None
                        else layer.forward(x)
                    )
                    if index == self._final_index:
                        if accumulator is None:
                            accumulator = np.zeros_like(current)
                        accumulator += current
                        x = current  # unused past the final layer
                    else:
                        state = states.get(index)
                        if state is None:
                            state = IntegrateFireState(
                                shape=current.shape,
                                threshold=self.thresholds[index]
                                * self.threshold_scale,
                                leak=self.leak,
                                reset=self.reset,
                            )
                            states[index] = state
                        x = state.step(current)
                        rate_totals[index] = float(state.firing_rate.mean())
                elif isinstance(layer, MaxPool2D):
                    x, _ = maxpool2d(x, layer.pool, layer.stride)  # OR
                elif isinstance(layer, (ReLU, Flatten)):
                    x = layer.forward(x)
                else:  # pragma: no cover - no other layer types exist
                    x = layer.forward(x)

        assert accumulator is not None
        return SimulationResult(
            logits=accumulator,
            timesteps=timesteps,
            firing_rates=rate_totals,
            input_spike_counts={
                k: v / batch for k, v in spike_totals.items()
            },
        )

    def error_rate(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        timesteps: int,
        encoder: str = "bernoulli",
        rng: Optional[np.random.Generator] = None,
        batch_size: int = 128,
    ) -> float:
        """Classification error over a dataset."""
        if len(images) != len(labels):
            raise ShapeError("images and labels length mismatch")
        wrong = 0
        for start in range(0, len(images), batch_size):
            batch = images[start : start + batch_size]
            result = self.simulate(batch, timesteps, encoder=encoder, rng=rng)
            wrong += int(
                (result.predictions() != labels[start : start + batch_size]).sum()
            )
        return wrong / len(images)


def estimate_sei_spike_energy(
    network: Sequential,
    result: SimulationResult,
    tech: Optional[TechnologyModel] = None,
) -> Dict[str, float]:
    """Event-driven energy estimate (pJ per picture) of the SNN on SEI.

    Row drives and cell reads are charged per *actual spike* (a silent row
    never connects, thanks to the SEI selection gates); sense-amp
    decisions are charged per column per timestep (the SA is clocked).
    Conv positions multiply the SA count exactly as in the CNN mapping.
    """
    tech = tech if tech is not None else TechnologyModel()
    cells_per_weight = tech.bit_slices * 2

    row_drive_pj = 0.0
    cell_read_pj = 0.0
    sa_pj = 0.0
    for index, layer in enumerate(network.layers):
        if not isinstance(layer, (Conv2D, Dense)):
            continue
        spikes = result.input_spike_counts.get(index, 0.0)
        cols = layer.weight_matrix.shape[1]
        row_drive_pj += spikes * cells_per_weight * tech.row_drive_energy_pj
        cell_read_pj += (
            spikes * cells_per_weight * (cols + 1) * tech.cell_read_energy_pj
        )
        if isinstance(layer, Conv2D):
            # Positions are already folded into the spike counts (spikes
            # are counted on the unfolded feature map per timestep); SA
            # fires once per output element per timestep.
            out_elems = np.prod(layer.output_shape(
                _input_shape_of(network, index)
            ))
        else:
            out_elems = cols
        sa_pj += (
            float(out_elems) * result.timesteps * tech.sense_amp_energy_pj
        )

    total = row_drive_pj + cell_read_pj + sa_pj
    return {
        "driver": row_drive_pj,
        "rram": cell_read_pj,
        "sa": sa_pj,
        "total": total,
    }


def _input_shape_of(network: Sequential, index: int):
    """Input shape (excluding batch) of layer ``index``."""
    if index == 0:
        return network.input_shape
    return network.shape_at(index - 1)
