"""Differential runner: every engine against the reference oracle.

For each :class:`~repro.testing.generators.ConformanceCase` the runner
compiles the case's artefacts through every requested engine via
:func:`repro.core.engines.compile_network`, executes them through
fixed-tile :class:`~repro.serve.session.InferenceSession` waves (the
same path serving traffic takes, so batch-composition invariance is
exercised for free) and compares outputs against the oracle engine
under a per-engine :class:`TolerancePolicy`:

* ``fused`` vs ``reference`` — tight ``allclose`` at
  :data:`SEI_RTOL`/:data:`SEI_ATOL` (the repo's equivalence-suite
  tolerances), including under programming variation and per-read noise
  (the engines consume identical RNG streams by construction; the only
  legitimate daylight is last-ulp float reassociation where the fused
  engine collapses per-slice sums into one GEMM);
* ``adc`` vs ``reference`` — the Table 3/5 *functional equivalence*
  claim: the DAC+ADC baseline quantizes converter outputs, so logits
  differ in the low bits, but classification decisions must agree on
  at least :data:`ADC_MIN_AGREEMENT` of samples.

On failure the runner *minimizes* the counterexample: it isolates the
first failing sample, greedily zeroes input regions (a bounded
ddmin-style pass, re-compiling both engines fresh per probe so noisy
streams stay aligned) and localises the first diverging layer — the
:class:`Counterexample` a CI artifact or a human gets is the smallest
reproduction the budget allows, not a 12-sample batch dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.binarized import BinarizedNetwork
from repro.core.engines import EngineSpec, oracle_engine
from repro.core.hardware_network import HardwareConfig
from repro.errors import ConfigurationError, ConformanceError
from repro.hw.device import RRAMDevice
from repro.serve.session import InferenceSession, SessionConfig
from repro.testing.generators import BuiltCase, ConformanceCase, build_case

__all__ = [
    "ADC_MIN_AGREEMENT",
    "ADC_MIN_AGREEMENT_DEEP",
    "SEI_ATOL",
    "SEI_RTOL",
    "TolerancePolicy",
    "Comparison",
    "Counterexample",
    "CaseResult",
    "DifferentialRunner",
    "case_engine_spec",
    "check_batch_invariance",
    "default_policy",
]

logger = obs.get_logger("testing")

#: Minimum classification-decision agreement the ADC baseline must reach
#: against the reference oracle (its converters re-quantize every column,
#: so logits legitimately differ in the low bits near thresholds).
ADC_MIN_AGREEMENT = 0.75

#: The deep-stack floor: case networks are *untrained*, so their
#: activations sit near the comparator thresholds everywhere, and every
#: ADC-quantization nudge across an intermediate binarization flips
#: bits that compound discretely through depth.  Cases with more than
#: one conv stage therefore get a lower empirical agreement floor
#: (trained zoo networks, whose margins are real, are held to the full
#: Table 5 claim in ``tests/test_integration.py``).
ADC_MIN_AGREEMENT_DEEP = 0.5

#: SEI engine (fused-vs-reference) comparison tolerances — the same
#: numbers the equivalence suite (``tests/test_perf_engine.py``) holds
#: the fused compute engines to.  Not 0.0: the fused engine sums slice
#: contributions in one collapsed GEMM, so split layers reassociate
#: float additions and the analog logits differ in the last ulp.
SEI_RTOL = 1e-9
SEI_ATOL = 1e-12


@dataclass(frozen=True)
class TolerancePolicy:
    """How a candidate engine's outputs are compared with the oracle's.

    ``mode='exact'`` — byte-for-byte equality per sample (the SEI
    engines); ``mode='allclose'`` — numpy ``isclose`` with
    ``atol``/``rtol`` (golden-corpus verification across BLAS builds);
    ``mode='agreement'`` — argmax classification decisions agree on at
    least ``min_agreement`` of samples (noisy / re-quantizing modes).
    """

    mode: str = "exact"
    atol: float = 0.0
    rtol: float = 0.0
    min_agreement: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "allclose", "agreement"):
            raise ConfigurationError(
                "TolerancePolicy mode must be 'exact', 'allclose' or "
                f"'agreement', got {self.mode!r}"
            )
        if not 0.0 < self.min_agreement <= 1.0:
            raise ConfigurationError(
                f"min_agreement must lie in (0, 1], got {self.min_agreement}"
            )

    def compare(
        self, candidate: np.ndarray, oracle: np.ndarray
    ) -> "Comparison":
        candidate = np.asarray(candidate)
        oracle = np.asarray(oracle)
        if candidate.shape != oracle.shape:
            raise ConformanceError(
                f"engine output shape {candidate.shape} does not match the "
                f"oracle's {oracle.shape}"
            )
        diff = np.abs(candidate - oracle)
        max_abs_diff = float(diff.max()) if diff.size else 0.0
        agree = np.argmax(candidate, axis=-1) == np.argmax(oracle, axis=-1)
        agreement = float(agree.mean()) if agree.size else 1.0
        if self.mode == "exact":
            failing = np.flatnonzero(np.any(candidate != oracle, axis=-1))
            ok = failing.size == 0
        elif self.mode == "allclose":
            close = np.isclose(
                candidate, oracle, rtol=self.rtol, atol=self.atol
            )
            failing = np.flatnonzero(~np.all(close, axis=-1))
            ok = failing.size == 0
        else:  # agreement
            failing = np.flatnonzero(~agree)
            ok = agreement >= self.min_agreement
        return Comparison(
            ok=ok,
            failing_indices=failing,
            max_abs_diff=max_abs_diff,
            agreement=agreement,
        )


@dataclass
class Comparison:
    """Outcome of one candidate-vs-oracle output comparison."""

    ok: bool
    failing_indices: np.ndarray
    max_abs_diff: float
    agreement: float

    @property
    def any_sample_fails(self) -> bool:
        return self.failing_indices.size > 0


def default_policy(
    engine: str, case: Optional[ConformanceCase] = None
) -> TolerancePolicy:
    """The built-in policy for an engine name (optionally case-aware).

    SEI engines (``fused``/``reference`` and third-party registrations)
    must agree to the equivalence-suite tolerances
    (:data:`SEI_RTOL`/:data:`SEI_ATOL`); the ``adc`` baseline is held to
    the paper's functional-equivalence claim instead — with the relaxed
    :data:`ADC_MIN_AGREEMENT_DEEP` floor on multi-conv case networks
    (see its docstring for why untrained depth erodes agreement).
    """
    if engine == "adc":
        deep = case is not None and len(case.conv_channels) > 1
        return TolerancePolicy(
            mode="agreement",
            min_agreement=(
                ADC_MIN_AGREEMENT_DEEP if deep else ADC_MIN_AGREEMENT
            ),
        )
    return TolerancePolicy(mode="allclose", rtol=SEI_RTOL, atol=SEI_ATOL)


def case_engine_spec(
    case: ConformanceCase, engine: str
) -> EngineSpec:
    """The :class:`EngineSpec` a case compiles the named engine with.

    All engines share one :class:`HardwareConfig` (same device recipe,
    same programming seed) so the SEI engines program bit-identical
    crossbars and the differential isolates *arithmetic* divergence,
    not configuration skew.
    """
    device = RRAMDevice(
        bits=case.device_bits,
        program_sigma=case.program_sigma,
        read_sigma=case.read_sigma,
        stuck_low_rate=case.stuck_low_rate,
        stuck_high_rate=case.stuck_high_rate,
    )
    hardware = HardwareConfig(
        device=device,
        weight_bits=case.weight_bits,
        max_crossbar_size=case.max_crossbar_size,
        ir_drop_lambda=case.ir_drop_lambda,
        partition_method=case.partition_method,
        seed=case.seed,
    )
    return EngineSpec(name=engine, hardware=hardware, data_bits=case.data_bits)


@dataclass
class Counterexample:
    """A minimized reproduction of one engine-vs-oracle mismatch."""

    case: ConformanceCase
    engine: str
    oracle: str
    policy: TolerancePolicy
    sample_index: int
    #: The minimized failing input ``(1, H, W)``.
    input: np.ndarray
    candidate_output: np.ndarray
    oracle_output: np.ndarray
    max_abs_diff: float
    agreement: float
    #: First layer index whose outputs diverge (None when the engines
    #: are not directly layer-comparable, e.g. adc-vs-sei agreement).
    divergence_layer: Optional[int] = None
    #: Fraction of input pixels the minimizer managed to zero out.
    zeroed_fraction: float = 0.0
    #: Re-compilation probes the minimizer spent.
    probes: int = 0

    def describe(self) -> str:
        where = (
            f"first diverging layer {self.divergence_layer}"
            if self.divergence_layer is not None
            else f"decision agreement {self.agreement:.2f}"
        )
        return (
            f"{self.case.name}: engine {self.engine!r} != oracle "
            f"{self.oracle!r} (policy {self.policy.mode}) on sample "
            f"{self.sample_index}; {where}; max |diff| "
            f"{self.max_abs_diff:.3e}; minimized input zeroes "
            f"{100 * self.zeroed_fraction:.0f}% of pixels "
            f"({self.probes} probes); reproduce with seed "
            f"{self.case.seed}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "case": self.case.as_dict(),
            "engine": self.engine,
            "oracle": self.oracle,
            "policy": {
                "mode": self.policy.mode,
                "atol": self.policy.atol,
                "rtol": self.policy.rtol,
                "min_agreement": self.policy.min_agreement,
            },
            "sample_index": self.sample_index,
            "max_abs_diff": self.max_abs_diff,
            "agreement": self.agreement,
            "divergence_layer": self.divergence_layer,
            "zeroed_fraction": self.zeroed_fraction,
            "probes": self.probes,
            "candidate_output": self.candidate_output.tolist(),
            "oracle_output": self.oracle_output.tolist(),
        }

    def save(self, directory: Path) -> List[Path]:
        """Write the counterexample as a JSON + npz artifact pair."""
        import json

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stem = f"{self.case.name}-{self.engine}"
        array_path = directory / f"{stem}.npz"
        np.savez_compressed(
            array_path,
            input=self.input,
            candidate_output=self.candidate_output,
            oracle_output=self.oracle_output,
        )
        meta_path = directory / f"{stem}.json"
        meta_path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True)
        )
        return [meta_path, array_path]


@dataclass
class CaseResult:
    """Everything one differential case run produced."""

    case: ConformanceCase
    oracle: str
    #: Logits per engine on the case's evaluation batch.
    outputs: Dict[str, np.ndarray]
    comparisons: Dict[str, Comparison]
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: None when invariant (or not applicable), else a description.
    batch_invariance_violation: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (
            not self.counterexamples
            and self.batch_invariance_violation is None
        )


def check_batch_invariance(
    session: InferenceSession,
    images: np.ndarray,
    splits: Sequence[int] = (1, 3),
) -> Optional[str]:
    """Verify outputs do not depend on request coalescing.

    Runs the whole batch, then one-at-a-time, then a couple of uneven
    split compositions through :meth:`InferenceSession.infer_batch` and
    compares bit-for-bit.  Returns ``None`` when invariant, else a
    description of the first violation.  Only meaningful for
    deterministic engines (noisy sessions are stochastic by design).
    """
    images = np.asarray(images)
    whole = session.infer_batch(images)
    singles = np.stack([session.infer(x) for x in images])
    if not np.array_equal(whole, singles):
        index = int(
            np.flatnonzero(np.any(whole != singles, axis=-1))[0]
        )
        return (
            f"batch-of-{len(images)} output differs from one-at-a-time "
            f"at sample {index} (tile={session.config.tile})"
        )
    for split in splits:
        if not 0 < split < len(images):
            continue
        parts = np.concatenate(
            [
                session.infer_batch(images[:split]),
                session.infer_batch(images[split:]),
            ]
        )
        if not np.array_equal(whole, parts):
            index = int(
                np.flatnonzero(np.any(whole != parts, axis=-1))[0]
            )
            return (
                f"split-at-{split} composition differs from whole batch "
                f"at sample {index} (tile={session.config.tile})"
            )
    return None


class DifferentialRunner:
    """Compile-and-compare engine conformance over generated cases.

    Parameters
    ----------
    oracle:
        Oracle engine name; defaults to the registry's designated
        oracle (:func:`repro.core.engines.oracle_engine`).
    policies:
        Per-engine :class:`TolerancePolicy` overrides (defaults from
        :func:`default_policy`).
    minimize:
        Shrink failing inputs into minimized counterexamples (costs a
        bounded number of re-compilations per mismatch).
    max_probes:
        Re-compilation budget per minimization.
    check_invariance:
        Route each deterministic engine through the serving
        batch-invariance check as part of every case.
    """

    def __init__(
        self,
        oracle: Optional[str] = None,
        policies: Optional[Mapping[str, TolerancePolicy]] = None,
        minimize: bool = True,
        max_probes: int = 40,
        check_invariance: bool = True,
    ) -> None:
        self.oracle = oracle if oracle is not None else oracle_engine()
        self.policies = dict(policies) if policies else {}
        self.minimize = minimize
        self.max_probes = max_probes
        self.check_invariance = check_invariance

    # -- execution -------------------------------------------------------
    def policy_for(
        self, engine: str, case: Optional[ConformanceCase] = None
    ) -> TolerancePolicy:
        override = self.policies.get(engine)
        if override is not None:
            return override
        return default_policy(engine, case)

    def _session(
        self,
        built: BuiltCase,
        spec: EngineSpec,
    ) -> InferenceSession:
        """A fresh session for the built case on ``spec``.

        Freshly compiled every time so the engine's RNG stream starts
        from the spec's seed — the property that keeps noisy fused and
        reference runs aligned draw-for-draw.
        """
        return InferenceSession.from_artifacts(
            built.network,
            built.thresholds,
            SessionConfig(
                network=built.case.name, engine=spec, tile=built.case.tile
            ),
            calibration_images=(
                built.calibration if spec.name == "adc" else None
            ),
        )

    def _execute(
        self, built: BuiltCase, spec: EngineSpec, inputs: np.ndarray
    ) -> np.ndarray:
        return self._session(built, spec).infer_batch(inputs)

    def run_case(
        self,
        case: ConformanceCase,
        candidate_specs: Optional[Mapping[str, EngineSpec]] = None,
    ) -> CaseResult:
        """Run one case through every engine and compare to the oracle.

        ``candidate_specs`` overrides the spec of individual candidate
        engines (fault-injection compiles a deliberately faulty
        candidate against the clean oracle this way).
        """
        built = build_case(case)
        oracle_spec = case_engine_spec(case, self.oracle)
        engines = [e for e in case.engines if e != self.oracle]
        with obs.span(
            "conformance.case", case=case.name, engines=len(engines) + 1
        ):
            outputs: Dict[str, np.ndarray] = {
                self.oracle: self._execute(built, oracle_spec, built.inputs)
            }
            comparisons: Dict[str, Comparison] = {}
            counterexamples: List[Counterexample] = []
            specs: Dict[str, EngineSpec] = {self.oracle: oracle_spec}
            for engine in engines:
                spec = (
                    candidate_specs[engine]
                    if candidate_specs and engine in candidate_specs
                    else case_engine_spec(case, engine)
                )
                specs[engine] = spec
                outputs[engine] = self._execute(built, spec, built.inputs)
                policy = self.policy_for(engine, case)
                comparison = policy.compare(
                    outputs[engine], outputs[self.oracle]
                )
                comparisons[engine] = comparison
                if not comparison.ok:
                    obs.count("conformance/mismatches")
                    counterexamples.append(
                        self._build_counterexample(
                            built, spec, oracle_spec, policy, comparison,
                            outputs[engine], outputs[self.oracle],
                        )
                    )
            violation = None
            if self.check_invariance:
                violation = self._invariance_violation(
                    built, specs, candidate_specs is not None
                )
            obs.count("conformance/cases")
        result = CaseResult(
            case=case,
            oracle=self.oracle,
            outputs=outputs,
            comparisons=comparisons,
            counterexamples=counterexamples,
            batch_invariance_violation=violation,
        )
        if not result.ok:
            for counterexample in result.counterexamples:
                logger.warning("%s", counterexample.describe())
            if violation:
                logger.warning("%s: %s", case.name, violation)
        return result

    def run(self, cases: Sequence[ConformanceCase]) -> List[CaseResult]:
        with obs.span("conformance.run", cases=len(cases)):
            return [self.run_case(case) for case in cases]

    # -- invariance ------------------------------------------------------
    def _invariance_violation(
        self,
        built: BuiltCase,
        specs: Mapping[str, EngineSpec],
        injected: bool,
    ) -> Optional[str]:
        if injected:
            # Fault-injection runs compare engines, not serving routes.
            return None
        for engine, spec in specs.items():
            if not spec.deterministic:
                continue
            session = self._session(built, spec)
            violation = check_batch_invariance(session, built.inputs)
            if violation is not None:
                return f"engine {engine!r}: {violation}"
        return None

    # -- counterexample minimization -------------------------------------
    def _pair_fails(
        self,
        built: BuiltCase,
        candidate_spec: EngineSpec,
        oracle_spec: EngineSpec,
        policy: TolerancePolicy,
        inputs: np.ndarray,
    ) -> Tuple[bool, np.ndarray, np.ndarray]:
        """Re-run both engines fresh on ``inputs``; does any sample fail?

        Fresh compiles per probe keep noisy RNG streams aligned between
        the candidate and the oracle regardless of input size.
        """
        candidate = self._execute(built, candidate_spec, inputs)
        oracle = self._execute(built, oracle_spec, inputs)
        comparison = policy.compare(candidate, oracle)
        return comparison.any_sample_fails, candidate, oracle

    def _build_counterexample(
        self,
        built: BuiltCase,
        candidate_spec: EngineSpec,
        oracle_spec: EngineSpec,
        policy: TolerancePolicy,
        comparison: Comparison,
        candidate_outputs: np.ndarray,
        oracle_outputs: np.ndarray,
    ) -> Counterexample:
        index = int(comparison.failing_indices[0])
        x = built.inputs[index : index + 1].copy()
        probes = 0
        zeroed = 0.0
        if self.minimize:
            x, probes, zeroed = self._shrink_input(
                built, candidate_spec, oracle_spec, policy, x
            )
            obs.count("conformance/minimize_probes", probes)
        fails, cand_out, orac_out = self._pair_fails(
            built, candidate_spec, oracle_spec, policy, x
        )
        if not fails:  # pragma: no cover - shrink always re-verifies
            cand_out = candidate_outputs[index : index + 1]
            orac_out = oracle_outputs[index : index + 1]
        divergence = None
        if policy.mode in ("exact", "allclose"):
            divergence = self._first_divergence(
                built, candidate_spec, oracle_spec, policy, x
            )
        return Counterexample(
            case=built.case,
            engine=candidate_spec.name,
            oracle=oracle_spec.name,
            policy=policy,
            sample_index=index,
            input=x[0],
            candidate_output=cand_out[0],
            oracle_output=orac_out[0],
            max_abs_diff=float(np.abs(cand_out - orac_out).max()),
            agreement=comparison.agreement,
            divergence_layer=divergence,
            zeroed_fraction=zeroed,
            probes=probes,
        )

    def _shrink_input(
        self,
        built: BuiltCase,
        candidate_spec: EngineSpec,
        oracle_spec: EngineSpec,
        policy: TolerancePolicy,
        x: np.ndarray,
    ) -> Tuple[np.ndarray, int, float]:
        """Bounded ddmin: zero out input regions while the failure holds.

        Splits the flattened pixel set into progressively finer chunks;
        a chunk is permanently zeroed whenever the single-sample failure
        survives without it.  Returns the minimized input, probes spent
        and the fraction of pixels zeroed.
        """
        flat = x.reshape(-1)
        active = np.flatnonzero(flat != 0.0)
        probes = 0
        chunks = 2
        while probes < self.max_probes and chunks <= max(len(active), 2):
            pieces = np.array_split(active, chunks)
            removed_any = False
            for piece in pieces:
                if probes >= self.max_probes or piece.size == 0:
                    break
                trial = flat.copy()
                trial[piece] = 0.0
                probes += 1
                fails, _, _ = self._pair_fails(
                    built, candidate_spec, oracle_spec, policy,
                    trial.reshape(x.shape),
                )
                if fails:
                    flat = trial
                    active = np.setdiff1d(active, piece, assume_unique=True)
                    removed_any = True
            if not removed_any:
                if chunks >= len(active):
                    break
                chunks = min(chunks * 2, max(len(active), 2))
        zeroed = 1.0 - (len(active) / flat.size)
        return flat.reshape(x.shape), probes, float(zeroed)

    def _first_divergence(
        self,
        built: BuiltCase,
        candidate_spec: EngineSpec,
        oracle_spec: EngineSpec,
        policy: TolerancePolicy,
        x: np.ndarray,
    ) -> Optional[int]:
        """First layer index whose outputs differ on the failing input."""
        candidate = self._session(built, candidate_spec).hardware
        oracle = self._session(built, oracle_spec).hardware
        return first_divergence(
            candidate, oracle, x, rtol=policy.rtol, atol=policy.atol
        )


def first_divergence(
    candidate: BinarizedNetwork,
    oracle: BinarizedNetwork,
    x: np.ndarray,
    rtol: float = 0.0,
    atol: float = 0.0,
) -> Optional[int]:
    """Run two binarized networks layer-by-layer; first index differing.

    Mirrors :meth:`BinarizedNetwork.forward` (same input quantization,
    same per-layer hooks), so the result pinpoints where a hardware
    substitution first departs from the oracle's arithmetic.  Zero
    tolerances mean bit-exact comparison; the policy tolerances keep
    last-ulp reassociation from flagging a spurious layer.
    """
    xc = candidate._quantize_input(np.asarray(x))
    xo = oracle._quantize_input(np.asarray(x))
    for index in range(len(candidate.network.layers)):
        xc = candidate.run_layer(index, xc)
        xo = oracle.run_layer(index, xo)
        if xc.shape != xo.shape or not np.all(
            np.isclose(xc, xo, rtol=rtol, atol=atol)
        ):
            return index
    return None
