"""Weight re-scaling (§3.1 of the paper).

Intermediate outputs of different layers span very different ranges (the
paper quotes [0-2048] .. [0-4096] for CaffeNet conv layers).  To search all
layer thresholds with one common step, each layer's weights are divided by
the maximum output of that layer observed on the training set, bringing its
outputs into [0, 1].

Scaling a layer by a positive constant does not change the classification
result of a ReLU CNN (positive scaling commutes with ReLU and max-pooling
and only rescales the logits), so this step is loss-free — the paper's
"weight scaling without numeral precision loss".
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import QuantizationError
from repro.nn.layers import Conv2D, Dense
from repro.nn.network import Sequential

__all__ = ["max_layer_output", "rescale_layer", "rescale_network"]


def max_layer_output(
    network: Sequential, images: np.ndarray, layer_index: int, batch_size: int = 256
) -> float:
    """Maximum activation of layer ``layer_index`` over a dataset."""
    best = 0.0
    for start in range(0, len(images), batch_size):
        batch = images[start : start + batch_size]
        x = batch
        for layer in network.layers[: layer_index + 1]:
            x = layer.forward(x)
        best = max(best, float(x.max(initial=0.0)))
    return best


def rescale_layer(
    network: Sequential,
    layer_index: int,
    divisor: float,
    cascade_bias: bool = False,
) -> None:
    """Divide the weights (and bias) of one layer by ``divisor`` in place.

    With ``cascade_bias=True`` the biases of every *deeper* weighted layer
    are divided as well.  That is required for the float network to stay
    classification-invariant: scaling layer L's output by 1/d scales the
    inputs of deeper layers, so their biases must shrink with them for the
    logits to scale uniformly.  The quantized pipeline does NOT cascade —
    1-bit quantization resets the scale to {0, 1} right after the layer,
    so deeper layers never see the 1/d factor.
    """
    if divisor <= 0 or not np.isfinite(divisor):
        raise QuantizationError(
            f"cannot rescale layer {layer_index} by {divisor}; the layer "
            "produced no positive outputs on the calibration set"
        )
    layer = network.layers[layer_index]
    if not isinstance(layer, (Conv2D, Dense)):
        raise QuantizationError(
            f"layer {layer_index} ({type(layer).__name__}) has no weights "
            "to rescale"
        )
    layer.params["weight"] = layer.params["weight"] / divisor
    if "bias" in layer.params:
        layer.params["bias"] = layer.params["bias"] / divisor
    if cascade_bias:
        for deeper in network.layers[layer_index + 1 :]:
            if isinstance(deeper, (Conv2D, Dense)) and "bias" in deeper.params:
                deeper.params["bias"] = deeper.params["bias"] / divisor


def rescale_network(
    network: Sequential, images: np.ndarray, batch_size: int = 256
) -> Dict[int, float]:
    """Re-scale every weighted layer so its max output over ``images`` is 1.

    Works layer by layer (earlier rescalings change deeper ranges) and
    returns the divisors applied, keyed by layer index.  This is the
    float-network variant used when no quantization is interleaved; the
    greedy quantization pipeline performs its own interleaved rescaling.
    """
    divisors: Dict[int, float] = {}
    for index in network.quantizable_indices() + _final_weighted(network):
        divisor = max_layer_output(network, images, index, batch_size)
        rescale_layer(network, index, divisor, cascade_bias=True)
        divisors[index] = divisor
    return divisors


def _final_weighted(network: Sequential) -> List[int]:
    """Index of the final weighted layer if it is not already quantizable."""
    quantizable = set(network.quantizable_indices())
    for index in range(len(network.layers) - 1, -1, -1):
        if isinstance(network.layers[index], (Conv2D, Dense)):
            return [] if index in quantizable else [index]
    return []
