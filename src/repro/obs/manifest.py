"""Run manifest: provenance attached to every trace/metrics export.

A manifest answers "what produced this file?": package and numpy
versions, python/platform, git revision (when the source tree is a
checkout), an ISO-8601 UTC timestamp, plus caller-supplied fields such
as the RNG seed and a digest of the active configuration.

:func:`config_digest` hashes any JSON-ish mapping (dataclasses and numpy
scalars included) so two runs can be compared for configuration equality
without storing the whole config.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Optional

__all__ = ["run_manifest", "config_digest", "git_revision"]


def _digestable(value: Any) -> Any:
    """Reduce ``value`` to deterministic JSON-encodable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _digestable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _digestable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_digestable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()  # numpy scalar
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy array
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_digest(config: Any) -> str:
    """Short deterministic sha256 digest of a configuration object."""
    encoded = json.dumps(_digestable(config), sort_keys=True).encode()
    return hashlib.sha256(encoded).hexdigest()[:16]


def git_revision() -> Optional[str]:
    """Current git commit sha, or ``None`` outside a checkout."""
    root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_manifest(
    seed: Optional[int] = None,
    config: Any = None,
    **extra: Any,
) -> dict:
    """Provenance record for one run; all values JSON-serialisable."""
    import numpy

    import repro

    manifest = {
        "package": "repro",
        "package_version": repro.__version__,
        "numpy_version": numpy.__version__,
        "python_version": sys.version.split()[0],
        "platform": platform.platform(),
        "git_sha": git_revision(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
        "seed": seed,
        "config_digest": config_digest(config) if config is not None else None,
    }
    for key, value in extra.items():
        manifest[key] = _digestable(value)
    return manifest
