"""Integrate-and-fire neuron state for the SNN extension.

The sense amplifier of the SEI structure compares a column current with a
threshold; adding a capacitor that integrates the current over timesteps
turns the same column into an integrate-and-fire neuron.  This module
models that neuron array behaviourally: membrane integration, optional
leak, threshold firing and two reset styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = ["IntegrateFireState"]


@dataclass
class IntegrateFireState:
    """A (batched) array of integrate-and-fire neurons.

    Parameters
    ----------
    shape:
        Shape of the neuron array, including the batch axis.
    threshold:
        Firing threshold (the SA reference).
    leak:
        Fraction of membrane potential lost per step (0 = perfect
        integrator, the usual choice for rate-coded conversion).
    reset:
        ``'subtract'`` (soft reset: carry the residual, best rate-coding
        fidelity) or ``'zero'`` (hard reset).
    """

    shape: Tuple[int, ...]
    threshold: float
    leak: float = 0.0
    reset: str = "subtract"

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ConfigurationError(
                f"firing threshold must be positive, got {self.threshold}"
            )
        if not 0.0 <= self.leak < 1.0:
            raise ConfigurationError(f"leak must be in [0, 1), got {self.leak}")
        if self.reset not in ("subtract", "zero"):
            raise ConfigurationError(
                f"reset must be 'subtract' or 'zero', got {self.reset!r}"
            )
        self.membrane = np.zeros(self.shape)
        self.spike_count = np.zeros(self.shape)
        self.steps = 0

    def step(self, current: np.ndarray) -> np.ndarray:
        """Integrate one timestep of input current; return 0/1 spikes."""
        current = np.asarray(current, dtype=np.float64)
        if current.shape != self.membrane.shape:
            raise ShapeError(
                f"current shape {current.shape} does not match neuron "
                f"array {self.membrane.shape}"
            )
        if self.leak:
            self.membrane *= 1.0 - self.leak
        self.membrane += current
        spikes = (self.membrane > self.threshold).astype(np.float64)
        if self.reset == "subtract":
            self.membrane -= spikes * self.threshold
        else:
            self.membrane = np.where(spikes > 0, 0.0, self.membrane)
        self.spike_count += spikes
        self.steps += 1
        return spikes

    @property
    def firing_rate(self) -> np.ndarray:
        """Average spikes per step so far."""
        if self.steps == 0:
            raise ConfigurationError("no steps have been simulated yet")
        return self.spike_count / self.steps

    def reset_state(self) -> None:
        """Clear membrane and counters (new inference)."""
        self.membrane[...] = 0.0
        self.spike_count[...] = 0.0
        self.steps = 0
