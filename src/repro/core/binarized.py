"""1-bit-quantized (binarized-activation) CNN inference (§3.1).

After Algorithm 1 has chosen per-layer thresholds, the network runs as
follows:

* the input picture stays high-precision (it is driven through DACs,
  §3.2);
* the output of every *intermediate* weighted layer (Conv / FC) is
  compared with its threshold and becomes a single bit.  ReLU disappears:
  it is monotonically increasing, so ``relu(g) > t  <=>  g > t`` for
  ``t >= 0`` — the neuron is merged into the sense-amp reference;
* max pooling over 1-bit data degenerates to a logical OR, and because
  quantizing after pooling equals quantizing before pooling with the same
  threshold, we binarize first and OR afterwards — exactly the digital OR
  gate the hardware uses;
* the final FC layer produces analog class scores; classification takes
  the argmax (a winner-take-all readout).

:class:`BinarizedNetwork` wraps a (re-scaled) float network plus the
threshold vector and provides both plain inference and hooks that expose
the binary activations, which the SEI / splitting hardware simulations
consume as crossbar selection signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.errors import QuantizationError, ShapeError
from repro.nn.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU
from repro.nn.losses import error_rate
from repro.nn.network import Sequential

__all__ = [
    "intermediate_quantizable_indices",
    "binarize",
    "or_pool",
    "BinarizedNetwork",
]

#: A hook that replaces the weighted computation of one layer.  It receives
#: the layer's (binary) input activations and must return the
#: pre-threshold analog output — used to substitute crossbar hardware
#: models (SEI, splitting) for exact software matrix products.
LayerCompute = Callable[[Layer, np.ndarray], np.ndarray]


def intermediate_quantizable_indices(network: Sequential) -> List[int]:
    """Indices of layers whose outputs are 1-bit-quantized intermediate data.

    All weighted layers except the final one (the classifier output stays
    analog and is read out by winner-take-all).
    """
    indices = network.quantizable_indices()
    if len(indices) < 2:
        raise QuantizationError(
            "network has fewer than two weighted layers; there is no "
            "intermediate data to quantize"
        )
    return indices[:-1]


def binarize(values: np.ndarray, threshold: float) -> np.ndarray:
    """Threshold processing: 1 where value > threshold, else 0 (Equ. 4).

    The comparison writes its 0/1 floats directly into the output buffer
    — one pass instead of a bool temporary plus an ``astype`` copy.
    """
    values = np.asarray(values)
    out = np.empty(values.shape, dtype=np.float64)
    np.greater(values, threshold, out=out, casting="unsafe")
    return out


def or_pool(bits: np.ndarray, pool: int, stride: Optional[int] = None) -> np.ndarray:
    """Max pooling of 1-bit data == logical OR over the window (§3.1)."""
    from repro.core.matrix_compute import ensure_binary
    from repro.nn.functional import maxpool2d_forward

    ensure_binary(bits, "or_pool inputs")
    return maxpool2d_forward(bits, pool, stride)


@dataclass
class BinarizedNetwork:
    """A float network executed with 1-bit intermediate activations.

    Parameters
    ----------
    network:
        The (already re-scaled) float network.  Not copied — callers who
        need the original intact should pass ``network.copy()``.
    thresholds:
        Mapping from weighted-layer index to its quantization threshold on
        the re-scaled [0, 1] output range.
    input_bits:
        Precision of the input-layer DACs (None = ideal analog input).
    """

    network: Sequential
    thresholds: Dict[int, float]
    input_bits: Optional[int] = 8
    #: Optional per-layer hardware substitutes (crossbar models).
    layer_computes: Dict[int, LayerCompute] = field(default_factory=dict)
    #: Layers whose installed compute already emits the exact 0/1 plane
    #: of ``binarize(output, thresholds[index])`` — the engine folded the
    #: threshold comparison into its kernel, so the outer binarize would
    #: be a redundant identity pass and is skipped.  Engines that fold
    #: must guarantee bit-exactness against the unfolded comparison.
    prebinarized: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        expected = intermediate_quantizable_indices(self.network)
        missing = [i for i in expected if i not in self.thresholds]
        if missing:
            raise QuantizationError(
                f"missing thresholds for layer indices {missing}; run the "
                "threshold search first"
            )
        # Weighted layers whose inputs are 1-bit selection signals (some
        # earlier weighted layer is thresholded): these are the layers the
        # SEI structure input-switches, so software-only inference can
        # still report row-activity statistics for them.
        weighted = [
            i
            for i, layer in enumerate(self.network.layers)
            if isinstance(layer, (Conv2D, Dense))
        ]
        self._obs_sei_layers = frozenset(
            i
            for i in weighted
            if any(j < i and j in self.thresholds for j in weighted)
        )

    # -- execution -------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Binarized forward pass; returns analog logits.

        Batch-transparent: a single sample shaped like the network's
        input (e.g. ``(1, 28, 28)``) is accepted alongside the usual
        batched ``(n, 1, 28, 28)`` form and returns an unbatched logits
        vector — serving code can hand over requests as-is.
        """
        x = np.asarray(x)
        input_shape = getattr(self.network, "input_shape", None)
        single = input_shape is not None and x.ndim == len(input_shape)
        if single:
            x = x[None]
        x = self._quantize_input(x)
        for index, layer in enumerate(self.network.layers):
            x = self._run_layer(index, layer, x)
        return x[0] if single else x

    def predict(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        outputs = [
            self.forward(images[start : start + batch_size])
            for start in range(0, len(images), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def error_rate(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int = 256
    ) -> float:
        """Classification error rate, the paper's accuracy metric."""
        return error_rate(self.predict(images, batch_size), labels)

    def collect_binary_activations(
        self, images: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Binary activations *entering* each quantized-downstream layer.

        Returns a mapping from weighted-layer index (conv2, fc, ...) to the
        1-bit selection signals that layer receives — the inputs the SEI
        structure uses to drive transmission gates.  The first weighted
        layer is excluded (it sees the analog picture).
        """
        captured: Dict[int, np.ndarray] = {}
        x = self._quantize_input(images)
        quantized = set(self.thresholds)
        seen_binary = False
        for index, layer in enumerate(self.network.layers):
            if isinstance(layer, (Conv2D, Dense)) and seen_binary:
                captured[index] = x.copy()
            x = self._run_layer(index, layer, x)
            if index in quantized:
                seen_binary = True
        return captured

    def run_layer(self, index: int, x: np.ndarray) -> np.ndarray:
        """Run a single layer under binarized semantics (public hook).

        Applies the layer's installed hardware compute (if any) and its
        1-bit threshold; used by calibration code that replays network
        tails on cached activations.
        """
        return self._run_layer(index, self.network.layers[index], x)

    # -- internals -----------------------------------------------------------
    def _quantize_input(self, x: np.ndarray) -> np.ndarray:
        if self.input_bits is None:
            return x
        steps = 2**self.input_bits - 1
        return np.rint(np.clip(x, 0.0, 1.0) * steps) / steps

    def _record_sei_layer(self, rec, index: int, layer: Layer,
                          x: np.ndarray) -> None:
        """Row-activity counters for a software-simulated SEI layer.

        Only called while a recorder is active; uses the canonical
        8-bit-weight / 4-bit-cell signed layout (4 cells per weight, the
        Table 5 configuration) since the software path carries no device
        model.
        """
        from repro.nn.functional import im2col
        from repro.obs.power import record_mvm_batch

        if isinstance(layer, Conv2D):
            bits = im2col(
                x, layer.kernel_size, layer.kernel_size,
                layer.stride, layer.padding,
            )
            cols = layer.out_channels
        else:
            bits = x
            cols = layer.out_features
        record_mvm_batch(rec.metrics, index, bits, cols, cells_per_weight=4)

    def _run_layer(self, index: int, layer: Layer, x: np.ndarray) -> np.ndarray:
        compute = self.layer_computes.get(index)
        if isinstance(layer, (Conv2D, Dense)):
            if compute is not None:
                x = compute(layer, x)
            else:
                rec = obs.active()
                if rec is not None and index in getattr(
                    self, "_obs_sei_layers", ()
                ):
                    self._record_sei_layer(rec, index, layer, x)
                x = layer.forward(x)
            if index in self.thresholds and index not in self.prebinarized:
                # ReLU is merged into this comparison: relu is monotonic
                # and the threshold is non-negative, so relu(g) > t == g > t.
                x = binarize(x, self.thresholds[index])
            return x
        # ReLU on 0/1 data is an identity and max pooling on 0/1 data *is*
        # the logical OR of §3.1, so the remaining layers run unchanged.
        # Computes may still be installed on them (e.g. the reference
        # engine pins the pre-fusion pooling implementation).
        if compute is not None:
            return compute(layer, x)
        return layer.forward(x)
