"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class MappingError(ReproError):
    """A weight matrix cannot be mapped onto the requested crossbar fabric."""


class QuantizationError(ReproError):
    """A quantization step failed (empty search range, untrained net, ...)."""


class TrainingError(ReproError):
    """Model training could not proceed (bad loss, empty dataset, ...)."""


class ServeError(ReproError):
    """An inference-serving operation failed (closed batcher, bad state)."""


class BackpressureError(ServeError):
    """The serving queue is full and the submit timeout elapsed.

    Also raised by the gateway's admission control (token bucket
    exhausted or the bounded in-flight window full) — one exception
    type for every deliberate load-shedding decision, so clients have
    a single thing to catch and retry-with-backoff on."""


class ShardDeadError(ServeError):
    """The shard holding this request died before answering.

    In-flight requests on a killed shard fail with this error instead
    of hanging or being silently dropped; *new* requests re-route to
    the surviving shards."""


class ConformanceError(ReproError):
    """A cross-engine conformance check failed (engine mismatch, golden
    drift, unbounded fault degradation)."""
