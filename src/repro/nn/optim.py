"""Optimisers for the numpy CNN substrate."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam"]

ParamGroup = Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]


class Optimizer:
    """Base optimiser operating on (params, grads) dictionary pairs."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self, groups: Iterable[ParamGroup]) -> None:
        """Apply one update to every parameter in every group."""
        for params, grads in groups:
            for name, value in params.items():
                self._update(id(params), name, value, grads[name])

    def _update(
        self, group_id: int, name: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0
    ) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ConfigurationError(
                f"weight decay must be non-negative, got {weight_decay}"
            )
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[Tuple[int, str], np.ndarray] = {}

    def _update(
        self, group_id: int, name: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        if self.weight_decay and name != "bias":
            grad = grad + self.weight_decay * param
        if self.momentum:
            key = (group_id, name)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
                self._velocity[key] = velocity
            velocity *= self.momentum
            velocity -= self.lr * grad
            param += velocity
        else:
            param -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(
                f"betas must be in [0, 1), got beta1={beta1}, beta2={beta2}"
            )
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[Tuple[int, str], np.ndarray] = {}
        self._v: Dict[Tuple[int, str], np.ndarray] = {}
        self._t = 0

    def step(self, groups: Iterable[ParamGroup]) -> None:
        self._t += 1
        super().step(groups)

    def _update(
        self, group_id: int, name: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        if self.weight_decay and name != "bias":
            grad = grad + self.weight_decay * param
        key = (group_id, name)
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
