"""Technology model: per-component area / energy constants.

The paper takes analog peripheral and RRAM numbers from St Amant et al.
(ISCA'14) [17], Tseng et al. (VLSI'14) [18] and Li et al. (DAC'15) [19],
and digital/memory energy from Han et al. [20].  We do not have the
authors' exact spreadsheet, so :class:`TechnologyModel` collects one
self-consistent set of constants in the same technology class
(65-45 nm mixed signal) and calibrates them against the paper's anchor
observations (see DESIGN.md §6):

* in the 8-bit DAC+ADC baseline, converters account for >98% of power and
  area (Fig. 1);
* Network 1 baseline energy sits in the paper's decade (~74 uJ/picture)
  and the SEI design saves >95% energy and 74-86% area (Table 5);
* the SEI design exceeds 2000 GOPs/J using the paper's op-count
  convention (Table 2 complexity).

Accounting conventions (documented here because they change the numbers):

* **Intermediate-data DACs** (the ones 1-bit quantization removes) convert
  once per crossbar activation per row — data streams through, so every
  convolution position pays ``n_rows`` conversions.
* **Input-layer DACs** convert each input pixel once per picture: the
  picture is static during the whole inference, so sample-and-hold arrays
  retain the analog values (this matches the paper's observation that the
  input layer is a small fraction of total energy).
* **ADCs** convert once per crossbar column per activation, for every
  physical crossbar that needs digital merging.
* Crossbars are instantiated once per layer and time-multiplexed over
  positions (the paper's "reuse the kernels for multiple feature maps"
  baseline); area therefore counts one copy of each layer's fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError

__all__ = ["TechnologyModel", "ReferencePlatform", "REFERENCE_PLATFORMS"]


@dataclass(frozen=True)
class TechnologyModel:
    """Area (um^2) and energy (pJ) constants for every hardware component."""

    # --- converters -------------------------------------------------------
    #: Energy per 8-bit ADC conversion, pJ.  SAR ADC class of [17, 19].
    adc_energy_pj: float = 1360.0
    #: Area of one 8-bit ADC, um^2.
    adc_area_um2: float = 3000.0
    #: Energy per 8-bit DAC conversion, pJ.  [18] class.
    dac_energy_pj: float = 590.0
    #: Area of one 8-bit DAC channel, um^2.
    dac_area_um2: float = 800.0

    # --- RRAM fabric --------------------------------------------------------
    #: Read energy per active RRAM cell per crossbar activation, pJ. [21]
    cell_read_energy_pj: float = 0.2
    #: Area per 1T1R RRAM cell, um^2 (4F^2 device + access transistor).
    cell_area_um2: float = 0.08
    #: Write energy per cell (programming), pJ; only used for setup costs.
    cell_write_energy_pj: float = 10.0

    # --- analog periphery ------------------------------------------------------
    #: Energy per sense-amplifier (threshold) decision, pJ.
    sense_amp_energy_pj: float = 5.0
    #: Area of one sense amplifier / comparator including its reference
    #: generation and offset-calibration circuitry, um^2.
    sense_amp_area_um2: float = 1000.0
    #: Area of the row decoder + transmission gates per crossbar row, um^2.
    decoder_area_per_row_um2: float = 2.0
    #: Extra decoder area per row for the SEI MUX (Fig. 3b), um^2.
    sei_mux_area_per_row_um2: float = 1.5
    #: Energy per row drive (transmission-gate switch), pJ.
    row_drive_energy_pj: float = 0.05

    # --- digital periphery ------------------------------------------------------
    #: Energy of one digital add/shift/subtract on merged results, pJ. [20]
    digital_op_energy_pj: float = 0.4
    #: Area of one digital adder/shifter lane, um^2.
    digital_op_area_um2: float = 40.0
    #: Energy per intermediate-data buffer access (per byte), pJ. SRAM, [20]
    buffer_access_energy_pj: float = 5.0
    #: Buffer area per byte of intermediate data held, um^2.
    buffer_area_per_byte_um2: float = 1.0

    # --- fabric limits --------------------------------------------------------------
    #: Largest manufacturable crossbar dimension (rows = cols). [15]
    max_crossbar_size: int = 512
    #: Resistance levels of one device, bits. [13]
    cell_bits: int = 4
    #: CNN weight precision, bits. [7]
    weight_bits: int = 8

    def __post_init__(self) -> None:
        if self.cell_bits <= 0 or self.weight_bits <= 0:
            raise ConfigurationError("bit widths must be positive")
        if self.weight_bits % self.cell_bits != 0:
            raise ConfigurationError(
                f"weight bits ({self.weight_bits}) must be a multiple of "
                f"cell bits ({self.cell_bits}) for bit slicing"
            )
        if self.max_crossbar_size <= 0:
            raise ConfigurationError("max crossbar size must be positive")

    @property
    def bit_slices(self) -> int:
        """Crossbar copies needed to cover the weight precision (e.g. 2)."""
        return self.weight_bits // self.cell_bits

    def with_crossbar_size(self, size: int) -> "TechnologyModel":
        """A copy of this model with a different maximum crossbar size."""
        return TechnologyModel(
            **{
                **{f.name: getattr(self, f.name) for f in _fields(self)},
                "max_crossbar_size": size,
            }
        )

    def scaled_adc(self, bits: int) -> float:
        """ADC conversion energy (pJ) at a different resolution.

        SAR conversion energy scales roughly linearly with resolved bits
        for the resolutions used here.
        """
        if bits <= 0:
            raise ConfigurationError(f"ADC bits must be positive, got {bits}")
        return self.adc_energy_pj * bits / 8.0


def _fields(model: TechnologyModel):
    from dataclasses import fields

    return fields(model)


@dataclass(frozen=True)
class ReferencePlatform:
    """A published comparison point for energy efficiency (GOPs/J)."""

    name: str
    gops_per_joule: float
    source: str


#: Comparison rows used by the Table 5 benchmark.  Values are the
#: efficiency class of the cited platforms (the paper claims SEI is about
#: two orders of magnitude above both).
REFERENCE_PLATFORMS: Dict[str, ReferencePlatform] = {
    "fpga": ReferencePlatform(
        name="FPGA (Zhang et al., FPGA'15)",
        gops_per_joule=3.3,
        source="[2]: 61.62 GFLOPS at 18.6 W VC707 accelerator",
    ),
    "gpu": ReferencePlatform(
        name="GPU (NVIDIA K40)",
        gops_per_joule=18.0,
        source="K40 ~4.3 TFLOPS peak at 235 W, CNN utilisation ~ gives O(10) GOPs/J",
    ),
}
