"""Table 2: the experiment setup (three 4-layer CNNs).

Not a measurement — this bench regenerates the configuration table and
asserts that our built networks match the paper's declared weight-matrix
shapes and complexity figures.
"""

import pytest

from repro.arch import format_table
from repro.configs import (
    NETWORK_SPECS,
    build_network,
    count_operations,
    get_network_spec,
    network_weight_matrix_shapes,
)

from benchmarks.conftest import heading


def run_table2():
    rows = []
    for name in ("network1", "network2", "network3"):
        spec = get_network_spec(name)
        desc = spec.describe()
        ops = count_operations(spec)
        rows.append(
            {
                "network": name,
                **desc,
                "2*MACs (GOPs)": ops["total_ops"] / 1e9,
            }
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_network_configurations(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    heading("Table 2 — experiment setup")
    print(format_table(rows, floatfmt="{:.5f}"))

    expected_shapes = {
        "network1": [(25, 12), (300, 64), (1024, 10)],
        "network2": [(9, 4), (36, 8), (200, 10)],
        "network3": [(9, 6), (54, 12), (300, 10)],
    }
    for name, shapes in expected_shapes.items():
        spec = get_network_spec(name)
        assert network_weight_matrix_shapes(spec) == shapes
        network = build_network(spec)
        weighted = [
            l for l in network.layers if hasattr(l, "weight_matrix")
        ]
        assert [w.weight_matrix.shape for w in weighted] == shapes

    # Complexity figures in the paper's order: net1 >> net3 > net2.
    gops = {
        name: NETWORK_SPECS[name].paper_gops for name in expected_shapes
    }
    assert gops["network1"] > gops["network3"] > gops["network2"]
