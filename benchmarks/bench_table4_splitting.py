"""Table 4: error rate of the splitting methods on Network 1.

Paper (Network 1, MNIST):

    Max crossbar size          512            256
    Original CNN              0.93%          0.93%
    Quantization              1.63%          1.63%
    Random Order Splitting    3.90-45.89%    4.44-49.03%
    Matrix Homogenization     1.78%          2.29%
    Dynamic Threshold         1.52%          1.82%

We regenerate the same rows: the quantized network is split onto
size-limited crossbars (conv2: 3 or 5 blocks; FC: 8 or 16 blocks), with
random row orders sampled (the paper samples 500; we sample fewer — the
min-max range is reported), then homogenization and dynamic block
thresholds are applied.  See EXPERIMENTS.md for the magnitude
differences (our trained matrices are naturally more homogeneous than
the paper's, so random orders degrade less dramatically).
"""

import pytest

from repro.analysis import error_rate_pct, summarize_range
from repro.arch import format_table
from repro.core import SplitConfig, build_split_network

from benchmarks.conftest import heading

RANDOM_ORDERS = 8


def run_table4(quantized_models, dataset, crossbar_size):
    qm = quantized_models["network1"]
    net, thresholds = qm.search.network, qm.search.thresholds
    train_x, train_y = dataset.train.images, dataset.train.labels
    test_x, test_y = dataset.test.images, dataset.test.labels

    def split_error(**config_kwargs):
        result = build_split_network(
            net,
            thresholds,
            train_x,
            train_y,
            SplitConfig(max_crossbar_size=crossbar_size, **config_kwargs),
        )
        return result.binarized.error_rate(test_x, test_y), result

    random_errors = []
    for seed in range(RANDOM_ORDERS):
        err, _ = split_error(partition_method="random", seed=seed)
        random_errors.append(err)

    homog_err, homog_result = split_error(partition_method="homogenize")
    dyn_err, _ = split_error(partition_method="homogenize", dynamic=True)

    return {
        "float": qm.float_test_error,
        "quant": qm.quantized_test_error,
        "random": summarize_range(random_errors),
        "homog": homog_err,
        "dynamic": dyn_err,
        "blocks": {
            i: r.num_blocks for i, r in homog_result.reports.items()
        },
        "distance_reduction": {
            i: 1 - r.distance / r.natural_distance
            for i, r in homog_result.reports.items()
            if r.natural_distance > 0
        },
    }


@pytest.mark.benchmark(group="table4")
@pytest.mark.parametrize("crossbar_size", [512, 256])
def test_table4_splitting_error(
    benchmark, quantized_models, dataset, crossbar_size
):
    res = benchmark.pedantic(
        run_table4,
        args=(quantized_models, dataset, crossbar_size),
        rounds=1,
        iterations=1,
    )

    heading(f"Table 4 — splitting methods, Network 1, crossbar {crossbar_size}")
    rows = [
        {"method": "Original CNN", "error (%)": error_rate_pct(res["float"])},
        {"method": "Quantization", "error (%)": error_rate_pct(res["quant"])},
        {
            "method": f"Random Order ({RANDOM_ORDERS} orders, min-max)",
            "error (%)": (
                f"{error_rate_pct(res['random']['min']):.2f} - "
                f"{error_rate_pct(res['random']['max']):.2f}"
            ),
        },
        {
            "method": "Matrix Homogenization",
            "error (%)": error_rate_pct(res["homog"]),
        },
        {
            "method": "Dynamic Threshold",
            "error (%)": error_rate_pct(res["dynamic"]),
        },
    ]
    print(format_table(rows))
    print(f"blocks per split layer: {res['blocks']}")
    print(
        "homogenization distance reduction: "
        + ", ".join(
            f"layer {i}: {v:.1%}" for i, v in res["distance_reduction"].items()
        )
    )

    # Paper-example geometry: conv2 -> 3 (512) or 5 (256) blocks.
    conv2_blocks = res["blocks"][3]
    assert conv2_blocks == (3 if crossbar_size == 512 else 5)

    # Quantization costs little; splitting costs more; homogenization and
    # dynamic thresholds keep the error in the low single digits.
    assert res["quant"] <= res["float"] + 0.02
    assert res["homog"] <= res["random"]["max"] + 1e-9
    assert res["homog"] < 0.05
    assert res["dynamic"] <= res["homog"] + 0.01

    # Homogenization slashes the Equ. 10 distance (paper: 80-90%).
    for reduction in res["distance_reduction"].values():
        assert reduction > 0.5
