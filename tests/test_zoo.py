"""Tests for repro.zoo using a small dataset and temp cache."""

import numpy as np
import pytest

from repro.data.datasets import Dataset, MnistLike
from repro.data.synthetic_mnist import generate_images
from repro.zoo import (
    ZOO_RECIPES,
    clear_warm_models,
    get_quantized,
    get_trained_network,
    quantized_cache_paths,
    recipe_digest,
    warm_model,
)


@pytest.fixture(scope="module")
def small_bundle():
    train_x, train_y = generate_images(300, seed=21)
    test_x, test_y = generate_images(80, seed=2021)
    return MnistLike(
        train=Dataset(train_x, train_y), test=Dataset(test_x, test_y)
    )


class TestRecipes:
    def test_all_networks_have_recipes(self):
        assert set(ZOO_RECIPES) == {"network1", "network2", "network3"}

    def test_recipe_fields_sane(self):
        for recipe in ZOO_RECIPES.values():
            assert recipe.epochs > 0
            assert recipe.learning_rate > 0
            assert recipe.activation_l1 >= 0


class TestTrainedNetwork:
    def test_trains_and_caches(self, small_bundle, tmp_path):
        net = get_trained_network(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        assert (tmp_path / "models" / "network2_trained.npz").exists()
        # Second call loads from cache and matches exactly.
        again = get_trained_network(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        x = small_bundle.test.images[:4]
        np.testing.assert_allclose(net.forward(x), again.forward(x))

    def test_force_retrain_overwrites(self, small_bundle, tmp_path):
        get_trained_network("network2", dataset=small_bundle, cache_dir=tmp_path)
        net = get_trained_network(
            "network2",
            dataset=small_bundle,
            cache_dir=tmp_path,
            force_retrain=True,
        )
        assert net is not None


class TestQuantized:
    def test_quantize_and_cache_round_trip(self, small_bundle, tmp_path):
        qm = get_quantized("network2", dataset=small_bundle, cache_dir=tmp_path)
        assert set(qm.search.thresholds) == {0, 3}
        assert 0.0 <= qm.quantized_test_error <= 1.0
        _, meta_path = quantized_cache_paths("network2", cache_dir=tmp_path)
        assert meta_path.exists()
        assert qm.digest == recipe_digest("network2")
        assert qm.digest in meta_path.name

        cached = get_quantized(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        assert cached.search.thresholds == qm.search.thresholds
        x = small_bundle.test.images[:4]
        np.testing.assert_allclose(
            qm.search.network.forward(x), cached.search.network.forward(x)
        )

    def test_binarized_network_usable_from_cache(self, small_bundle, tmp_path):
        get_quantized("network2", dataset=small_bundle, cache_dir=tmp_path)
        cached = get_quantized(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        bn = cached.search.binarized()
        err = bn.error_rate(small_bundle.test.images, small_bundle.test.labels)
        assert err == pytest.approx(cached.quantized_test_error, abs=1e-9)


class TestDigestCache:
    def test_different_search_configs_do_not_collide(
        self, small_bundle, tmp_path
    ):
        from repro.core.threshold_search import SearchConfig

        coarse = SearchConfig(thres_max=0.1, search_step=0.02)
        default_npz, _ = quantized_cache_paths("network2", cache_dir=tmp_path)
        coarse_npz, _ = quantized_cache_paths(
            "network2", search_config=coarse, cache_dir=tmp_path
        )
        assert default_npz != coarse_npz

        qm_default = get_quantized(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        qm_coarse = get_quantized(
            "network2",
            dataset=small_bundle,
            search_config=coarse,
            cache_dir=tmp_path,
        )
        assert qm_default.digest != qm_coarse.digest
        # Both artefacts coexist on disk: reloading the default config
        # must NOT hand back the coarse model (the pre-digest cache
        # keyed on the network name alone did exactly that).
        reloaded = get_quantized(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        assert reloaded.search.thresholds == qm_default.search.thresholds

    def test_digest_stable_and_network_specific(self):
        assert recipe_digest("network2") == recipe_digest("network2")
        assert recipe_digest("network1") != recipe_digest("network2")


class TestWarmRegistry:
    def test_warm_model_returns_same_object(self, small_bundle, tmp_path):
        clear_warm_models()
        first = warm_model(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        second = warm_model(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        assert first is second
        clear_warm_models()
        third = warm_model(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        assert third is not first
        assert third.search.thresholds == first.search.thresholds

    def test_force_bypasses_registry(self, small_bundle, tmp_path):
        clear_warm_models()
        first = warm_model(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        fresh = warm_model(
            "network2", dataset=small_bundle, cache_dir=tmp_path, force=True
        )
        assert fresh is not first


class TestDeepNetwork:
    def test_build_structure(self):
        from repro.zoo import build_deep_network

        net = build_deep_network()
        weighted = [l for l in net.layers if hasattr(l, "weight_matrix")]
        assert len(weighted) == 5
        assert net.forward(np.zeros((1, 1, 28, 28))).shape == (1, 10)

    def test_trains_and_caches(self, small_bundle, tmp_path):
        from repro.zoo import get_deep_network

        net = get_deep_network(dataset=small_bundle, cache_dir=tmp_path)
        assert (tmp_path / "models" / "deep_demo.npz").exists()
        again = get_deep_network(dataset=small_bundle, cache_dir=tmp_path)
        x = small_bundle.test.images[:2]
        np.testing.assert_allclose(net.forward(x), again.forward(x))


class TestCorruptCache:
    """Corrupt cache artifacts must behave like cache misses (regression:
    a mangled ``.npz`` used to crash ``get_trained_network`` with
    ``zipfile.BadZipFile``)."""

    def test_corrupt_trained_npz_retrains(
        self, small_bundle, tmp_path, caplog
    ):
        good = get_trained_network(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        npz = tmp_path / "models" / "network2_trained.npz"
        npz.write_bytes(b"this is not a zip archive")
        with caplog.at_level("WARNING", logger="repro.zoo"):
            net = get_trained_network(
                "network2", dataset=small_bundle, cache_dir=tmp_path
            )
        assert any("corrupt model cache" in r.message for r in caplog.records)
        # Retrained from scratch with the same recipe -> same weights.
        x = small_bundle.test.images[:4]
        np.testing.assert_allclose(net.forward(x), good.forward(x))
        # And the corrupt artifact was replaced by a loadable one.
        again = get_trained_network(
            "network2", dataset=small_bundle, cache_dir=tmp_path
        )
        np.testing.assert_allclose(again.forward(x), good.forward(x))

    def test_corrupt_quantized_meta_requantizes(
        self, small_bundle, tmp_path, caplog
    ):
        qm = get_quantized("network2", dataset=small_bundle, cache_dir=tmp_path)
        _, meta = quantized_cache_paths("network2", cache_dir=tmp_path)
        meta.write_text("{ truncated")
        with caplog.at_level("WARNING", logger="repro.zoo"):
            redo = get_quantized(
                "network2", dataset=small_bundle, cache_dir=tmp_path
            )
        assert any("corrupt model cache" in r.message for r in caplog.records)
        assert redo.search.thresholds == qm.search.thresholds

    def test_truncated_quantized_npz_requantizes(
        self, small_bundle, tmp_path, caplog
    ):
        qm = get_quantized("network2", dataset=small_bundle, cache_dir=tmp_path)
        npz, _ = quantized_cache_paths("network2", cache_dir=tmp_path)
        npz.write_bytes(npz.read_bytes()[:100])
        with caplog.at_level("WARNING", logger="repro.zoo"):
            redo = get_quantized(
                "network2", dataset=small_bundle, cache_dir=tmp_path
            )
        assert any("corrupt model cache" in r.message for r in caplog.records)
        assert redo.search.thresholds == qm.search.thresholds

    def test_save_is_atomic_no_tmp_left_behind(self, small_bundle, tmp_path):
        get_trained_network("network2", dataset=small_bundle, cache_dir=tmp_path)
        leftovers = list((tmp_path / "models").glob("*.tmp"))
        assert leftovers == []
