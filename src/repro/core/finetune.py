"""Quantization-aware fine-tuning for binarized-activation networks.

The paper's Algorithm 1 is post-training: thresholds are searched but the
weights never see the quantization.  That works for the shallow Table 2
networks (<~1% accuracy cost) but compounds on deeper stacks (see the
deep-network example).  The related work it builds on — Kim & Smaragdis'
bitwise networks trained by "noisy propagation" [10] and Fieres et al.'s
threshold-neuron training [11] — points at the remedy: let the weights
adapt to the 1-bit activations.

This module implements the modern formulation, the **straight-through
estimator** (STE): the forward pass applies the exact hard threshold
``bit = (pre > t)`` while the backward pass treats the quantizer as the
identity within a window around the threshold,

    d bit / d pre  :=  1[ |pre - t| <= window ],

so gradients flow where the decision is close and vanish where it is
saturated.  Thresholds stay fixed (they are hardware references); only
the weights move, with a small learning rate so the re-scaled ranges
drift little.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import QuantizationError, TrainingError
from repro.nn.layers import Conv2D, Dense
from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Sequential
from repro.nn.optim import Adam, Optimizer

from repro.core.binarized import intermediate_quantizable_indices

__all__ = ["FinetuneConfig", "FinetuneHistory", "quantization_aware_finetune"]


@dataclass(frozen=True)
class FinetuneConfig:
    """Hyper-parameters of the STE fine-tuning loop."""

    epochs: int = 2
    batch_size: int = 64
    learning_rate: float = 3e-4
    #: STE pass-through window around the threshold, in units of the
    #: re-scaled [0, 1] activation range.
    ste_window: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise QuantizationError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise QuantizationError("learning rate must be positive")
        if self.ste_window <= 0:
            raise QuantizationError("ste_window must be positive")


@dataclass
class FinetuneHistory:
    """Per-epoch training loss/accuracy under hard quantization."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)


def quantization_aware_finetune(
    network: Sequential,
    thresholds: Dict[int, float],
    images: np.ndarray,
    labels: np.ndarray,
    config: Optional[FinetuneConfig] = None,
    optimizer: Optional[Optimizer] = None,
) -> FinetuneHistory:
    """Fine-tune weights **in place** under hard 1-bit activations.

    The network must already be re-scaled and carry thresholds for every
    intermediate weighted layer (i.e. be the output of Algorithm 1).
    Training runs with the exact binarized forward pass, so the loss
    being minimised is the deployed network's loss.
    """
    config = config if config is not None else FinetuneConfig()
    optimizer = (
        optimizer if optimizer is not None else Adam(config.learning_rate)
    )
    expected = intermediate_quantizable_indices(network)
    missing = [i for i in expected if i not in thresholds]
    if missing:
        raise QuantizationError(
            f"missing thresholds for layers {missing}; run Algorithm 1 first"
        )
    if len(images) == 0:
        raise TrainingError("cannot fine-tune on an empty dataset")

    rng = np.random.default_rng(config.seed)
    history = FinetuneHistory()
    n = len(images)

    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        epoch_correct = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            batch_x, batch_y = images[idx], labels[idx]

            network.zero_grad()
            logits, loss, correct = _ste_step(
                network, thresholds, batch_x, batch_y, config.ste_window
            )
            if not np.isfinite(loss):
                raise TrainingError(f"loss became non-finite ({loss})")
            optimizer.step(network.parameter_groups())
            epoch_loss += loss * len(idx)
            epoch_correct += correct

        history.train_loss.append(epoch_loss / n)
        history.train_accuracy.append(epoch_correct / n)
    return history


def _ste_step(
    network: Sequential,
    thresholds: Dict[int, float],
    batch_x: np.ndarray,
    batch_y: np.ndarray,
    window: float,
):
    """One forward/backward pass with hard quantization + STE gradients."""
    pre_activations: Dict[int, np.ndarray] = {}
    x = batch_x
    for index, layer in enumerate(network.layers):
        x = layer.forward(x, train=True)
        if isinstance(layer, (Conv2D, Dense)) and index in thresholds:
            pre_activations[index] = x
            x = (x > thresholds[index]).astype(np.float64)
    logits = x
    loss, grad = softmax_cross_entropy(logits, batch_y)
    correct = int((logits.argmax(axis=-1) == batch_y).sum())

    for index in reversed(range(len(network.layers))):
        layer = network.layers[index]
        if index in pre_activations:
            # Straight-through: gradient passes where the pre-activation
            # is within `window` of the threshold, else it is clipped.
            mask = (
                np.abs(pre_activations[index] - thresholds[index]) <= window
            )
            grad = grad * mask
        grad = layer.backward(grad)
    return logits, loss, correct
