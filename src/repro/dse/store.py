"""Resumable run store: append-only JSONL keyed by candidate digest.

One study run owns one directory (default ``.cache/dse/<name>_<digest>``)
holding:

* ``manifest.json`` — the :func:`repro.obs.manifest.run_manifest` of the
  study, written once on first open and *verified* on every reopen: a
  directory whose manifest digest disagrees with the study being run is
  refused rather than silently mixed (the study digest keys the store,
  so this only trips when a directory is reused by hand);
* ``records.jsonl`` — one JSON object per completed evaluation attempt,
  appended and fsync-friendly (a crash can at worst truncate the final
  line, which :meth:`RunStore.load` tolerates and reports).

Resumption is digest-based, not index-based: a record belongs to a
candidate through ``candidate["digest"]``, so re-running the same study
skips exactly the candidates whose evaluation already succeeded — even
if the surviving records arrived out of order from a worker pool.

The store is single-writer by design: only the parent runner process
appends (workers return results over the pool channel), so no file
locking is needed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro import obs
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.dse.study import Study

__all__ = ["RunStore"]

logger = obs.get_logger("dse.store")


def default_store_root() -> Path:
    """Default root for study run directories (``.cache/dse``)."""
    from repro.zoo import default_cache_dir

    return default_cache_dir() / "dse"


class RunStore:
    """Append-only, digest-verified record store for one study run."""

    def __init__(self, directory: Path, study_digest: str) -> None:
        self.directory = Path(directory)
        self.study_digest = study_digest
        self.records_path = self.directory / "records.jsonl"
        self.manifest_path = self.directory / "manifest.json"

    @classmethod
    def for_study(
        cls, study: "Study", root: Optional[Path] = None
    ) -> "RunStore":
        """The store directory a study owns under ``root``."""
        digest = study.digest()
        base = Path(root) if root is not None else default_store_root()
        return cls(base / f"{study.name}_{digest}", digest)

    # -- manifest --------------------------------------------------------
    def ensure_manifest(self, study: "Study") -> Dict[str, Any]:
        """Create the run manifest, or verify it against ``study``.

        Returns the manifest.  Raises :class:`ConfigurationError` when
        the directory already belongs to a different study definition.
        """
        if self.manifest_path.exists():
            manifest = json.loads(self.manifest_path.read_text())
            recorded = manifest.get("config_digest")
            if recorded != self.study_digest:
                raise ConfigurationError(
                    f"run store {self.directory} belongs to study digest "
                    f"{recorded!r}, not {self.study_digest!r}; refusing to "
                    "mix runs — use a fresh --out directory"
                )
            return manifest
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = obs.run_manifest(
            seed=study.seed, config=study, study=study.name
        )
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return manifest

    # -- records ---------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> None:
        """Append one evaluation record (one JSON line)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with self.records_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def load(self) -> List[Dict[str, Any]]:
        """All parseable records, in append order.

        A torn final line (crash mid-append) is dropped with a warning;
        a corrupt line elsewhere is also skipped, so a damaged store
        degrades to re-evaluating the affected candidates rather than
        refusing to resume.
        """
        if not self.records_path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with self.records_path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    logger.warning(
                        "%s: dropping corrupt record at line %d",
                        self.records_path,
                        lineno,
                    )
        return records

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Latest successful record per candidate digest.

        Later records win, so a candidate that failed and was retried in
        a subsequent run resolves to its eventual success.
        """
        done: Dict[str, Dict[str, Any]] = {}
        for record in self.load():
            digest = record.get("digest")
            if digest and record.get("status") == "ok":
                done[digest] = record
        return done
