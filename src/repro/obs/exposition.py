"""HTTP exposition of the live telemetry plane (stdlib only).

A daemon-threaded :class:`http.server.ThreadingHTTPServer` publishing a
:class:`~repro.obs.live.TelemetryPlane`:

==================  =====================================================
``/metrics``        Prometheus text format (0.0.4): every counter, gauge
                    and histogram in the registry plus the live SLO
                    window (``repro_slo_latency_p99_ms`` etc.)
``/metrics.json``   the same data as structured JSON (live status +
                    the raw ``as_dict`` payload + the power estimate)
``/healthz``        liveness: ``{"ok": true, ...}`` with uptime and the
                    registry sequence number
``/flight``         dump the flight-recorder ring as JSON
==================  =====================================================

Metric names map ``/``-separated registry scopes onto the Prometheus
grammar: ``serve/latency_ms`` becomes ``repro_serve_latency_ms``;
counters get the conventional ``_total`` suffix; histograms expose
cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``.  The
registry's fixed-bin histograms have an implicit lower bound, so mass
observed below the first edge appears in ``_count``/``+Inf`` but no
finite bucket — the same truncation the registry itself applies.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.obs.log import get_logger

__all__ = ["render_prometheus", "merge_prometheus", "ExpositionServer"]

logger = get_logger("obs.exposition")

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_VALUE_ESCAPE = re.compile(r'(["\\\n])')


def _prom_name(name: str, prefix: str = "repro") -> str:
    flat = _NAME_SANITIZE.sub("_", name.strip("/").replace("/", "_"))
    return f"{prefix}_{flat}" if prefix else flat


def _label_body(labels: Optional[Dict[str, str]]) -> str:
    """``key="value"`` pairs (sorted, escaped), without the braces."""
    if not labels:
        return ""
    return ",".join(
        '{}="{}"'.format(
            _NAME_SANITIZE.sub("_", str(key)),
            _LABEL_VALUE_ESCAPE.sub(r"\\\1", str(value)).replace("\n", "\\n"),
        )
        for key, value in sorted(labels.items())
    )


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(
    metrics: dict,
    extra_gauges: Optional[Dict[str, object]] = None,
    extra_counters: Optional[Dict[str, object]] = None,
    prefix: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Prometheus text-format exposition of an ``as_dict()`` payload.

    ``extra_gauges``/``extra_counters`` let the caller add synthesized
    series (the SLO window stats) without writing them into the
    registry itself.  ``labels`` stamps every series with constant
    labels (``{shard="shard-0"}``) — how the gateway keeps N shards'
    identically-named series apart on one aggregated endpoint.
    """
    lines = []
    base = _label_body(labels)
    suffix = f"{{{base}}}" if base else ""

    counters = dict(metrics.get("counters", {}))
    if extra_counters:
        counters.update(extra_counters)
    for name in sorted(counters):
        prom = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{suffix} {_prom_value(counters[name])}")

    gauges = dict(metrics.get("gauges", {}))
    if extra_gauges:
        gauges.update(extra_gauges)
    for name in sorted(gauges):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{suffix} {_prom_value(gauges[name])}")

    for name in sorted(metrics.get("histograms", {})):
        hist = metrics["histograms"][name]
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for edge, count in zip(hist["edges"][1:], hist["counts"]):
            cumulative += count
            bucket = _label_body(
                dict(labels or {}, le=_prom_value(float(edge)))
            )
            lines.append(f"{prom}_bucket{{{bucket}}} {cumulative}")
        inf_bucket = _label_body(dict(labels or {}, le="+Inf"))
        lines.append(f'{prom}_bucket{{{inf_bucket}}} {hist["count"]}')
        lines.append(f"{prom}_sum{suffix} {_prom_value(hist['sum'])}")
        lines.append(f"{prom}_count{suffix} {hist['count']}")
    return "\n".join(lines) + "\n"


def merge_prometheus(parts) -> str:
    """Concatenate per-source expositions into one valid document.

    Each part carries its own ``# TYPE`` headers; the text format
    requires a metric's header once per document with all its series in
    one contiguous group, so the merge buckets every series line under
    its (deduplicated) header, preserving first-seen metric order.
    This is how the gateway publishes N shard registries behind a
    single ``/metrics``.
    """
    groups: "Dict[str, list]" = {}
    order = []
    for part in parts:
        current: Optional[list] = None
        for line in part.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE "):
                if line not in groups:
                    groups[line] = []
                    order.append(line)
                current = groups[line]
            elif current is not None:
                current.append(line)
            else:  # headerless prelude line: keep it, unheadered
                if line not in groups:
                    groups[line] = []
                    order.append(line)
    lines = []
    for header in order:
        lines.append(header)
        lines.extend(groups[header])
    return "\n".join(lines) + "\n"


class _PlaneHandler(BaseHTTPRequestHandler):
    """Routes one request against the bound plane (see ExpositionServer)."""

    plane = None  # injected by ExpositionServer via a subclass attribute
    server_version = "repro-exposition/1.0"
    protocol_version = "HTTP/1.1"

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._reply(status, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        plane = self.plane
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            # Any provider with prometheus_text/metrics_json/health/
            # flight_dump can sit behind this server (a TelemetryPlane,
            # or the gateway's aggregated multi-shard view, which has
            # no single recorder).
            recorder = getattr(plane, "recorder", None)
            if recorder is not None:
                recorder.metrics.inc("obs/scrapes")
            if path == "/metrics":
                body = plane.prometheus_text().encode("utf-8")
                self._reply(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/metrics.json":
                self._reply_json(plane.metrics_json())
            elif path == "/healthz":
                self._reply_json(plane.health())
            elif path == "/flight":
                self._reply_json(plane.flight_dump(reason="scrape"))
            else:
                self._reply_json(
                    {
                        "error": f"unknown path {path!r}",
                        "paths": [
                            "/metrics",
                            "/metrics.json",
                            "/healthz",
                            "/flight",
                        ],
                    },
                    status=404,
                )
        except BrokenPipeError:  # scraper went away mid-reply
            pass
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            logger.warning("exposition error on %s: %s", path, exc)
            try:
                self._reply_json({"error": str(exc)}, status=500)
            except Exception:  # noqa: BLE001
                pass

    def log_message(self, fmt: str, *args) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)


class ExpositionServer:
    """A telemetry plane on an HTTP port, served from a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url`
    after construction.  Use as a context manager or call
    :meth:`start`/:meth:`stop`.
    """

    def __init__(self, plane, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundPlaneHandler", (_PlaneHandler,), {"plane": plane})
        self.plane = plane
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ExpositionServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-exposition",
            daemon=True,
        )
        self._thread.start()
        logger.info("telemetry exposition listening on %s/metrics", self.url)
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "ExpositionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
