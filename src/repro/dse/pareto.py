"""n-objective Pareto analysis: fronts, dominated volume, constraints.

Generalises the two-objective ``minimise`` front that used to live in
``repro.analysis.sweeps`` to any number of objectives with explicit
senses: an objective is a plain key (minimised), ``"key:max"`` /
``"key:min"``, or a ``(key, sense)`` pair.  On top sit the two summary
tools a design-space report needs:

* :func:`dominated_volume` — the hypervolume of the region dominated by
  the front up to a reference point (the nadir of the row set by
  default), the standard scalar "how good is this front" indicator;
* :func:`apply_constraints` — declarative row filters such as
  ``"accuracy >= 0.9"`` (see :mod:`repro.dse.expr`), used for
  constraint-filtered fronts like "best energy at no more than 0.5%
  accuracy loss".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

from repro.dse.expr import safe_eval

__all__ = [
    "normalise_objectives",
    "pareto_front",
    "dominated_volume",
    "apply_constraints",
]

Objective = Union[str, Tuple[str, str]]
Row = Dict[str, Any]


def normalise_objectives(
    objectives: Sequence[Objective],
) -> Tuple[Tuple[str, str], ...]:
    """Normalise objective specs to ``((key, 'min'|'max'), ...)``."""
    if not objectives:
        raise ConfigurationError("need at least one objective")
    normalised: List[Tuple[str, str]] = []
    for objective in objectives:
        if isinstance(objective, str):
            key, _, sense = objective.partition(":")
            sense = sense or "min"
        else:
            try:
                key, sense = objective
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"objective must be 'key', 'key:sense' or (key, sense), "
                    f"got {objective!r}"
                ) from None
        if sense not in ("min", "max"):
            raise ConfigurationError(
                f"objective sense must be 'min' or 'max', got {sense!r} "
                f"for {key!r}"
            )
        if not key:
            raise ConfigurationError(f"empty objective key in {objective!r}")
        normalised.append((key, sense))
    return tuple(normalised)


def _signed_values(
    rows: Sequence[Row], objectives: Tuple[Tuple[str, str], ...]
) -> List[Tuple[float, ...]]:
    """Rows as all-minimise coordinate tuples (max objectives negated)."""
    for row in rows:
        for key, _ in objectives:
            if key not in row:
                raise ConfigurationError(f"row missing objective {key!r}")
            if row[key] is None:
                raise ConfigurationError(
                    f"row has no value for objective {key!r} (None)"
                )
    return [
        tuple(
            float(row[key]) if sense == "min" else -float(row[key])
            for key, sense in objectives
        )
        for row in rows
    ]


def pareto_front(
    rows: Sequence[Row],
    objectives: Optional[Sequence[Objective]] = None,
    *,
    minimise: Optional[Sequence[str]] = None,
) -> List[Row]:
    """Non-dominated subset of ``rows`` under the given objectives.

    A row is kept when no other row is at least as good on every
    objective and strictly better on one.  ``minimise`` is the legacy
    two-objective spelling (all objectives minimised) and maps onto
    ``objectives`` unchanged.
    """
    if minimise is not None:
        if objectives is not None:
            raise ConfigurationError(
                "pass either objectives or the legacy minimise, not both"
            )
        objectives = tuple(minimise)
    if objectives is None:
        objectives = ("energy_uj", "area_mm2")
    specs = normalise_objectives(objectives)
    rows = list(rows)
    coords = _signed_values(rows, specs)

    front: List[Row] = []
    for i, candidate in enumerate(coords):
        dominated = False
        for j, other in enumerate(coords):
            if i == j:
                continue
            if all(o <= c for o, c in zip(other, candidate)) and any(
                o < c for o, c in zip(other, candidate)
            ):
                dominated = True
                break
        if not dominated:
            front.append(rows[i])
    return front


def _hypervolume(
    points: List[Tuple[float, ...]], reference: Tuple[float, ...]
) -> float:
    """Exact hypervolume by slicing objectives (minimisation form).

    Exponential in the number of objectives in the worst case, which is
    fine for the front sizes (tens of points, <= 4-5 objectives) a DSE
    report handles.
    """
    points = [p for p in points if all(pi < ri for pi, ri in zip(p, reference))]
    if not points:
        return 0.0
    if len(reference) == 1:
        return reference[0] - min(p[0] for p in points)
    volume = 0.0
    levels = sorted({p[-1] for p in points})
    for i, level in enumerate(levels):
        upper = levels[i + 1] if i + 1 < len(levels) else reference[-1]
        if upper <= level:
            continue
        slab = [p[:-1] for p in points if p[-1] <= level]
        volume += (upper - level) * _hypervolume(slab, reference[:-1])
    return volume


def dominated_volume(
    rows: Sequence[Row],
    objectives: Sequence[Objective],
    reference: Optional[Dict[str, float]] = None,
) -> float:
    """Hypervolume dominated by ``rows`` up to a reference point.

    ``reference`` maps objective keys to the reference value in original
    (un-negated) units.  By default the nadir of ``rows`` (componentwise
    worst value) offset by 10% of each objective's span is used — the
    offset keeps nadir-touching points (and whole degenerate dimensions
    where every row ties) contributing volume, and the default is a pure
    function of the row set, so the indicator is reproducible across
    resumed runs of the same study without external anchors.
    """
    specs = normalise_objectives(objectives)
    rows = list(rows)
    if not rows:
        return 0.0
    coords = _signed_values(rows, specs)
    if reference is None:
        ref = []
        for k in range(len(specs)):
            worst = max(point[k] for point in coords)
            span = worst - min(point[k] for point in coords)
            ref.append(worst + (0.1 * span if span > 0 else 1.0))
        ref = tuple(ref)
    else:
        for key, _ in specs:
            if key not in reference:
                raise ConfigurationError(
                    f"reference point missing objective {key!r}"
                )
        ref = tuple(
            float(reference[key]) if sense == "min" else -float(reference[key])
            for key, sense in specs
        )
    return _hypervolume(coords, ref)


def apply_constraints(
    rows: Sequence[Row],
    constraints: Sequence[Union[str, Callable[[Row], bool]]],
) -> List[Row]:
    """Rows satisfying every constraint.

    Constraints are declarative expressions over row keys
    (``"accuracy >= 0.9"``) or plain callables.  A row missing a name an
    expression uses is a :class:`~repro.errors.ConfigurationError` — a
    typo in a constraint should not silently filter everything out.
    """
    kept = []
    for row in rows:
        ok = True
        for constraint in constraints:
            if callable(constraint):
                satisfied = constraint(row)
            else:
                satisfied = safe_eval(constraint, row)
            if not satisfied:
                ok = False
                break
        if ok:
            kept.append(row)
    return kept
