"""Unit tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(3, 8, 3, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 10, 10)))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_matches_forward(self, rng):
        layer = Conv2D(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer.forward(rng.normal(size=(1, 3, 9, 9)))
        assert out.shape[1:] == layer.output_shape((3, 9, 9))

    def test_invalid_dims_raise(self):
        with pytest.raises(ConfigurationError):
            Conv2D(0, 4, 3)
        with pytest.raises(ConfigurationError):
            Conv2D(1, -1, 3)

    def test_channel_mismatch_in_output_shape(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.output_shape((2, 8, 8))

    def test_weight_matrix_round_trip(self, rng):
        layer = Conv2D(3, 5, 3, rng=rng)
        matrix = layer.weight_matrix
        assert matrix.shape == (27, 5)
        layer.set_weight_matrix(matrix * 2.0)
        np.testing.assert_allclose(layer.weight_matrix, matrix * 2.0)

    def test_weight_matrix_equivalence(self, rng):
        """Conv forward equals im2col @ weight_matrix, the crossbar view."""
        from repro.nn.functional import im2col

        layer = Conv2D(2, 3, 3, use_bias=False, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        cols = im2col(x, 3, 3)
        manual = cols @ layer.weight_matrix
        np.testing.assert_allclose(out.transpose(0, 2, 3, 1).reshape(-1, 3), manual)

    def test_set_weight_matrix_bad_shape(self, rng):
        layer = Conv2D(3, 5, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.set_weight_matrix(np.zeros((5, 27)))

    def test_backward_requires_forward_train(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        layer.forward(rng.normal(size=(1, 1, 5, 5)))  # train=False
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2, 3, 3)))

    def test_backward_accumulates_grads(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer.forward(x, train=True)
        layer.backward(np.ones_like(out))
        first = layer.grads["weight"].copy()
        layer.forward(x, train=True)
        layer.backward(np.ones_like(out))
        np.testing.assert_allclose(layer.grads["weight"], 2 * first)

    def test_zero_grad(self, rng):
        layer = Conv2D(1, 2, 3, rng=rng)
        x = rng.normal(size=(1, 1, 5, 5))
        out = layer.forward(x, train=True)
        layer.backward(np.ones_like(out))
        layer.zero_grad()
        assert np.all(layer.grads["weight"] == 0.0)

    def test_num_params(self, rng):
        layer = Conv2D(3, 4, 5, use_bias=True, rng=rng)
        assert layer.num_params == 4 * 3 * 25 + 4

    def test_no_bias(self, rng):
        layer = Conv2D(1, 2, 3, use_bias=False, rng=rng)
        assert "bias" not in layer.params


class TestDense:
    def test_forward(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(
            out, x @ layer.params["weight"] + layer.params["bias"]
        )

    def test_weight_matrix_is_crossbar_image(self, rng):
        layer = Dense(4, 3, rng=rng)
        assert layer.weight_matrix.shape == (4, 3)

    def test_bad_input_shape(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(5, 7)))

    def test_backward_numeric(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(2, 4))
        out = layer.forward(x, train=True)
        grad_out = rng.normal(size=out.shape)
        grad_x = layer.backward(grad_out)

        def loss(inputs):
            return float((layer.forward(inputs) * grad_out).sum())

        eps = 1e-6
        bumped = x.copy()
        bumped[0, 1] += eps
        numeric = (loss(bumped) - loss(x)) / eps
        assert grad_x[0, 1] == pytest.approx(numeric, rel=1e-5)

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 3)

    def test_output_shape_validation(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ShapeError):
            layer.output_shape((5,))
        assert layer.output_shape((4,)) == (3,)

    def test_set_weight_matrix(self, rng):
        layer = Dense(4, 3, rng=rng)
        new = np.ones((4, 3))
        layer.set_weight_matrix(new)
        np.testing.assert_allclose(layer.weight_matrix, new)
        with pytest.raises(ShapeError):
            layer.set_weight_matrix(np.ones((3, 4)))


class TestReLULayer:
    def test_forward_backward(self, rng):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        out = layer.forward(x, train=True)
        np.testing.assert_allclose(out, [[0.0, 2.0]])
        grad = layer.backward(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(grad, [[0.0, 4.0]])

    def test_backward_without_train_raises(self):
        layer = ReLU()
        layer.forward(np.zeros((1, 2)))
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((1, 2)))

    def test_quantizable_flag(self):
        assert not ReLU.quantizable
        assert Conv2D.quantizable
        assert Dense.quantizable


class TestMaxPoolLayer:
    def test_forward(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_invalid_pool(self):
        with pytest.raises(ConfigurationError):
            MaxPool2D(0)

    def test_output_shape_partial(self):
        layer = MaxPool2D(2)
        assert layer.output_shape((8, 11, 11)) == (8, 5, 5)

    def test_backward(self, rng):
        layer = MaxPool2D(2)
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert grad.sum() == out.size


class TestFlatten:
    def test_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x, train=True)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)

    def test_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)
