"""Future-work benches: non-ideality robustness and the power-time knob.

The paper's conclusion promises analysis of "the register buffer design
in Conv layers" and a "design optimization flow ... considering the
non-ideal factors of RRAM and circuit".  These benches provide both
measurements on our models:

* Monte-Carlo accuracy of the SEI design under programming variation,
  read noise and sense-amp noise (network2);
* the §5.3 power-time tradeoff via fabric replication, and the conv
  line-buffer plan (network1).
"""

import pytest

from repro.analysis import sei_variation_sweep, sense_amp_noise_sweep
from repro.arch import buffer_plan, format_table, power_time_tradeoff

from benchmarks.conftest import heading

SAMPLES = 400


def run_noise(quantized_models, dataset):
    qm = quantized_models["network2"]
    net, th = qm.search.network, qm.search.thresholds
    images = dataset.test.images[:SAMPLES]
    labels = dataset.test.labels[:SAMPLES]
    program = sei_variation_sweep(
        net, th, images, labels, sigmas=(0.0, 0.2, 0.5, 1.0), trials=5
    )
    read = sei_variation_sweep(
        net, th, images, labels, sigmas=(0.0, 0.02, 0.05, 0.1),
        trials=5, kind="read",
    )
    stuck = sei_variation_sweep(
        net, th, images, labels, sigmas=(0.0, 0.005, 0.02, 0.05),
        trials=5, kind="stuck",
    )
    sense = sense_amp_noise_sweep(
        net, th, images, labels, sigmas=(0.0, 0.1, 0.2, 0.4), trials=5
    )
    return program, read, stuck, sense


@pytest.mark.benchmark(group="robustness")
def test_nonideality_robustness(benchmark, quantized_models, dataset):
    program, read, stuck, sense = benchmark.pedantic(
        run_noise, args=(quantized_models, dataset), rounds=1, iterations=1
    )

    heading("Non-ideality robustness of the SEI design (network2)")
    for result, label in (
        (program, "programming variation (fraction of a level step)"),
        (read, "read / telegraph noise (relative)"),
        (stuck, "stuck-at-g_min cell fault rate"),
        (sense, "sense-amp noise (relative to threshold)"),
    ):
        print(f"\n-- {label} --")
        print(format_table(result.rows(), floatfmt="{:.4f}"))

    # Noiseless trials all agree with the software quantized error.
    base = quantized_models["network2"].quantized_test_error
    for result in (program, read, stuck, sense):
        assert result.mean_error[0] == pytest.approx(base, abs=0.02)
    # Moderate noise degrades gracefully: < 5% absolute at mid levels.
    assert program.mean_error[2] < base + 0.05
    assert read.mean_error[2] < base + 0.05
    # Extreme sense-amp noise visibly hurts (sanity: the knob works).
    assert sense.mean_error[-1] > sense.mean_error[0]


def run_timing():
    tradeoff = power_time_tradeoff(
        "network1", "sei", replications=(1, 2, 4, 8)
    )
    baseline = power_time_tradeoff(
        "network1", "dac_adc", replications=(1,)
    )
    buffers = {
        structure: buffer_plan("network1", structure)
        for structure in ("dac_adc", "sei")
    }
    return tradeoff, baseline, buffers


@pytest.mark.benchmark(group="timing")
def test_power_time_tradeoff_and_buffers(benchmark):
    tradeoff, baseline, buffers = benchmark.pedantic(
        run_timing, rounds=1, iterations=1
    )

    heading("§5.3 power-time tradeoff (network1, SEI fabric replication)")
    print(format_table(tradeoff))
    print("\nbaseline (DAC+ADC, replication 1):")
    print(format_table(baseline))

    heading("§6 conv register-buffer plan (network1)")
    for structure, rows in buffers.items():
        print(f"\n-- {structure} --")
        print(format_table(rows))

    # Energy per picture is replication-invariant; power scales ~linearly.
    energies = [row["energy_uj"] for row in tradeoff]
    assert max(energies) == pytest.approx(min(energies), rel=1e-9)
    assert tradeoff[-1]["power_mw"] > 4 * tradeoff[0]["power_mw"]
    assert tradeoff[-1]["latency_us"] < tradeoff[0]["latency_us"] / 4

    # SEI at full replication still uses less power than the baseline at 1.
    assert tradeoff[2]["power_mw"] < baseline[0]["power_mw"]

    # 1-bit intermediate data cuts buffer bytes by 8x.
    assert buffers["dac_adc"][0]["full map (bytes)"] == pytest.approx(
        8 * buffers["sei"][0]["full map (bytes)"], abs=1
    )
