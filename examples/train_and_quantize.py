"""Walkthrough of Algorithm 1: train a CNN, then search 1-bit thresholds.

Shows each step of §3.1 explicitly — training with the long-tail
activation penalty, the data-distribution analysis that motivates 1-bit
quantization (Table 1), the layer-by-layer greedy threshold search, and
the resulting accuracy (Table 3).

Run:  python examples/train_and_quantize.py [network1|network2|network3]
"""

import sys

from repro.analysis import conv_output_distribution
from repro.arch import format_table
from repro.configs import build_network, get_network_spec
from repro.core import SearchConfig, search_thresholds
from repro.nn import Adam, TrainConfig, Trainer, evaluate_accuracy
from repro.zoo import ZOO_RECIPES, get_dataset


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "network3"
    spec = get_network_spec(name)
    recipe = ZOO_RECIPES[name]
    dataset = get_dataset()

    # -- 1. Train the float CNN -------------------------------------------
    print(f"== Training {name} (Table 2 configuration) ==")
    for key, value in spec.describe().items():
        print(f"  {key}: {value}")
    network = build_network(spec, seed=recipe.seed)
    trainer = Trainer(
        network,
        Adam(recipe.learning_rate),
        TrainConfig(
            epochs=recipe.epochs,
            batch_size=recipe.batch_size,
            seed=recipe.seed,
            activation_l1=recipe.activation_l1,
            verbose=True,
        ),
    )
    trainer.fit(
        dataset.train.images,
        dataset.train.labels,
        dataset.test.images,
        dataset.test.labels,
    )
    float_acc = evaluate_accuracy(
        network, dataset.test.images, dataset.test.labels
    )
    print(f"float test error: {1 - float_acc:.2%}")

    # -- 2. The Table 1 motivation: long-tail activations ----------------
    print("\n== Intermediate-data distribution (Table 1) ==")
    dist = conv_output_distribution(network, dataset.train.images[:500])
    rows = [
        {
            "layer": layer,
            "0~1/16": f"{f[0]:.2%}",
            "1/16~1/8": f"{f[1]:.2%}",
            "1/8~1/4": f"{f[2]:.2%}",
            "1/4~1": f"{f[3]:.2%}",
        }
        for layer, f in dist.items()
    ]
    print(format_table(rows))

    # -- 3. Algorithm 1: greedy threshold search -----------------------------
    print("\n== Algorithm 1: threshold search (on the training set) ==")
    result = search_thresholds(
        network,
        dataset.train.images[:2500],
        dataset.train.labels[:2500],
        SearchConfig(),
    )
    for layer_index, threshold in result.thresholds.items():
        print(
            f"  layer {layer_index}: re-scale by "
            f"{result.divisors[layer_index]:.3f}, threshold = {threshold:.3f} "
            f"(training acc {result.layer_accuracy[layer_index]:.2%})"
        )

    # -- 4. Evaluate the 1-bit network on the held-out test set -----------
    binarized = result.binarized()
    error = binarized.error_rate(dataset.test.images, dataset.test.labels)
    print("\n== Table 3 row ==")
    print(f"before quantization: {1 - float_acc:.2%}")
    print(f"after quantization:  {error:.2%}")
    print(
        f"(paper, on MNIST: {spec.paper_error_before:.2%} -> "
        f"{spec.paper_error_after:.2%})"
    )


if __name__ == "__main__":
    main()
