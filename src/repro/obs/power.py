"""SEI dynamic-power estimator fed by observed row activity.

The Table 5 cost model (``repro.arch.cost``) prices an SEI design
*statically*: every crossbar activation is assumed to drive all physical
rows (``row_drive_events = positions * physical_rows``) and read every
cell.  But the whole point of the SEI structure (Fig. 3b / Equ. 6) is
that a transmission gate only connects a row when its 1-bit input is 1 —
an inactive row draws neither drive nor cell-read energy.  This module
turns the *observed* per-MVM active-row counts recorded by the
instrumented inference paths into a dynamic energy estimate, and reports
the saving against the all-rows-active static assumption.

Metric convention (written by :func:`record_mvm_batch`, read by
:func:`estimate_from_metrics`) — all names under ``hw/layer{i}/``:

========================  =====================================================
``mvms``                  crossbar activations (samples x blocks)
``positions``             samples pushed through the layer (one logical MVM)
``active_rows``           sum of active *logical* rows over all positions
``skipped_rows``          active rows whose drive/reads the runtime
                          activation estimator skipped
``skipped_slots``         raw row slots skipped (active or not)
``est_positions``         output-bit decisions owned by the estimator
``est_decided``           of those, decided early (skippable work left)
``sa_events``             sense-amplifier (threshold) decisions
``noise_draws``           per-cell conductance noise samples drawn
``popcount_events``       packed words popcounted (packed engine only)
``rows`` (gauge)          logical rows of the layer's weight matrix
``cols`` (gauge)          output columns
``blocks`` (gauge)        split blocks (1 = unsplit)
``cells_per_weight``      physical cells per logical weight (gauge)
``row_activity`` (hist)   per-position fraction of rows active, in [0, 1]
========================  =====================================================

Energy model per layer (constants from
:class:`repro.hw.tech.TechnologyModel`):

* RRAM reads:   ``selected_rows * cells_per_weight * cols * cell_read_energy_pj``
* row drivers:  ``selected_rows * cells_per_weight * row_drive_energy_pj``
* sense amps:   ``sa_events * sense_amp_energy_pj``
* digital vote: ``positions * cols * digital_op_energy_pj`` when the layer
  is split with a digital merge (``blocks > 1``)

where ``selected_rows = active_rows - skipped_rows`` — rows whose word
lines actually switched.  Without a runtime estimator installed
``skipped_rows`` is zero and ``selected_rows == active_rows`` (the
historical accounting); with one, the priced work shrinks by exactly
the rows the :mod:`repro.core.estimate` bounds proved unnecessary.

The *static* variant substitutes ``positions * rows`` for
``selected_rows``; the static SA term stays at the full comparison count
(the SA fires every cycle regardless of input), so the reported saving
isolates the input-switched effect plus the estimator's early-decision
skipping on top of it.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["record_mvm_batch", "estimate_from_metrics"]

_LAYER_METRIC = re.compile(r"^hw/layer(\d+)/(\w+)$")


def record_mvm_batch(
    metrics: Any,
    layer_index: int,
    bits: Optional[np.ndarray],
    cols: int,
    *,
    rows: Optional[int] = None,
    active_counts: Optional[np.ndarray] = None,
    blocks: int = 1,
    cells_per_weight: int,
    sa_events: Optional[int] = None,
    noise_draws: int = 0,
    digital_merge: Optional[bool] = None,
    popcount_events: int = 0,
    skipped_rows: int = 0,
    skipped_slots: int = 0,
    est_positions: int = 0,
    est_decided: int = 0,
) -> None:
    """Record one batched crossbar invocation into the metrics registry.

    ``bits`` is the (N, rows) 1-bit input block actually presented to the
    crossbar rows; ``sa_events`` defaults to one comparison per column
    per block per sample (pass it explicitly for analog-merged layers,
    where the blocks share one sense-amp bank).

    Engines that never materialise a float bit matrix (the packed
    popcount engine) pass ``bits=None`` with ``active_counts`` (the
    per-position active-row totals, already popcounted) and ``rows``
    (the logical row count) instead — the derived metrics are identical.
    ``popcount_events`` counts the packed words popcounted, the packed
    engine's analogue of the per-row activity reductions.
    """
    if active_counts is not None:
        if rows is None:
            raise ValueError("active_counts requires an explicit rows count")
        active_per_position = np.asarray(active_counts).reshape(-1)
        n = active_per_position.shape[0]
    else:
        bits = np.asarray(bits)
        if bits.ndim == 1:
            bits = bits[None, :]
        n, rows = bits.shape
        active_per_position = bits.sum(axis=1)
    scope = metrics.scope(f"hw/layer{layer_index}")
    scope.inc("mvms", n * blocks)
    scope.inc("positions", n)
    scope.inc("active_rows", int(active_per_position.sum()))
    scope.inc(
        "sa_events", n * cols * blocks if sa_events is None else sa_events
    )
    if noise_draws:
        scope.inc("noise_draws", noise_draws)
    if popcount_events:
        scope.inc("popcount_events", popcount_events)
    if skipped_rows:
        scope.inc("skipped_rows", skipped_rows)
    if skipped_slots:
        scope.inc("skipped_slots", skipped_slots)
    if est_positions:
        scope.inc("est_positions", est_positions)
    if est_decided:
        scope.inc("est_decided", est_decided)
    scope.set_gauge("rows", rows)
    scope.set_gauge("cols", cols)
    scope.set_gauge("blocks", blocks)
    scope.set_gauge(
        "digital_merge",
        int(blocks > 1 if digital_merge is None else digital_merge),
    )
    scope.set_gauge("cells_per_weight", cells_per_weight)
    if rows:
        scope.observe("row_activity", active_per_position / rows)


def _layer_metrics(exported: dict) -> Dict[int, Dict[str, Any]]:
    """Group the flat counter/gauge/histogram export by layer index."""
    layers: Dict[int, Dict[str, Any]] = {}
    for kind in ("counters", "gauges", "histograms"):
        for name, value in exported.get(kind, {}).items():
            match = _LAYER_METRIC.match(name)
            if match:
                index = int(match.group(1))
                layers.setdefault(index, {})[match.group(2)] = value
    return layers


def estimate_from_metrics(metrics: Any, tech: Any = None) -> Optional[dict]:
    """Dynamic-power estimate from recorded ``hw/layer*`` metrics.

    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` or an
    already-exported ``as_dict()`` mapping.  Returns ``None`` when no
    hardware counters were recorded.  Energies are in pJ for the whole
    recorded workload (all positions, all layers).
    """
    from repro.hw.tech import TechnologyModel

    if tech is None:
        tech = TechnologyModel()
    exported = metrics.as_dict() if hasattr(metrics, "as_dict") else metrics
    per_layer = _layer_metrics(exported)
    if not per_layer:
        return None

    layers: Dict[str, dict] = {}
    totals = {
        "dynamic_pj": 0.0,
        "static_pj": 0.0,
        "rram_read_pj": 0.0,
        "row_drive_pj": 0.0,
        "sense_amp_pj": 0.0,
        "digital_pj": 0.0,
        "active_rows": 0.0,
        "skipped_rows": 0.0,
        "selected_rows": 0.0,
        "est_positions": 0.0,
        "est_decided": 0.0,
    }
    for index in sorted(per_layer):
        m = per_layer[index]
        positions = float(m.get("positions", 0))
        active_rows = float(m.get("active_rows", 0))
        skipped_rows = float(m.get("skipped_rows", 0))
        est_positions = float(m.get("est_positions", 0))
        est_decided = float(m.get("est_decided", 0))
        sa_events = float(m.get("sa_events", 0))
        rows = float(m.get("rows", 0))
        cols = float(m.get("cols", 0))
        blocks = float(m.get("blocks", 1))
        cells = float(m.get("cells_per_weight", 1))

        # Post-skip selection: only rows the estimator did not prove
        # unnecessary actually switch their word lines.
        selected_rows = max(active_rows - skipped_rows, 0.0)
        rram_pj = selected_rows * cells * cols * tech.cell_read_energy_pj
        drive_pj = selected_rows * cells * tech.row_drive_energy_pj
        sa_pj = sa_events * tech.sense_amp_energy_pj
        digital_merge = float(m.get("digital_merge", 1.0 if blocks > 1 else 0.0))
        digital_pj = (
            positions * cols * tech.digital_op_energy_pj if digital_merge else 0.0
        )
        dynamic_pj = rram_pj + drive_pj + sa_pj + digital_pj

        static_active = positions * rows
        static_pj = (
            static_active * cells * cols * tech.cell_read_energy_pj
            + static_active * cells * tech.row_drive_energy_pj
            + sa_pj
            + digital_pj
        )

        activity = (
            active_rows / static_active if static_active else None
        )
        layers[str(index)] = {
            "positions": int(positions),
            "mean_row_activity": activity,
            "active_rows": int(active_rows),
            "skipped_rows": int(skipped_rows),
            "selected_rows": int(selected_rows),
            "estimator_hit_rate": (
                est_decided / est_positions if est_positions else None
            ),
            "rram_read_pj": rram_pj,
            "row_drive_pj": drive_pj,
            "sense_amp_pj": sa_pj,
            "digital_pj": digital_pj,
            "dynamic_pj": dynamic_pj,
            "static_pj": static_pj,
            "saving_vs_static": (
                1.0 - dynamic_pj / static_pj if static_pj else None
            ),
        }
        totals["dynamic_pj"] += dynamic_pj
        totals["static_pj"] += static_pj
        totals["rram_read_pj"] += rram_pj
        totals["row_drive_pj"] += drive_pj
        totals["sense_amp_pj"] += sa_pj
        totals["digital_pj"] += digital_pj
        totals["active_rows"] += active_rows
        totals["skipped_rows"] += skipped_rows
        totals["selected_rows"] += selected_rows
        totals["est_positions"] += est_positions
        totals["est_decided"] += est_decided

    totals["saving_vs_static"] = (
        1.0 - totals["dynamic_pj"] / totals["static_pj"]
        if totals["static_pj"]
        else None
    )
    totals["skipped_rows_pct"] = (
        totals["skipped_rows"] / totals["active_rows"]
        if totals["active_rows"]
        else None
    )
    totals["estimator_hit_rate"] = (
        totals["est_decided"] / totals["est_positions"]
        if totals["est_positions"]
        else None
    )
    return {
        "model": "sei-dynamic (Table 5 constants, observed row activity)",
        "tech": {
            "cell_read_energy_pj": tech.cell_read_energy_pj,
            "row_drive_energy_pj": tech.row_drive_energy_pj,
            "sense_amp_energy_pj": tech.sense_amp_energy_pj,
            "digital_op_energy_pj": tech.digital_op_energy_pj,
        },
        "layers": layers,
        "total": totals,
    }
