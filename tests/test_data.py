"""Unit and property tests for repro.data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    IMAGE_SIZE,
    NUM_CLASSES,
    Dataset,
    DigitStyle,
    digit_skeleton,
    generate_images,
    load_mnist_like,
    render_digit,
)
from repro.errors import ConfigurationError, ShapeError


class TestRenderDigit:
    def test_shape_and_range(self):
        for digit in range(10):
            image = render_digit(digit)
            assert image.shape == (IMAGE_SIZE, IMAGE_SIZE)
            assert image.min() >= 0.0 and image.max() <= 1.0

    def test_has_ink(self):
        for digit in range(10):
            assert render_digit(digit).max() > 0.5

    def test_digits_are_distinct(self):
        images = [render_digit(d).ravel() for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert np.abs(images[i] - images[j]).mean() > 0.01

    def test_invalid_digit_raises(self):
        with pytest.raises(ConfigurationError):
            render_digit(10)
        with pytest.raises(ConfigurationError):
            digit_skeleton(-1)

    def test_deterministic(self):
        np.testing.assert_allclose(render_digit(3), render_digit(3))

    def test_style_rotation_changes_image(self):
        base = render_digit(7)
        rotated = render_digit(7, DigitStyle(rotation_deg=12))
        assert not np.allclose(base, rotated)

    def test_style_validation(self):
        with pytest.raises(ConfigurationError):
            render_digit(1, DigitStyle(stroke_radius=0.0))
        with pytest.raises(ConfigurationError):
            render_digit(1, DigitStyle(scale_x=-1.0))
        with pytest.raises(ConfigurationError):
            DigitStyle(noise_std=-0.1).validate()

    def test_thicker_strokes_more_ink(self):
        thin = render_digit(0, DigitStyle(stroke_radius=0.02))
        thick = render_digit(0, DigitStyle(stroke_radius=0.05))
        assert thick.sum() > thin.sum()


class TestGenerateImages:
    def test_shapes(self):
        images, labels = generate_images(25, seed=0)
        assert images.shape == (25, 1, IMAGE_SIZE, IMAGE_SIZE)
        assert labels.shape == (25,)
        assert labels.dtype == np.int64

    def test_deterministic_by_seed(self):
        a = generate_images(10, seed=5)
        b = generate_images(10, seed=5)
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = generate_images(10, seed=5)
        b = generate_images(10, seed=6)
        assert not np.allclose(a[0], b[0])

    def test_balanced_labels(self):
        _, labels = generate_images(200, seed=0)
        counts = np.bincount(labels, minlength=NUM_CLASSES)
        assert counts.min() == counts.max() == 20

    def test_explicit_labels(self):
        labels_in = [3] * 7
        images, labels = generate_images(7, seed=0, labels=labels_in)
        np.testing.assert_array_equal(labels, labels_in)

    def test_bad_labels_raise(self):
        with pytest.raises(ConfigurationError):
            generate_images(3, labels=[0, 1])
        with pytest.raises(ConfigurationError):
            generate_images(2, labels=[0, 10])

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            generate_images(0)

    def test_jitter_zero_is_canonical(self):
        images, labels = generate_images(
            4, seed=0, jitter=0.0, labels=[2, 2, 2, 2]
        )
        # With zero jitter the only variation left is stroke radius/noise
        # (noise scaled by jitter = 0), so geometry is identical.
        assert np.abs(images[0] - images[1]).max() < 0.35

    def test_jitter_out_of_range(self):
        with pytest.raises(ConfigurationError):
            generate_images(3, jitter=3.0)

    def test_values_in_unit_range(self):
        images, _ = generate_images(30, seed=2)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_mnist_like_ink_fraction(self):
        """Thin strokes: ink fraction in the MNIST ballpark (~13%)."""
        images, _ = generate_images(100, seed=3)
        assert 0.05 < images.mean() < 0.25


class TestDataset:
    def test_length_and_batches(self, rng):
        ds = Dataset(rng.normal(size=(10, 1, 4, 4)), rng.integers(0, 3, 10))
        assert len(ds) == 10
        batches = list(ds.batches(4))
        assert [len(b[1]) for b in batches] == [4, 4, 2]

    def test_mismatched_lengths_raise(self, rng):
        with pytest.raises(ShapeError):
            Dataset(rng.normal(size=(10, 1, 4, 4)), rng.integers(0, 3, 9))

    def test_images_must_be_4d(self, rng):
        with pytest.raises(ShapeError):
            Dataset(rng.normal(size=(10, 16)), rng.integers(0, 3, 10))

    def test_subset_first_n(self, rng):
        ds = Dataset(rng.normal(size=(10, 1, 4, 4)), np.arange(10))
        sub = ds.subset(4)
        np.testing.assert_array_equal(sub.labels, [0, 1, 2, 3])

    def test_subset_random(self, rng):
        ds = Dataset(rng.normal(size=(10, 1, 4, 4)), np.arange(10))
        sub = ds.subset(5, seed=1)
        assert len(sub) == 5
        assert len(set(sub.labels.tolist())) == 5

    def test_subset_bad_size(self, rng):
        ds = Dataset(rng.normal(size=(5, 1, 4, 4)), np.arange(5))
        with pytest.raises(ConfigurationError):
            ds.subset(0)
        with pytest.raises(ConfigurationError):
            ds.subset(6)


class TestLoadMnistLike:
    def test_generates_and_caches(self, tmp_path):
        ds = load_mnist_like(50, 20, seed=1, cache_dir=tmp_path)
        assert len(ds.train) == 50 and len(ds.test) == 20
        assert (tmp_path / "mnist_like_50_20_1.npz").exists()
        again = load_mnist_like(50, 20, seed=1, cache_dir=tmp_path)
        np.testing.assert_allclose(ds.train.images, again.train.images)

    def test_train_test_disjoint_generation(self, tmp_path):
        ds = load_mnist_like(30, 30, seed=1, cache=False)
        assert not np.allclose(ds.train.images, ds.test.images)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            load_mnist_like(0, 10, cache=False)

    def test_metadata(self, tmp_path):
        ds = load_mnist_like(20, 10, seed=2, cache_dir=tmp_path)
        assert ds.num_classes == 10
        assert ds.image_shape == (1, 28, 28)


@settings(max_examples=15, deadline=None)
@given(digit=st.integers(0, 9), rotation=st.floats(-20, 20))
def test_rendering_always_valid_property(digit, rotation):
    image = render_digit(digit, DigitStyle(rotation_deg=rotation))
    assert image.shape == (28, 28)
    assert np.isfinite(image).all()
    assert 0.0 <= image.min() and image.max() <= 1.0
    assert image.max() > 0.1  # some ink remains visible
