"""A tiny safe expression evaluator for declarative DSE conditions.

Design-space definitions need conditions — "this axis only exists for
SEI engines", "cell bits must divide weight bits", "keep rows with
accuracy >= 0.9" — and those conditions must be part of the study
*digest* so a resumed run can prove it is continuing the same study.
Python callables don't digest deterministically (their ``repr`` carries
a memory address), so conditions are written as small expression
strings and evaluated here against a mapping of names.

Supported syntax: literals, names (resolved from the mapping), ``and`` /
``or`` / ``not``, comparisons (including chained ones), arithmetic
(``+ - * / // % **``), unary minus, and the ``abs``/``min``/``max``
calls.  Anything else — attribute access, subscripts, lambdas, other
calls — is rejected at parse time, so a study file can never smuggle
arbitrary code into a worker.
"""

from __future__ import annotations

import ast
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = ["safe_eval", "expr_names"]

_ALLOWED_CALLS = {"abs": abs, "min": min, "max": max, "round": round}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a**b,
}

_CMP_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
}


def _eval_node(node: ast.AST, names: Mapping[str, Any], expr: str) -> Any:
    if isinstance(node, ast.Expression):
        return _eval_node(node.body, names, expr)
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id not in names:
            raise ConfigurationError(
                f"unknown name {node.id!r} in expression {expr!r} "
                f"(available: {', '.join(sorted(map(str, names)))})"
            )
        return names[node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_eval_node(e, names, expr) for e in node.elts)
    if isinstance(node, ast.BoolOp):
        if isinstance(node.op, ast.And):
            result = True
            for value in node.values:
                result = _eval_node(value, names, expr)
                if not result:
                    return result
            return result
        result = False
        for value in node.values:
            result = _eval_node(value, names, expr)
            if result:
                return result
        return result
    if isinstance(node, ast.UnaryOp):
        operand = _eval_node(node.operand, names, expr)
        if isinstance(node.op, ast.Not):
            return not operand
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
    if isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
        return _BIN_OPS[type(node.op)](
            _eval_node(node.left, names, expr),
            _eval_node(node.right, names, expr),
        )
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, names, expr)
        for op, comparator in zip(node.ops, node.comparators):
            if type(op) not in _CMP_OPS:
                break
            right = _eval_node(comparator, names, expr)
            if not _CMP_OPS[type(op)](left, right):
                return False
            left = right
        else:
            return True
    if isinstance(node, ast.Call):
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ALLOWED_CALLS
            and not node.keywords
        ):
            args = [_eval_node(a, names, expr) for a in node.args]
            return _ALLOWED_CALLS[node.func.id](*args)
    raise ConfigurationError(
        f"unsupported syntax {type(node).__name__} in expression {expr!r}"
    )


def expr_names(expr: str) -> frozenset:
    """Variable names an expression references (allowed calls excluded)."""
    if not isinstance(expr, str) or not expr.strip():
        raise ConfigurationError(
            f"expression must be a non-empty string, got {expr!r}"
        )
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(f"invalid expression {expr!r}: {exc}") from None
    return frozenset(
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and node.id not in _ALLOWED_CALLS
    )


def safe_eval(expr: str, names: Mapping[str, Any]) -> Any:
    """Evaluate a restricted expression against a name mapping."""
    if not isinstance(expr, str) or not expr.strip():
        raise ConfigurationError(f"expression must be a non-empty string, got {expr!r}")
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(f"invalid expression {expr!r}: {exc}") from None
    return _eval_node(tree, names, expr)
