"""Sliding-window SLO tracking over metrics snapshots.

The serving metrics (``serve/latency_ms`` histogram, request/rejection
counters, ``hw/layer*`` activity) are *lifetime* accumulators — useless
for "is the service healthy right now".  :class:`SloTracker` turns a
stream of :class:`~repro.obs.metrics.MetricsSnapshot` readings into
windowed statistics by differencing the newest snapshot against the
oldest one inside the window:

* tail latency — p50/p95/p99/p999 estimated from the windowed delta of
  the log-spaced latency histogram bins
  (:func:`repro.obs.metrics.quantile_from_counts`);
* error / rejection rates — failed and backpressure-rejected requests
  as a fraction of window admissions;
* SEI dynamic power per request — the window's ``hw/layer*`` activity
  deltas priced through :func:`repro.obs.power.estimate_from_metrics`
  (Table 5 constants, observed row activity), divided by the window's
  completed requests: joules *this* traffic actually cost.

Targets live in :class:`SloConfig`; every observation in breach of a
configured target bumps that target's breach counter and fires the
``on_breach`` callback (the telemetry plane uses it to trigger a flight
-recorder dump).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.metrics import (
    MetricsSnapshot,
    delta_metrics,
    quantile_from_counts,
)

__all__ = ["SloConfig", "SloTracker", "QUANTILES"]

#: The tail quantiles every window reports, as (label, q) pairs.
QUANTILES = (
    ("p50_ms", 0.50),
    ("p95_ms", 0.95),
    ("p99_ms", 0.99),
    ("p999_ms", 0.999),
)


@dataclass(frozen=True)
class SloConfig:
    """Window length and the targets a healthy window must satisfy.

    ``None`` disables a target; breach counters only exist for
    configured targets.
    """

    #: Sliding-window length in seconds.
    window_s: float = 60.0
    #: Windowed p99 request latency must stay below this (milliseconds).
    p99_ms: Optional[float] = None
    #: Windowed p50 request latency must stay below this (milliseconds).
    p50_ms: Optional[float] = None
    #: Failed requests / window admissions must stay below this.
    max_error_rate: Optional[float] = None
    #: Backpressure rejections / window admissions must stay below this.
    max_rejection_rate: Optional[float] = None
    #: Windowed SEI dynamic energy per completed request (joules).
    max_joules_per_request: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")

    def targets(self) -> Dict[str, float]:
        """The configured (non-``None``) targets by stat name."""
        pairs = {
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "error_rate": self.max_error_rate,
            "rejection_rate": self.max_rejection_rate,
            "joules_per_request": self.max_joules_per_request,
        }
        return {name: value for name, value in pairs.items() if value is not None}


def _window_stats(base: MetricsSnapshot, head: MetricsSnapshot) -> dict:
    """Windowed serving statistics between two snapshots."""
    from repro.obs.power import estimate_from_metrics

    span_s = head.monotonic_s - base.monotonic_s
    delta = delta_metrics(base.metrics, head.metrics)
    counters = delta["counters"]
    requests = int(counters.get("serve/requests", 0))
    failed = int(counters.get("serve/failed_requests", 0))
    rejected = int(counters.get("serve/rejected", 0))
    batches = int(counters.get("serve/batches", 0))
    admitted = requests + failed
    offered = admitted + rejected

    stats: dict = {
        "window_s": span_s,
        "seq": head.seq,
        "requests": requests,
        "batches": batches,
        "failed_requests": failed,
        "rejected": rejected,
        "requests_per_second": requests / span_s if span_s > 0 else None,
        "mean_batch_size": requests / batches if batches else None,
        "error_rate": failed / admitted if admitted else None,
        "rejection_rate": rejected / offered if offered else None,
        "queue_depth": head.metrics.get("gauges", {}).get(
            "serve/queue_depth"
        ),
        "queue_depth_high_watermark": head.metrics.get("gauges", {}).get(
            "serve/queue_depth_high_watermark"
        ),
    }

    latency = delta["histograms"].get("serve/latency_ms")
    for label, q in QUANTILES:
        stats[label] = (
            quantile_from_counts(latency["edges"], latency["counts"], q)
            if latency is not None
            else None
        )

    power = estimate_from_metrics(delta)
    if power is not None and requests:
        dynamic_pj = power["total"]["dynamic_pj"]
        stats["dynamic_pj"] = dynamic_pj
        stats["joules_per_request"] = dynamic_pj * 1e-12 / requests
        stats["power_saving_vs_static"] = power["total"]["saving_vs_static"]
        stats["skipped_rows_pct"] = power["total"]["skipped_rows_pct"]
        stats["estimator_hit_rate"] = power["total"]["estimator_hit_rate"]
    else:
        stats["dynamic_pj"] = None
        stats["joules_per_request"] = None
        stats["power_saving_vs_static"] = None
        stats["skipped_rows_pct"] = None
        stats["estimator_hit_rate"] = None
    return stats


def _empty_stats(head: MetricsSnapshot) -> dict:
    stats = {
        "window_s": 0.0,
        "seq": head.seq,
        "requests": 0,
        "batches": 0,
        "failed_requests": 0,
        "rejected": 0,
        "requests_per_second": None,
        "mean_batch_size": None,
        "error_rate": None,
        "rejection_rate": None,
        "queue_depth": head.metrics.get("gauges", {}).get(
            "serve/queue_depth"
        ),
        "queue_depth_high_watermark": head.metrics.get("gauges", {}).get(
            "serve/queue_depth_high_watermark"
        ),
        "dynamic_pj": None,
        "joules_per_request": None,
        "power_saving_vs_static": None,
        "skipped_rows_pct": None,
        "estimator_hit_rate": None,
    }
    for label, _ in QUANTILES:
        stats[label] = None
    return stats


class SloTracker:
    """Feed me snapshots; I keep the window and count target breaches.

    ``observe`` is driven by whoever samples the registry — the
    exposition server on every scrape, ``repro-cli top`` on every
    frame, a benchmark loop.  Breaches are evaluated per observation:
    a window that stays in breach across N samples counts N (the
    counters measure *time in breach* at the sampling cadence, not
    distinct incidents).
    """

    def __init__(
        self,
        config: Optional[SloConfig] = None,
        on_breach: Optional[Callable[[str, float, float, dict], None]] = None,
    ) -> None:
        self.config = config if config is not None else SloConfig()
        self.on_breach = on_breach
        self.breach_counts: Dict[str, int] = {
            name: 0 for name in self.config.targets()
        }
        self.last: Optional[dict] = None
        self._snapshots: "deque[MetricsSnapshot]" = deque()

    @property
    def total_breaches(self) -> int:
        return sum(self.breach_counts.values())

    def observe(self, snapshot: MetricsSnapshot) -> dict:
        """Add one snapshot; returns the current window's statistics."""
        snaps = self._snapshots
        snaps.append(snapshot)
        horizon = snapshot.monotonic_s - self.config.window_s
        # Keep exactly one snapshot at-or-before the horizon as the
        # window base, so young windows still span their full age.
        while len(snaps) >= 2 and snaps[1].monotonic_s <= horizon:
            snaps.popleft()
        base = snaps[0]
        if len(snaps) < 2 or snapshot.monotonic_s <= base.monotonic_s:
            stats = _empty_stats(snapshot)
        else:
            stats = _window_stats(base, snapshot)
        stats["breaches"] = self._check(stats)
        stats["breach_counts"] = dict(self.breach_counts)
        self.last = stats
        return stats

    def _check(self, stats: dict) -> list:
        """Evaluate targets against one window; returns live breaches."""
        breaches = []
        for name, target in self.config.targets().items():
            observed = stats.get(name)
            if observed is None or observed <= target:
                continue
            self.breach_counts[name] += 1
            breaches.append(
                {"target": name, "observed": observed, "limit": target}
            )
            if self.on_breach is not None:
                try:
                    self.on_breach(name, observed, target, stats)
                except Exception:  # noqa: BLE001 - monitoring stays up
                    pass
        return breaches
