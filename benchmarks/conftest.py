"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation (see DESIGN.md §4).  They use the full-scale Table 2 networks
from :mod:`repro.zoo`; the first run trains them (a few minutes) and
caches weights + thresholds under ``.cache/models/``, so subsequent runs
are fast.

Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the regenerated tables.)
"""

from __future__ import annotations

import pytest

from repro.zoo import get_dataset, get_quantized


@pytest.fixture(scope="session")
def dataset():
    return get_dataset()


@pytest.fixture(scope="session")
def quantized_models(dataset):
    """Algorithm-1 bundles for the three Table 2 networks (cached)."""
    return {
        name: get_quantized(name, dataset=dataset)
        for name in ("network1", "network2", "network3")
    }


def heading(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
