"""Dynamic-threshold SEI structure for unipolar devices (§4.2, Fig. 4).

Some RRAM devices are unipolar (or have badly asymmetric bipolar
behaviour [16]), so negative extra-port voltages — the way
:class:`repro.core.sei.SEIMatrix` represents weight signs — are not
available.  The paper's alternative maps all signed weights onto
non-negative stored values through a linear transformation

    w = k * (w_stored - w0)            (Equ. 7)

and observes that after 1-bit quantization the decision (Equ. 8) becomes

    sum_{in_j=1} w_stored_j  >  Thres/k + w0 * #ones       (Equ. 9)

i.e. a threshold that depends on the input only through the *count of
active bits*.  The hardware realises the right-hand side with one extra
RRAM column whose cells all store ``w0`` and are selected by the same
input bits (so its output current is ``w0 * #ones``), plus the static
part stored in the bottom-right corner cell driven by an always-on bias
row; the sense amplifier then compares each kernel column against the
reference column directly.

The same column is reused by the splitting structure (§4.3) to give each
sub-matrix a threshold linear in its own ones-count — the "posteriori
knowledge of input data" compensation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, MappingError, ShapeError
from repro.hw.device import RRAMDevice
from repro.nn.layers import Layer

from repro.core.matrix_compute import (
    apply_matrix_fn,
    ensure_binary,
    layer_bias,
    layer_weight_matrix,
)
from repro.core.sei import decompose_weights

__all__ = ["LinearTransform", "DynamicThresholdMatrix", "dynamic_threshold_layer_compute"]


@dataclass(frozen=True)
class LinearTransform:
    """The (k, w0) map taking stored values back to signed weights."""

    k: float
    w0: float

    @classmethod
    def for_weights(cls, weights: np.ndarray) -> "LinearTransform":
        """Map the full signed range of ``weights`` onto stored [0, 1]."""
        w_min = float(weights.min(initial=0.0))
        w_max = float(weights.max(initial=0.0))
        span = w_max - w_min
        if span <= 0.0:
            span = 1.0
        return cls(k=span, w0=-w_min / span)

    def store(self, weights: np.ndarray) -> np.ndarray:
        """Signed weights -> non-negative stored values in [0, 1]."""
        return weights / self.k + self.w0

    def recover(self, stored: np.ndarray) -> np.ndarray:
        """Stored values -> signed weights (Equ. 7)."""
        return self.k * (stored - self.w0)


@dataclass
class DynamicThresholdMatrix:
    """A signed weight matrix on a unipolar-device SEI crossbar.

    ``fire(bits)`` implements the complete Fig. 4 structure: kernel
    columns against the dynamic reference column.  ``compute(bits)``
    returns the equivalent signed pre-threshold values so the matrix can
    also stand in as a plain layer compute.

    Biases are supported functionally (folded into the per-column static
    reference); the paper's networks only carry biases in the final FC
    layer, which is never thresholded.
    """

    weights: np.ndarray
    threshold: float
    bias: Optional[np.ndarray] = None
    device: Optional[RRAMDevice] = None
    weight_bits: int = 8
    max_crossbar_size: int = 512
    #: First-order IR-drop coefficient.  Both the kernel columns and the
    #: reference column live in the same crossbar, so the attenuation
    #: cancels out of the fire() comparison — the structure is robust to
    #: uniform wordline loss (unlike an external SA reference).
    ir_drop_lambda: float = 0.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.weights.ndim != 2:
            raise ShapeError(
                f"weights must be 2D, got shape {self.weights.shape}"
            )
        self.device = self.device if self.device is not None else RRAMDevice()
        self.transform = LinearTransform.for_weights(self.weights)
        stored = self.transform.store(self.weights)
        if stored.min(initial=0.0) < -1e-9 or stored.max(initial=0.0) > 1 + 1e-9:
            raise ConfigurationError(
                "linear transformation failed to map weights into [0, 1]"
            )

        slices, coefficients, scale = decompose_weights(
            np.clip(stored, 0.0, 1.0),
            self.weight_bits,
            self.device.bits,
            signed=False,
        )
        self._coefficients = coefficients
        self._scale = scale
        if self.physical_rows > self.max_crossbar_size:
            raise MappingError(
                f"needs {self.physical_rows} physical rows, exceeding "
                f"{self.max_crossbar_size}; split the matrix first"
            )

        rng = self.rng if self.rng is not None else np.random.default_rng()
        self._cells = np.stack(
            [
                self.device.conductance_to_normalized(self.device.program(s, rng))
                for s in slices
            ]
        )
        # Reference-column storage of w0.  The threshold column crosses the
        # same physical rows as the weights (two rows per logical weight),
        # so w0 is stored at the full weight precision: its high/low
        # nibbles occupy the two cells of each row pair, exactly like a
        # weight.  Programmed through the device so variation applies.
        w0_slices, w0_coeffs, w0_scale = decompose_weights(
            np.array([[self.transform.w0]]),
            self.weight_bits,
            self.device.bits,
            signed=False,
        )
        w0_value = 0.0
        cell_max = 2**self.device.bits - 1
        for coeff, cells in zip(w0_coeffs, w0_slices):
            programmed = self.device.conductance_to_normalized(
                self.device.program(cells, rng)
            )
            w0_value += coeff * float(programmed[0, 0]) * cell_max
        self._w0_cell = w0_value * w0_scale

        # Fused kernel: the slice rows of a column share one analog
        # current sum, so the crossbar equals a single stored matrix;
        # collapsing it once makes stored_sum() a single BLAS matmul.
        self._fused_stored = (
            np.tensordot(self._coefficients, self._cells, axes=1)
            * cell_max
            * self._scale
            * self.ir_drop_attenuation
        )

    # -- geometry ----------------------------------------------------------
    @property
    def logical_rows(self) -> int:
        return self.weights.shape[0]

    @property
    def cols(self) -> int:
        return self.weights.shape[1]

    @property
    def cells_per_weight(self) -> int:
        return len(self._coefficients)

    @property
    def physical_rows(self) -> int:
        """Slice rows plus the always-on bias row of Fig. 4."""
        return self.logical_rows * self.cells_per_weight + 1

    @property
    def physical_cols(self) -> int:
        """Kernel columns plus the dynamic-threshold column."""
        return self.cols + 1

    @property
    def num_cells(self) -> int:
        return self.physical_rows * self.physical_cols

    @property
    def ir_drop_attenuation(self) -> float:
        """Uniform attenuation applied to every column of the crossbar."""
        if self.ir_drop_lambda < 0:
            raise ConfigurationError("ir_drop_lambda must be non-negative")
        return 1.0 / (
            1.0
            + self.ir_drop_lambda * self.physical_rows / self.max_crossbar_size
        )

    # -- behaviour ----------------------------------------------------------------
    def stored_sum(self, bits: np.ndarray) -> np.ndarray:
        """Per-column sum of *stored* values over active inputs.

        Fused: one matmul against the pre-collapsed stored matrix (the
        slice merge *is* the analog current sum of Equ. 6).
        """
        bits = self._check_bits(bits)
        return bits @ self._fused_stored

    def stored_sum_reference(self, bits: np.ndarray) -> np.ndarray:
        """Pre-fusion per-slice loop, retained as the equivalence oracle."""
        bits = self._check_bits(bits)
        result = np.zeros(bits.shape[:-1] + (self.cols,))
        cell_max = 2**self.device.bits - 1
        for coeff, cells in zip(self._coefficients, self._cells):
            result = result + coeff * (bits @ cells) * cell_max
        return result * self._scale * self.ir_drop_attenuation

    def reference(self, bits: np.ndarray) -> np.ndarray:
        """The dynamic reference: ``Thres' + w0 * #ones`` per sample.

        Produced by the in-crossbar threshold column, so it suffers the
        same IR-drop attenuation as the kernel columns — which is exactly
        why the comparison stays correct under wordline loss.
        """
        bits = self._check_bits(bits)
        ones = bits.sum(axis=-1)
        static = (self.threshold - self._bias_vector()) / self.transform.k
        return (
            static + self._w0_cell * ones[..., None]
        ) * self.ir_drop_attenuation

    def fire(self, bits: np.ndarray) -> np.ndarray:
        """1-bit outputs of the sense amplifiers (Equ. 9)."""
        return (self.stored_sum(bits)[..., :] > self.reference(bits)).astype(
            np.float64
        )

    def compute(self, bits: np.ndarray) -> np.ndarray:
        """Equivalent signed pre-threshold values (for analog readout).

        Uses the stored cells and the ones-count correction, so device
        quantization/noise effects are included:
        ``k * (stored_sum - w0 * #ones) + bias``.
        """
        bits = self._check_bits(bits)
        ones = bits.sum(axis=-1)
        # The w0 correction comes from the (equally attenuated) reference
        # column, so it scales with the same IR-drop factor.
        correction = (
            self._w0_cell * ones[..., None] * self.ir_drop_attenuation
        )
        signed = self.transform.k * (self.stored_sum(bits) - correction)
        return signed + self._bias_vector()

    # -- internals ------------------------------------------------------------
    def _bias_vector(self) -> np.ndarray:
        if self.bias is None:
            return np.zeros(self.cols)
        bias = np.asarray(self.bias, dtype=np.float64)
        if bias.shape != (self.cols,):
            raise ShapeError(
                f"bias must have shape ({self.cols},), got {bias.shape}"
            )
        return bias

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.float64)
        if bits.shape[-1] != self.logical_rows:
            raise ShapeError(
                f"input has {bits.shape[-1]} bits, matrix has "
                f"{self.logical_rows} logical rows"
            )
        ensure_binary(bits, "inputs")
        return bits


def dynamic_threshold_layer_compute(
    layer: Layer,
    threshold: float,
    device: Optional[RRAMDevice] = None,
    weight_bits: int = 8,
    max_crossbar_size: int = 512,
    rng: Optional[np.random.Generator] = None,
):
    """Layer-compute hook backed by a DynamicThresholdMatrix.

    The hook returns the signed pre-threshold values, so the surrounding
    :class:`BinarizedNetwork` applies the same threshold and produces
    exactly the bits the Fig. 4 sense amplifiers would.
    """
    matrix = DynamicThresholdMatrix(
        layer_weight_matrix(layer),
        threshold=threshold,
        # apply_matrix_fn adds the layer bias; the matrix stays biasless
        # to avoid double counting.
        bias=None,
        device=device,
        weight_bits=weight_bits,
        max_crossbar_size=max_crossbar_size,
        rng=rng,
    )

    def compute(inner_layer: Layer, x: np.ndarray) -> np.ndarray:
        return apply_matrix_fn(inner_layer, x, matrix.compute)

    return compute
