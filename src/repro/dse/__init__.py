"""Design-space exploration for the SEI structure (``repro.dse``).

The subsystem splits into layers, lowest first:

* :mod:`repro.dse.expr` — the declarative condition language (digestable
  replacements for lambdas);
* :mod:`repro.dse.space` — parameter spaces: grid, random and
  conditional axes plus assignment constraints;
* :mod:`repro.dse.study` — named, digestable study definitions and the
  built-in registry (``sei_vs_adc`` reproduces the Table 3/5 comparison
  as a design-space study);
* :mod:`repro.dse.evaluate` — candidate scoring through the real
  hardware engines + cost model (or the synthetic harness evaluator);
* :mod:`repro.dse.store` / :mod:`repro.dse.runner` — the resumable
  append-only run store and the parallel, fault-tolerant runner;
* :mod:`repro.dse.pareto` — n-objective fronts, dominated volume and
  constraint filters;
* :mod:`repro.dse.sweeps` — the pure cost-model grid sweep (migrated
  from ``repro.analysis.sweeps``);
* :mod:`repro.dse.report` — deterministic JSON/markdown study reports.

CLI entry point: ``repro-cli explore`` (see :mod:`repro.cli`).
"""

from repro.dse.expr import expr_names, safe_eval
from repro.dse.pareto import (
    apply_constraints,
    dominated_volume,
    normalise_objectives,
    pareto_front,
)
from repro.dse.report import build_report, render_markdown, report_json
from repro.dse.runner import StudyResult, run_study
from repro.dse.space import GridAxis, ParameterSpace, RandomAxis
from repro.dse.store import RunStore
from repro.dse.study import (
    BUILTIN_STUDIES,
    Candidate,
    Study,
    available_studies,
    get_study,
)
from repro.dse.sweeps import design_space_sweep

__all__ = [
    # spaces & studies
    "GridAxis",
    "RandomAxis",
    "ParameterSpace",
    "Candidate",
    "Study",
    "BUILTIN_STUDIES",
    "available_studies",
    "get_study",
    # execution
    "run_study",
    "StudyResult",
    "RunStore",
    # analysis
    "pareto_front",
    "dominated_volume",
    "apply_constraints",
    "normalise_objectives",
    "design_space_sweep",
    # reporting
    "build_report",
    "render_markdown",
    "report_json",
    # expressions
    "safe_eval",
    "expr_names",
]
