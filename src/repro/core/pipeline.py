"""End-to-end flow: quantized network -> split, ADC-free hardware network.

This module glues the pieces of §4.3 together:

1. decide, per weighted layer, how many row blocks the SEI image needs
   (:func:`repro.core.splitting.required_blocks`);
2. choose the row partition (natural / random / homogenized);
3. calibrate the digital decision — block thresholds (static ``T/K`` or
   dynamic ``c0 + c1 * ones``), the vote count V, and for the final
   classifier its class threshold — greedily, layer by layer, on the
   training set (the same greedy protocol as Algorithm 1);
4. install the split computes into a :class:`BinarizedNetwork`.

The result is the network Table 4 evaluates: 1-bit quantized *and* split
across size-limited crossbars with purely digital merging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.nn import functional as F
from repro.nn.layers import Conv2D, Dense, Layer
from repro.nn.losses import accuracy
from repro.nn.network import Sequential

from repro.core.binarized import BinarizedNetwork
from repro.core.homogenize import (
    Partition,
    block_mean_distance,
    homogenize,
    natural_partition,
    random_partition,
)
from repro.core.matrix_compute import layer_bias, layer_weight_matrix
from repro.core.splitting import (
    SplitDecision,
    SplitMatrix,
    final_layer_vote_compute,
    required_blocks,
    split_layer_compute,
)

__all__ = ["SplitConfig", "SplitLayerReport", "SplitNetworkResult", "build_split_network"]


@dataclass(frozen=True)
class SplitConfig:
    """Configuration of the splitting flow."""

    max_crossbar_size: int = 512
    #: SEI cells per weight (4 = signed 8-bit weights on 4-bit cells).
    cells_per_weight: int = 4
    #: 'natural' | 'random' | 'homogenize'
    partition_method: str = "homogenize"
    #: Enable the dynamic (ones-count) block thresholds of §4.2/§4.3.
    dynamic: bool = False
    #: Candidate gamma values for the dynamic threshold interval.
    gamma_grid: Sequence[float] = (0.25, 0.5, 0.75, 1.0)
    #: Search the vote count V on the training set (else majority).
    vote_search: bool = True
    #: Hill-climbing iterations for homogenization.
    homogenize_iterations: int = 3000
    #: Number of candidate class thresholds for the final layer.
    final_threshold_grid: int = 24
    #: How a split *final classifier* merges its blocks:
    #: 'analog' — corresponding columns of the K crossbars sum their
    #: output currents into a winner-take-all readout (functionally exact,
    #: still ADC-free; the default, and what Table 4 assumes);
    #: 'vote' — fully digital: each block thresholds its columns and the
    #: argmax runs over per-class fired-block counts (coarser; ablation).
    final_layer_mode: str = "analog"
    #: Samples from the training set used for calibration.
    calibration_samples: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.partition_method not in ("natural", "random", "homogenize"):
            raise ConfigurationError(
                "partition_method must be 'natural', 'random' or "
                f"'homogenize', got {self.partition_method!r}"
            )
        if self.final_layer_mode not in ("analog", "vote"):
            raise ConfigurationError(
                "final_layer_mode must be 'analog' or 'vote', got "
                f"{self.final_layer_mode!r}"
            )


@dataclass
class SplitLayerReport:
    """What happened to one split layer."""

    layer_index: int
    num_blocks: int
    partition: Partition
    decision: SplitDecision
    #: Equ. 10 distance of the chosen partition and of the natural order.
    distance: float
    natural_distance: float
    #: Training accuracy after calibrating this layer.
    calibration_accuracy: float
    is_final: bool = False


@dataclass
class SplitNetworkResult:
    """A split hardware network plus per-layer reports."""

    binarized: BinarizedNetwork
    reports: Dict[int, SplitLayerReport] = field(default_factory=dict)

    @property
    def split_layers(self) -> List[int]:
        return sorted(self.reports)


def build_split_network(
    network: Sequential,
    thresholds: Dict[int, float],
    images: np.ndarray,
    labels: np.ndarray,
    config: Optional[SplitConfig] = None,
) -> SplitNetworkResult:
    """Split every oversized layer of a quantized network (see module doc).

    Parameters
    ----------
    network:
        The re-scaled network from Algorithm 1 (not copied; it is only
        read).
    thresholds:
        Per-layer quantization thresholds from Algorithm 1.
    images, labels:
        Training data for calibration (subset taken per the config).
    """
    config = config if config is not None else SplitConfig()
    rng = np.random.default_rng(config.seed)
    subset = min(config.calibration_samples, len(images))
    cal_images = images[:subset]
    cal_labels = labels[:subset]

    binarized = BinarizedNetwork(network, dict(thresholds))
    result = SplitNetworkResult(binarized=binarized)

    weighted = [
        i
        for i, layer in enumerate(network.layers)
        if isinstance(layer, (Conv2D, Dense))
    ]
    final_index = weighted[-1]

    with obs.span(
        "split.build",
        layers=len(weighted),
        method=config.partition_method,
        samples=subset,
    ) as build_sp:
        for layer_index in weighted:
            layer = network.layers[layer_index]
            matrix = layer_weight_matrix(layer)
            blocks = required_blocks(
                matrix.shape[0], config.max_crossbar_size,
                config.cells_per_weight,
            )
            if blocks <= 1:
                obs.count("split/layers_unsplit")
                continue
            obs.count("split/layers_split")

            with obs.span(
                "split.layer", index=layer_index, blocks=blocks
            ) as layer_sp:
                partition = _choose_partition(matrix, blocks, config, rng)
                is_final = layer_index == final_index
                layer_sp.set("is_final", is_final)

                if is_final and config.final_layer_mode == "analog":
                    # Blocks merge by analog current summing into the WTA
                    # readout: functionally exact, so no compute hook is
                    # installed; the report still records the physical
                    # split.
                    result.reports[layer_index] = SplitLayerReport(
                        layer_index=layer_index,
                        num_blocks=blocks,
                        partition=partition,
                        decision=SplitDecision(
                            block_threshold=0.0, vote_threshold=1
                        ),
                        distance=block_mean_distance(matrix, partition),
                        natural_distance=block_mean_distance(
                            matrix,
                            natural_partition(matrix.shape[0], blocks),
                        ),
                        calibration_accuracy=float("nan"),
                        is_final=True,
                    )
                    layer_sp.set("merge", "analog")
                    continue

                input_bits, fold = _layer_input_bits(
                    binarized, layer_index, cal_images
                )

                if is_final:
                    decision, cal_acc = _calibrate_final_layer(
                        binarized,
                        layer_index,
                        matrix,
                        partition,
                        input_bits,
                        fold,
                        cal_images,
                        cal_labels,
                        config,
                    )
                    split = SplitMatrix(
                        matrix, partition, decision, bias=layer_bias(layer)
                    )
                    binarized.layer_computes[layer_index] = (
                        final_layer_vote_compute(
                            layer,
                            split,
                            obs_index=layer_index,
                            cells_per_weight=config.cells_per_weight,
                        )
                    )
                else:
                    decision, cal_acc = _calibrate_hidden_layer(
                        binarized,
                        layer_index,
                        matrix,
                        partition,
                        thresholds[layer_index],
                        input_bits,
                        fold,
                        cal_images,
                        cal_labels,
                        config,
                    )
                    split = SplitMatrix(
                        matrix, partition, decision, bias=layer_bias(layer)
                    )
                    binarized.layer_computes[layer_index] = (
                        split_layer_compute(
                            layer,
                            split,
                            obs_index=layer_index,
                            cells_per_weight=config.cells_per_weight,
                        )
                    )
                layer_sp.set("calibration_accuracy", cal_acc)
                layer_sp.set("vote_threshold", decision.vote_threshold)

                result.reports[layer_index] = SplitLayerReport(
                    layer_index=layer_index,
                    num_blocks=blocks,
                    partition=partition,
                    decision=decision,
                    distance=block_mean_distance(matrix, partition),
                    natural_distance=block_mean_distance(
                        matrix, natural_partition(matrix.shape[0], blocks)
                    ),
                    calibration_accuracy=cal_acc,
                    is_final=is_final,
                )
        build_sp.set("layers_split", len(result.reports))

    return result


# -- internals -----------------------------------------------------------------


def _choose_partition(
    matrix: np.ndarray,
    blocks: int,
    config: SplitConfig,
    rng: np.random.Generator,
) -> Partition:
    if config.partition_method == "natural":
        return natural_partition(matrix.shape[0], blocks)
    if config.partition_method == "random":
        return random_partition(matrix.shape[0], blocks, rng)
    return homogenize(
        matrix,
        blocks,
        method="hillclimb",
        iterations=config.homogenize_iterations,
        seed=config.seed,
    )


def _layer_input_bits(
    binarized: BinarizedNetwork, layer_index: int, images: np.ndarray
):
    """(bits matrix, fold) for one layer on the calibration set.

    ``bits`` is ``(samples * positions, rows)``; ``fold`` maps an
    ``(samples * positions, cols)`` array back to the layer's output
    activation shape so the network tail can run on it.
    """
    captured = binarized.collect_binary_activations(images)
    if layer_index not in captured:
        raise ConfigurationError(
            f"layer {layer_index} receives analog inputs; only layers fed "
            "by quantized data can be split without ADCs"
        )
    x = captured[layer_index]
    layer = binarized.network.layers[layer_index]

    if isinstance(layer, Dense):
        def fold(out: np.ndarray) -> np.ndarray:
            return out

        return x, fold

    assert isinstance(layer, Conv2D)
    n, c, h, w = x.shape
    kernel = layer.kernel_size
    out_h = F.conv_output_size(h, kernel, layer.stride, layer.padding)
    out_w = F.conv_output_size(w, kernel, layer.stride, layer.padding)
    cols = F.im2col(x, kernel, kernel, layer.stride, layer.padding)

    def fold(out: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(
            out.reshape(n, out_h, out_w, layer.out_channels).transpose(
                0, 3, 1, 2
            )
        )

    return cols, fold


def _tail_accuracy(
    binarized: BinarizedNetwork,
    layer_index: int,
    layer_output: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Accuracy when the tail of the network runs on ``layer_output``.

    Deeper layers use whatever computes are already installed (greedy:
    none yet for not-yet-calibrated layers, i.e. exact float math).
    """
    x = layer_output
    for index in range(layer_index + 1, len(binarized.network.layers)):
        x = binarized.run_layer(index, x)
    return accuracy(x, labels)


def _calibrate_hidden_layer(
    binarized: BinarizedNetwork,
    layer_index: int,
    matrix: np.ndarray,
    partition: Partition,
    layer_threshold: float,
    input_bits: np.ndarray,
    fold,
    cal_images: np.ndarray,
    cal_labels: np.ndarray,
    config: SplitConfig,
) -> Tuple[SplitDecision, float]:
    """Grid-search (gamma, V) for a hidden split layer."""
    layer = binarized.network.layers[layer_index]
    probe = SplitMatrix(
        matrix,
        partition,
        SplitDecision(block_threshold=0.0, vote_threshold=1),
        bias=layer_bias(layer),
    )
    sums = probe.block_sums(input_bits)
    ones = probe.ones_per_block(input_bits)
    num_blocks = partition.num_blocks
    mean_total_ones = float(ones.sum(axis=1).mean())

    gammas = [0.0] + (list(config.gamma_grid) if config.dynamic else [])
    votes = (
        range(1, num_blocks + 1)
        if config.vote_search
        else [max(1, (num_blocks + 1) // 2)]
    )

    best: Tuple[float, SplitDecision] = (-1.0, SplitDecision(0.0))
    for gamma in gammas:
        slope = (
            gamma * layer_threshold / mean_total_ones
            if mean_total_ones > 0
            else 0.0
        )
        c0 = (layer_threshold - slope * mean_total_ones) / num_blocks
        thresholds = c0 + slope * ones
        block_bits = (sums > thresholds[:, :, None]).astype(np.float64)
        counts = block_bits.sum(axis=1)
        for vote in votes:
            obs.count("split/candidates_evaluated")
            out_bits = (counts >= vote).astype(np.float64)
            acc = _tail_accuracy(
                binarized, layer_index, fold(out_bits), cal_labels
            )
            if acc > best[0]:
                best = (
                    acc,
                    SplitDecision(
                        block_threshold=c0,
                        ones_slope=slope,
                        vote_threshold=int(vote),
                    ),
                )
    return best[1], best[0]


def _calibrate_final_layer(
    binarized: BinarizedNetwork,
    layer_index: int,
    matrix: np.ndarray,
    partition: Partition,
    input_bits: np.ndarray,
    fold,
    cal_images: np.ndarray,
    cal_labels: np.ndarray,
    config: SplitConfig,
) -> Tuple[SplitDecision, float]:
    """Grid-search (class threshold, gamma) for the final classifier."""
    layer = binarized.network.layers[layer_index]
    probe = SplitMatrix(
        matrix,
        partition,
        SplitDecision(block_threshold=0.0, vote_threshold=1),
        bias=layer_bias(layer),
    )
    sums = probe.block_sums(input_bits)
    ones = probe.ones_per_block(input_bits)
    num_blocks = partition.num_blocks
    mean_total_ones = float(ones.sum(axis=1).mean())

    # Candidate static thresholds: spread over the observed block-sum range.
    high = float(np.percentile(sums, 99.5))
    low = float(np.percentile(sums, 5.0))
    grid = np.linspace(low, high, config.final_threshold_grid)

    gammas = [0.0] + (list(config.gamma_grid) if config.dynamic else [])
    best: Tuple[float, SplitDecision] = (-1.0, SplitDecision(0.0))
    for gamma in gammas:
        for c0_total in grid:
            obs.count("split/candidates_evaluated")
            slope = (
                gamma * c0_total / mean_total_ones
                if mean_total_ones > 0
                else 0.0
            )
            c0 = c0_total / num_blocks - slope * mean_total_ones / num_blocks
            thresholds = c0 + slope * ones
            counts = (sums > thresholds[:, :, None]).sum(axis=1)
            logits = fold(counts.astype(np.float64))
            acc = accuracy(logits, cal_labels)
            if acc > best[0]:
                best = (
                    acc,
                    SplitDecision(
                        block_threshold=c0,
                        ones_slope=slope,
                        vote_threshold=1,
                    ),
                )
    return best[1], best[0]
