"""Deprecated: design-space sweeps moved to :mod:`repro.dse`.

This module is a compatibility shim.  The cost-model grid sweep now
lives in :mod:`repro.dse.sweeps` and the (generalised, n-objective)
Pareto front in :mod:`repro.dse.pareto`; both are re-exported here with
a :class:`DeprecationWarning` so existing imports keep working for one
release cycle.  New code should import from :mod:`repro.dse`.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

from repro.hw.tech import TechnologyModel

__all__ = ["design_space_sweep", "pareto_front"]


def _warn(name: str) -> None:
    warnings.warn(
        f"repro.analysis.sweeps.{name} moved to repro.dse.{name}; "
        "this shim will be removed in a future release",
        DeprecationWarning,
        stacklevel=3,
    )


def design_space_sweep(
    network: str = "network1",
    crossbar_sizes: Sequence[int] = (1024, 512, 256, 128),
    cell_bits: Sequence[int] = (2, 4, 8),
    tech: Optional[TechnologyModel] = None,
    structures: Sequence[str] = ("dac_adc", "sei"),
) -> List[Dict[str, object]]:
    """Deprecated alias for :func:`repro.dse.design_space_sweep`."""
    _warn("design_space_sweep")
    from repro.dse import design_space_sweep as impl

    return impl(
        network=network,
        crossbar_sizes=crossbar_sizes,
        cell_bits=cell_bits,
        tech=tech,
        structures=structures,
    )


def pareto_front(
    rows: Sequence[Dict[str, object]],
    minimise: Sequence[str] = ("energy_uj", "area_mm2"),
) -> List[Dict[str, object]]:
    """Deprecated alias for :func:`repro.dse.pareto_front`."""
    _warn("pareto_front")
    from repro.dse import pareto_front as impl

    return impl(rows, minimise=minimise)
